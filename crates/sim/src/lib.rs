//! Bit-parallel logic simulation and signal-probability labelling.
//!
//! DeepGate is supervised with the *signal probability* of every gate — the
//! probability that the gate evaluates to logic `1` under uniformly random
//! primary-input patterns. The paper obtains these labels by simulating up to
//! 100k random patterns per circuit. This crate is that simulator:
//!
//! - [`simulate_aig_words`] / [`simulate_netlist_words`] — 64-way
//!   bit-parallel evaluation of a pattern word per node.
//! - [`SignalProbability`] — Monte-Carlo probability estimation over many
//!   pattern words (parallelised with rayon across words), plus exhaustive
//!   enumeration for circuits with few primary inputs where the exact value
//!   is cheap to compute.
//! - [`PatternSource`] — seeded random pattern generation so every label in
//!   the dataset pipeline is reproducible.
//!
//! # Example
//!
//! ```rust
//! use deepgate_aig::Aig;
//! use deepgate_sim::SignalProbability;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut aig = Aig::new("and2");
//! let a = aig.add_input("a");
//! let b = aig.add_input("b");
//! let y = aig.and(a, b);
//! aig.add_output(y, "y");
//!
//! let probs = SignalProbability::simulate(&aig, 2048, 1)?;
//! // P(a·b = 1) = 0.25 under uniform inputs.
//! assert!((probs.of(y.node()) - 0.25).abs() < 0.05);
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod patterns;
mod probability;
mod simulator;

pub use error::SimError;
pub use patterns::PatternSource;
pub use probability::SignalProbability;
pub use simulator::{simulate_aig_words, simulate_netlist_words};
