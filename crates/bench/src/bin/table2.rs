//! Reproduces Table II: the comparison of DeepGate with GCN, DAG-ConvGNN and
//! DAG-RecGNN baselines across aggregator designs, measured by average
//! prediction error on the held-out split.

use deepgate_bench::{
    build_dataset, fmt_error, train_and_evaluate, ExperimentSettings, Report, Scale,
};
use deepgate_gnn::{
    AggregatorKind, DagConvConfig, DagConvGnn, DagRecConfig, DagRecGnn, Gcn, GcnConfig,
};
use deepgate_nn::ParamStore;

fn main() {
    let scale = Scale::from_env_and_args();
    let settings = ExperimentSettings::for_scale(scale);
    let dataset = build_dataset(&settings, true);
    let mut report = Report::new("table2", "Table II (model comparison)", scale);

    // GCN baselines.
    for kind in AggregatorKind::ALL {
        let mut store = ParamStore::new();
        let model = Gcn::new(
            &mut store,
            GcnConfig {
                feature_dim: 3,
                hidden_dim: settings.hidden_dim,
                num_layers: 3,
                aggregator: kind,
                seed: 1,
            },
        );
        let error = train_and_evaluate(&model, &mut store, &dataset, &settings);
        push(&mut report, "GCN", kind.label(), error);
    }

    // DAG-ConvGNN baselines.
    for kind in AggregatorKind::ALL {
        let mut store = ParamStore::new();
        let model = DagConvGnn::new(
            &mut store,
            DagConvConfig {
                feature_dim: 3,
                hidden_dim: settings.hidden_dim,
                num_layers: 3,
                aggregator: kind,
                seed: 2,
            },
        );
        let error = train_and_evaluate(&model, &mut store, &dataset, &settings);
        push(&mut report, "DAG-ConvGNN", kind.label(), error);
    }

    // DAG-RecGNN baselines (the paper reports Conv. Sum, DeepSet, GatedSum).
    for kind in [
        AggregatorKind::ConvSum,
        AggregatorKind::DeepSet,
        AggregatorKind::GatedSum,
    ] {
        let mut store = ParamStore::new();
        let model = DagRecGnn::new(&mut store, rec_config(&settings, kind, false, false));
        let error = train_and_evaluate(&model, &mut store, &dataset, &settings);
        push(
            &mut report,
            &format!("DAG-RecGNN (T={})", settings.num_iterations),
            kind.label(),
            error,
        );
    }

    // DeepGate: attention without and with skip connections.
    for use_skip in [false, true] {
        let mut store = ParamStore::new();
        let model = DagRecGnn::new(
            &mut store,
            rec_config(&settings, AggregatorKind::Attention, true, use_skip),
        );
        let error = train_and_evaluate(&model, &mut store, &dataset, &settings);
        let label = if use_skip {
            "Attention w/ SC"
        } else {
            "Attention w/o SC"
        };
        push(
            &mut report,
            &format!("DeepGate (T={})", settings.num_iterations),
            label,
            error,
        );
    }

    report.print();
    report.save();
}

fn rec_config(
    settings: &ExperimentSettings,
    aggregator: AggregatorKind,
    fix_gate_input: bool,
    use_skip_connections: bool,
) -> DagRecConfig {
    DagRecConfig {
        feature_dim: 3,
        hidden_dim: settings.hidden_dim,
        num_iterations: settings.num_iterations,
        aggregator,
        reverse_layer: true,
        fix_gate_input,
        use_skip_connections,
        skip_encoding_frequencies: 8,
        regressor_hidden: settings.hidden_dim / 2,
        per_type_regressor: fix_gate_input,
        seed: 3,
    }
}

fn push(report: &mut Report, model: &str, aggregator: &str, error: f64) {
    report.push_row(
        model,
        vec![
            ("Aggregator".to_string(), aggregator.to_string()),
            ("Avg. Prediction Error".to_string(), fmt_error(error)),
        ],
    );
}
