//! Fluent construction helpers for building circuits in code.
//!
//! The synthetic benchmark generators in `deepgate-dataset` need to build
//! word-level arithmetic and control structures (adders, multipliers,
//! multiplexer trees, priority encoders). [`NetlistBuilder`] provides the
//! word-level helpers so those generators stay readable.

use crate::{GateKind, Netlist, NetlistError, NodeId};

/// A fluent builder over [`Netlist`] with word-level (multi-bit) helpers.
///
/// # Example
///
/// ```rust
/// use deepgate_netlist::NetlistBuilder;
///
/// # fn main() -> Result<(), deepgate_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("adder4");
/// let a = b.input_word("a", 4);
/// let c = b.input_word("b", 4);
/// let (sum, carry) = b.ripple_add(&a, &c)?;
/// b.output_word("sum", &sum);
/// b.output("cout", carry);
/// let netlist = b.finish();
/// assert_eq!(netlist.num_inputs(), 8);
/// assert_eq!(netlist.num_outputs(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    netlist: Netlist,
}

impl NetlistBuilder {
    /// Creates a builder for a new design.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            netlist: Netlist::new(name),
        }
    }

    /// Consumes the builder and returns the built netlist.
    pub fn finish(self) -> Netlist {
        self.netlist
    }

    /// Read-only access to the netlist under construction.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Adds a single primary input.
    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        self.netlist.add_input(name)
    }

    /// Adds `width` primary inputs named `name[0]` … `name[width-1]`
    /// (LSB first).
    pub fn input_word(&mut self, name: &str, width: usize) -> Vec<NodeId> {
        (0..width)
            .map(|i| self.netlist.add_input(format!("{name}[{i}]")))
            .collect()
    }

    /// Adds a constant node.
    pub fn constant(&mut self, value: bool) -> NodeId {
        self.netlist.add_const(value)
    }

    /// Marks a node as a primary output.
    pub fn output(&mut self, name: impl Into<String>, node: NodeId) {
        self.netlist.mark_output(node, name);
    }

    /// Marks each bit of a word as a primary output `name[i]`.
    pub fn output_word(&mut self, name: &str, bits: &[NodeId]) {
        for (i, &bit) in bits.iter().enumerate() {
            self.netlist.mark_output(bit, format!("{name}[{i}]"));
        }
    }

    /// Adds a gate.
    ///
    /// # Errors
    ///
    /// Same as [`Netlist::add_gate`].
    pub fn gate(&mut self, kind: GateKind, fanins: &[NodeId]) -> Result<NodeId, NetlistError> {
        self.netlist.add_gate(kind, fanins)
    }

    /// Convenience: 2-input AND.
    pub fn and2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.netlist
            .add_gate(GateKind::And, &[a, b])
            .expect("fixed arity")
    }

    /// Convenience: 2-input OR.
    pub fn or2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.netlist
            .add_gate(GateKind::Or, &[a, b])
            .expect("fixed arity")
    }

    /// Convenience: 2-input XOR.
    pub fn xor2(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.netlist
            .add_gate(GateKind::Xor, &[a, b])
            .expect("fixed arity")
    }

    /// Convenience: inverter.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        self.netlist
            .add_gate(GateKind::Not, &[a])
            .expect("fixed arity")
    }

    /// Convenience: 2:1 multiplexer (`sel ? b : a`).
    pub fn mux(&mut self, sel: NodeId, a: NodeId, b: NodeId) -> NodeId {
        self.netlist
            .add_gate(GateKind::Mux, &[sel, a, b])
            .expect("fixed arity")
    }

    /// A full adder; returns `(sum, carry)`.
    pub fn full_adder(&mut self, a: NodeId, b: NodeId, cin: NodeId) -> (NodeId, NodeId) {
        let axb = self.xor2(a, b);
        let sum = self.xor2(axb, cin);
        let ab = self.and2(a, b);
        let c2 = self.and2(axb, cin);
        let cout = self.or2(ab, c2);
        (sum, cout)
    }

    /// Ripple-carry addition of two equal-width words; returns
    /// `(sum_bits, carry_out)`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] if the words have different
    /// widths (reported as an arity error on the first mismatching bit) —
    /// in practice the words must simply be the same length.
    pub fn ripple_add(
        &mut self,
        a: &[NodeId],
        b: &[NodeId],
    ) -> Result<(Vec<NodeId>, NodeId), NetlistError> {
        if a.len() != b.len() || a.is_empty() {
            return Err(NetlistError::ArityMismatch {
                kind: "ripple_add",
                got: a.len().min(b.len()),
            });
        }
        let mut carry = self.constant(false);
        let mut sum = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let (s, c) = self.full_adder(a[i], b[i], carry);
            sum.push(s);
            carry = c;
        }
        Ok((sum, carry))
    }

    /// Array multiplier of two equal-width words; returns the `2*width`
    /// product bits (LSB first).
    ///
    /// # Errors
    ///
    /// Returns an error if the words have different widths or are empty.
    pub fn array_multiply(
        &mut self,
        a: &[NodeId],
        b: &[NodeId],
    ) -> Result<Vec<NodeId>, NetlistError> {
        if a.len() != b.len() || a.is_empty() {
            return Err(NetlistError::ArityMismatch {
                kind: "array_multiply",
                got: a.len().min(b.len()),
            });
        }
        let width = a.len();
        let zero = self.constant(false);
        // Partial products accumulated row by row with ripple adders.
        let mut acc: Vec<NodeId> = vec![zero; 2 * width];
        for (j, &bj) in b.iter().enumerate() {
            // Row j of partial products, shifted left by j.
            let mut row: Vec<NodeId> = vec![zero; 2 * width];
            for (i, &ai) in a.iter().enumerate() {
                row[i + j] = self.and2(ai, bj);
            }
            let (sum, carry) = self.ripple_add(&acc, &row)?;
            // Carry out of a 2*width-bit accumulator never fires for an
            // n x n multiply; keep the sum bits.
            let _ = carry;
            acc = sum;
        }
        Ok(acc)
    }

    /// Balanced reduction of a list of nodes with the given associative gate
    /// kind (AND/OR/XOR). Returns the single reduced node.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn reduce(&mut self, kind: GateKind, nodes: &[NodeId]) -> NodeId {
        assert!(!nodes.is_empty(), "cannot reduce an empty node list");
        let mut layer: Vec<NodeId> = nodes.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(
                        self.netlist
                            .add_gate(kind, &[pair[0], pair[1]])
                            .expect("binary arity accepted"),
                    );
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        layer[0]
    }

    /// Selects one of `2^sel.len()` data inputs with a binary-encoded select
    /// word, as a tree of 2:1 multiplexers.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != 2^sel.len()`.
    pub fn mux_tree(&mut self, sel: &[NodeId], data: &[NodeId]) -> NodeId {
        assert_eq!(
            data.len(),
            1usize << sel.len(),
            "mux tree needs 2^sel data inputs"
        );
        let mut layer: Vec<NodeId> = data.to_vec();
        for &s in sel {
            let mut next = Vec::with_capacity(layer.len() / 2);
            for pair in layer.chunks(2) {
                next.push(self.mux(s, pair[0], pair[1]));
            }
            layer = next;
        }
        layer[0]
    }

    /// Equality comparator between two equal-width words (1 when equal).
    ///
    /// # Panics
    ///
    /// Panics if the words have different widths or are empty.
    pub fn equals(&mut self, a: &[NodeId], b: &[NodeId]) -> NodeId {
        assert!(!a.is_empty() && a.len() == b.len());
        let bits: Vec<NodeId> = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| {
                self.netlist
                    .add_gate(GateKind::Xnor, &[x, y])
                    .expect("fixed arity")
            })
            .collect();
        self.reduce(GateKind::And, &bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ripple_add_structure() {
        let mut b = NetlistBuilder::new("add");
        let x = b.input_word("x", 4);
        let y = b.input_word("y", 4);
        let (sum, cout) = b.ripple_add(&x, &y).unwrap();
        b.output_word("s", &sum);
        b.output("cout", cout);
        let n = b.finish();
        assert!(n.validate().is_ok());
        assert_eq!(n.num_inputs(), 8);
        assert_eq!(n.num_outputs(), 5);
        assert!(n.num_gates() >= 4 * 5); // 5 gates per full adder
    }

    #[test]
    fn ripple_add_rejects_mismatched_widths() {
        let mut b = NetlistBuilder::new("bad");
        let x = b.input_word("x", 3);
        let y = b.input_word("y", 4);
        assert!(b.ripple_add(&x, &y).is_err());
        assert!(b.ripple_add(&[], &[]).is_err());
    }

    #[test]
    fn multiplier_structure() {
        let mut b = NetlistBuilder::new("mul");
        let x = b.input_word("x", 3);
        let y = b.input_word("y", 3);
        let p = b.array_multiply(&x, &y).unwrap();
        assert_eq!(p.len(), 6);
        b.output_word("p", &p);
        let n = b.finish();
        assert!(n.validate().is_ok());
        assert!(n.num_gates() > 9);
    }

    #[test]
    fn reduce_builds_balanced_tree() {
        let mut b = NetlistBuilder::new("tree");
        let xs = b.input_word("x", 8);
        let root = b.reduce(GateKind::And, &xs);
        b.output("y", root);
        let n = b.finish();
        // Balanced tree over 8 leaves: 7 AND gates, depth 3.
        assert_eq!(n.num_gates(), 7);
        assert_eq!(n.levels().max_level, 3);
    }

    #[test]
    fn reduce_handles_odd_counts() {
        let mut b = NetlistBuilder::new("tree5");
        let xs = b.input_word("x", 5);
        let root = b.reduce(GateKind::Or, &xs);
        b.output("y", root);
        let n = b.finish();
        assert_eq!(n.num_gates(), 4);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn reduce_empty_panics() {
        let mut b = NetlistBuilder::new("t");
        b.reduce(GateKind::And, &[]);
    }

    #[test]
    fn mux_tree_selects() {
        let mut b = NetlistBuilder::new("mux");
        let sel = b.input_word("s", 2);
        let data = b.input_word("d", 4);
        let y = b.mux_tree(&sel, &data);
        b.output("y", y);
        let n = b.finish();
        assert!(n.validate().is_ok());
        assert_eq!(n.num_gates(), 3); // 2 + 1 muxes
    }

    #[test]
    fn equality_comparator() {
        let mut b = NetlistBuilder::new("eq");
        let x = b.input_word("x", 4);
        let y = b.input_word("y", 4);
        let eq = b.equals(&x, &y);
        b.output("eq", eq);
        let n = b.finish();
        assert!(n.validate().is_ok());
        assert_eq!(n.num_gates(), 4 + 3); // 4 XNOR + 3 AND
    }
}
