//! The crate-spanning error type of the `deepgate` facade.

use std::fmt;

/// Any error a DeepGate pipeline can produce, from netlist parsing through
/// AIG mapping, simulation labelling, training and checkpointing.
///
/// Every public entry point of the facade returns `Result<_, DeepGateError>`;
/// the `From` impls below let `?` lift the per-crate error types, so user
/// code handles one error enum regardless of which stage failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeepGateError {
    /// Netlist construction or BENCH/Verilog parsing failed.
    Netlist(deepgate_netlist::NetlistError),
    /// AIG mapping, optimisation or AIGER parsing failed.
    Aig(deepgate_aig::AigError),
    /// Logic simulation / labelling failed.
    Sim(deepgate_sim::SimError),
    /// Checkpoint (de)serialisation or parameter loading failed.
    Nn(deepgate_nn::NnError),
    /// A model/circuit compatibility or labelling problem.
    Gnn(deepgate_gnn::GnnError),
    /// A file could not be read or written.
    Io {
        /// Path of the offending file.
        path: String,
        /// Operating-system error message.
        message: String,
    },
    /// An [`crate::EngineBuilder`] was configured inconsistently.
    Config(String),
    /// A batch operation was handed no circuits.
    EmptyBatch,
}

impl fmt::Display for DeepGateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeepGateError::Netlist(e) => write!(f, "netlist error: {e}"),
            DeepGateError::Aig(e) => write!(f, "aig error: {e}"),
            DeepGateError::Sim(e) => write!(f, "simulation error: {e}"),
            DeepGateError::Nn(e) => write!(f, "checkpoint error: {e}"),
            DeepGateError::Gnn(e) => write!(f, "model error: {e}"),
            DeepGateError::Io { path, message } => write!(f, "io error on `{path}`: {message}"),
            DeepGateError::Config(msg) => write!(f, "invalid engine configuration: {msg}"),
            DeepGateError::EmptyBatch => write!(f, "batch contains no circuits"),
        }
    }
}

impl std::error::Error for DeepGateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeepGateError::Netlist(e) => Some(e),
            DeepGateError::Aig(e) => Some(e),
            DeepGateError::Sim(e) => Some(e),
            DeepGateError::Nn(e) => Some(e),
            DeepGateError::Gnn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<deepgate_netlist::NetlistError> for DeepGateError {
    fn from(e: deepgate_netlist::NetlistError) -> Self {
        DeepGateError::Netlist(e)
    }
}

impl From<deepgate_aig::AigError> for DeepGateError {
    fn from(e: deepgate_aig::AigError) -> Self {
        DeepGateError::Aig(e)
    }
}

impl From<deepgate_sim::SimError> for DeepGateError {
    fn from(e: deepgate_sim::SimError) -> Self {
        DeepGateError::Sim(e)
    }
}

impl From<deepgate_nn::NnError> for DeepGateError {
    fn from(e: deepgate_nn::NnError) -> Self {
        DeepGateError::Nn(e)
    }
}

impl From<deepgate_gnn::GnnError> for DeepGateError {
    fn from(e: deepgate_gnn::GnnError) -> Self {
        DeepGateError::Gnn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_impls_and_display() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeepGateError>();

        let e: DeepGateError = deepgate_netlist::NetlistError::UnknownNode(3).into();
        assert!(matches!(e, DeepGateError::Netlist(_)));
        assert!(e.to_string().contains("netlist"));

        let e: DeepGateError = deepgate_sim::SimError::NoPatterns.into();
        assert!(matches!(e, DeepGateError::Sim(_)));

        let e: DeepGateError = deepgate_nn::NnError::MissingParameter("w".into()).into();
        assert!(matches!(e, DeepGateError::Nn(_)));

        let e: DeepGateError =
            deepgate_gnn::GnnError::UnlabelledCircuit { name: "c".into() }.into();
        assert!(matches!(e, DeepGateError::Gnn(_)));
        assert!(std::error::Error::source(&e).is_some());

        let e: DeepGateError = deepgate_aig::AigError::UnknownNode(1).into();
        assert!(matches!(e, DeepGateError::Aig(_)));

        assert!(DeepGateError::EmptyBatch.to_string().contains("batch"));
    }
}
