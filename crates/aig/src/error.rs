use std::fmt;

/// Errors produced while building, converting or parsing AIGs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AigError {
    /// The source netlist failed validation before conversion.
    InvalidNetlist(String),
    /// A gate kind in the source netlist is not supported by the mapper.
    UnsupportedGate(String),
    /// A referenced node does not exist.
    UnknownNode(usize),
    /// AIGER text could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// The AIGER header is inconsistent with the body.
    HeaderMismatch(String),
    /// An AIGER read or write failed (see [`crate::aiger::AigerError`]).
    Aiger(crate::aiger::AigerError),
}

impl fmt::Display for AigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AigError::InvalidNetlist(msg) => write!(f, "invalid source netlist: {msg}"),
            AigError::UnsupportedGate(kind) => write!(f, "unsupported gate kind `{kind}`"),
            AigError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            AigError::Parse { line, message } => {
                write!(f, "aiger parse error at line {line}: {message}")
            }
            AigError::HeaderMismatch(msg) => write!(f, "aiger header mismatch: {msg}"),
            AigError::Aiger(err) => write!(f, "{err}"),
        }
    }
}

impl From<crate::aiger::AigerError> for AigError {
    fn from(err: crate::aiger::AigerError) -> Self {
        AigError::Aiger(err)
    }
}

impl std::error::Error for AigError {}

impl From<deepgate_netlist::NetlistError> for AigError {
    fn from(err: deepgate_netlist::NetlistError) -> Self {
        AigError::InvalidNetlist(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(AigError::UnknownNode(3).to_string().contains('3'));
        assert!(AigError::UnsupportedGate("mux".into())
            .to_string()
            .contains("mux"));
        let e: AigError = deepgate_netlist::NetlistError::UnknownNode(1).into();
        assert!(matches!(e, AigError::InvalidNetlist(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AigError>();
    }
}
