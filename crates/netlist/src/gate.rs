use serde::{Deserialize, Serialize};
use std::fmt;

/// The combinational gate alphabet supported by [`crate::Netlist`].
///
/// The alphabet covers the gate types found in the benchmark suites used by
/// the DeepGate paper (ITC'99, IWLS'05, EPFL, OpenCores) after technology
/// de-mapping: primary inputs, constants, buffers/inverters, the standard
/// 2+-input monotone and parity gates and a 2:1 multiplexer.
///
/// Word-level evaluation ([`GateKind::eval_words`]) operates on 64 parallel
/// Boolean patterns packed into a `u64`, which is the core primitive of the
/// bit-parallel logic simulator in `deepgate-sim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GateKind {
    /// Primary input. No fan-ins.
    Input,
    /// Constant logic 0. No fan-ins.
    Const0,
    /// Constant logic 1. No fan-ins.
    Const1,
    /// Buffer: passes through its single fan-in.
    Buf,
    /// Inverter: negates its single fan-in.
    Not,
    /// N-input AND (N >= 1).
    And,
    /// N-input NAND (N >= 1).
    Nand,
    /// N-input OR (N >= 1).
    Or,
    /// N-input NOR (N >= 1).
    Nor,
    /// N-input XOR (odd parity, N >= 1).
    Xor,
    /// N-input XNOR (even parity, N >= 1).
    Xnor,
    /// 2:1 multiplexer: fan-ins are `[sel, a, b]`, output is `a` when
    /// `sel = 0` and `b` when `sel = 1`.
    Mux,
}

impl GateKind {
    /// All gate kinds, in a fixed order (useful for one-hot encodings and
    /// exhaustive tests).
    pub const ALL: [GateKind; 12] = [
        GateKind::Input,
        GateKind::Const0,
        GateKind::Const1,
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Mux,
    ];

    /// Returns `true` if the kind represents a source node (no fan-ins).
    pub fn is_source(self) -> bool {
        matches!(self, GateKind::Input | GateKind::Const0 | GateKind::Const1)
    }

    /// Returns `true` if the kind is a real logic gate (has at least one
    /// fan-in).
    pub fn is_gate(self) -> bool {
        !self.is_source()
    }

    /// The inclusive range of fan-in counts accepted by this gate kind,
    /// returned as `(min, max)`. `max == usize::MAX` means unbounded.
    pub fn arity(self) -> (usize, usize) {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => (0, 0),
            GateKind::Buf | GateKind::Not => (1, 1),
            GateKind::And
            | GateKind::Nand
            | GateKind::Or
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor => (1, usize::MAX),
            GateKind::Mux => (3, 3),
        }
    }

    /// Returns `true` if `n` fan-ins is a legal fan-in count for this kind.
    pub fn accepts_arity(self, n: usize) -> bool {
        let (lo, hi) = self.arity();
        n >= lo && n <= hi
    }

    /// Short lowercase mnemonic used by the BENCH writer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            GateKind::Input => "input",
            GateKind::Const0 => "const0",
            GateKind::Const1 => "const1",
            GateKind::Buf => "buf",
            GateKind::Not => "not",
            GateKind::And => "and",
            GateKind::Nand => "nand",
            GateKind::Or => "or",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Mux => "mux",
        }
    }

    /// Parses a BENCH-style mnemonic (case insensitive). Returns `None` for
    /// unknown names.
    pub fn from_mnemonic(s: &str) -> Option<GateKind> {
        let lower = s.to_ascii_lowercase();
        Some(match lower.as_str() {
            "input" => GateKind::Input,
            "const0" | "gnd" | "zero" => GateKind::Const0,
            "const1" | "vdd" | "one" => GateKind::Const1,
            "buf" | "buff" => GateKind::Buf,
            "not" | "inv" => GateKind::Not,
            "and" => GateKind::And,
            "nand" => GateKind::Nand,
            "or" => GateKind::Or,
            "nor" => GateKind::Nor,
            "xor" => GateKind::Xor,
            "xnor" => GateKind::Xnor,
            "mux" => GateKind::Mux,
            _ => return None,
        })
    }

    /// Evaluates the gate over Boolean fan-in values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not a legal arity for this kind (see
    /// [`GateKind::arity`]); netlist construction validates arities so this
    /// only triggers on misuse of the raw evaluation API.
    pub fn eval_bool(self, inputs: &[bool]) -> bool {
        assert!(
            self.accepts_arity(inputs.len()),
            "gate kind {self} cannot take {} fan-ins",
            inputs.len()
        );
        match self {
            GateKind::Input => panic!("primary inputs have no evaluation"),
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Mux => {
                if inputs[0] {
                    inputs[2]
                } else {
                    inputs[1]
                }
            }
        }
    }

    /// Evaluates the gate over 64 packed Boolean patterns per fan-in.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`GateKind::eval_bool`].
    pub fn eval_words(self, inputs: &[u64]) -> u64 {
        assert!(
            self.accepts_arity(inputs.len()),
            "gate kind {self} cannot take {} fan-ins",
            inputs.len()
        );
        match self {
            GateKind::Input => panic!("primary inputs have no evaluation"),
            GateKind::Const0 => 0,
            GateKind::Const1 => u64::MAX,
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().fold(u64::MAX, |acc, &w| acc & w),
            GateKind::Nand => !inputs.iter().fold(u64::MAX, |acc, &w| acc & w),
            GateKind::Or => inputs.iter().fold(0, |acc, &w| acc | w),
            GateKind::Nor => !inputs.iter().fold(0, |acc, &w| acc | w),
            GateKind::Xor => inputs.iter().fold(0, |acc, &w| acc ^ w),
            GateKind::Xnor => !inputs.iter().fold(0, |acc, &w| acc ^ w),
            GateKind::Mux => (!inputs[0] & inputs[1]) | (inputs[0] & inputs[2]),
        }
    }

    /// Index of this kind inside [`GateKind::ALL`], used for one-hot feature
    /// encodings in the "without AIG transformation" experiments (Table IV).
    pub fn one_hot_index(self) -> usize {
        GateKind::ALL
            .iter()
            .position(|&k| k == self)
            .expect("kind present in ALL")
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_checks() {
        assert!(GateKind::Not.accepts_arity(1));
        assert!(!GateKind::Not.accepts_arity(2));
        assert!(GateKind::And.accepts_arity(5));
        assert!(!GateKind::And.accepts_arity(0));
        assert!(GateKind::Mux.accepts_arity(3));
        assert!(!GateKind::Mux.accepts_arity(2));
        assert!(GateKind::Input.accepts_arity(0));
        assert!(!GateKind::Input.accepts_arity(1));
    }

    #[test]
    fn bool_truth_tables_two_input() {
        let cases = [(false, false), (false, true), (true, false), (true, true)];
        for (a, b) in cases {
            assert_eq!(GateKind::And.eval_bool(&[a, b]), a & b);
            assert_eq!(GateKind::Nand.eval_bool(&[a, b]), !(a & b));
            assert_eq!(GateKind::Or.eval_bool(&[a, b]), a | b);
            assert_eq!(GateKind::Nor.eval_bool(&[a, b]), !(a | b));
            assert_eq!(GateKind::Xor.eval_bool(&[a, b]), a ^ b);
            assert_eq!(GateKind::Xnor.eval_bool(&[a, b]), !(a ^ b));
        }
    }

    #[test]
    fn mux_selects_correct_branch() {
        // sel=0 -> first data input, sel=1 -> second data input.
        assert!(!GateKind::Mux.eval_bool(&[false, false, true]));
        assert!(GateKind::Mux.eval_bool(&[true, false, true]));
        assert_eq!(GateKind::Mux.eval_words(&[0, 0xAAAA, 0x5555]), 0xAAAA);
        assert_eq!(
            GateKind::Mux.eval_words(&[u64::MAX, 0xAAAA, 0x5555]),
            0x5555
        );
    }

    #[test]
    fn word_eval_matches_bool_eval() {
        // Exhaustively compare bit 0 of word evaluation against bool
        // evaluation for all 2- and 3-input combinations.
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            for bits in 0..4u8 {
                let a = bits & 1 != 0;
                let b = bits & 2 != 0;
                let w = kind.eval_words(&[a as u64, b as u64]) & 1;
                assert_eq!(w == 1, kind.eval_bool(&[a, b]), "{kind} {a} {b}");
            }
        }
        for bits in 0..8u8 {
            let s = bits & 1 != 0;
            let a = bits & 2 != 0;
            let b = bits & 4 != 0;
            let w = GateKind::Mux.eval_words(&[s as u64, a as u64, b as u64]) & 1;
            assert_eq!(w == 1, GateKind::Mux.eval_bool(&[s, a, b]));
        }
    }

    #[test]
    fn constants_and_inverter() {
        assert!(!GateKind::Const0.eval_bool(&[]));
        assert!(GateKind::Const1.eval_bool(&[]));
        assert_eq!(GateKind::Const0.eval_words(&[]), 0);
        assert_eq!(GateKind::Const1.eval_words(&[]), u64::MAX);
        assert!(GateKind::Not.eval_bool(&[false]));
        assert_eq!(GateKind::Not.eval_words(&[0]), u64::MAX);
        assert_eq!(GateKind::Buf.eval_words(&[42]), 42);
    }

    #[test]
    fn mnemonic_roundtrip() {
        for kind in GateKind::ALL {
            assert_eq!(GateKind::from_mnemonic(kind.mnemonic()), Some(kind));
        }
        assert_eq!(GateKind::from_mnemonic("INV"), Some(GateKind::Not));
        assert_eq!(GateKind::from_mnemonic("BUFF"), Some(GateKind::Buf));
        assert_eq!(GateKind::from_mnemonic("noise"), None);
    }

    #[test]
    fn one_hot_indices_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for kind in GateKind::ALL {
            assert!(seen.insert(kind.one_hot_index()));
        }
        assert_eq!(seen.len(), GateKind::ALL.len());
    }

    #[test]
    #[should_panic(expected = "cannot take")]
    fn eval_with_bad_arity_panics() {
        GateKind::Not.eval_bool(&[true, false]);
    }

    #[test]
    fn multi_input_parity() {
        assert!(GateKind::Xor.eval_bool(&[true, true, true]));
        assert!(!GateKind::Xor.eval_bool(&[true, true, false, false]));
        assert!(!GateKind::Xnor.eval_bool(&[true, true, true]));
    }
}
