//! The `std::net` TCP front end: newline-delimited JSON requests over
//! persistent connections, with graceful drain on shutdown.

use crate::fault::panic_message;
use crate::{
    b64, request_key, snapshot_to_value, text_key, CacheStats, CircuitCache, Scheduler,
    SchedulerStats, ServeConfig, ServeError, ServeMetrics,
};
use deepgate::telemetry::{RequestTrace, SlowLog, Stage};
use deepgate::{AigerBytes, BenchText, Engine, LatchPolicy, PreparedCircuit};
use serde::{Serialize, Value};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A point-in-time snapshot of every serving counter, serialised verbatim
/// into the `stats` wire response.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ServerStats {
    /// Scheduler counters (queueing, batching, completion).
    pub scheduler: SchedulerStats,
    /// Structural-cache counters.
    pub cache: CacheStats,
    /// Connections accepted since start.
    pub connections: u64,
    /// Connections cut by the hygiene layer (idle past `idle_timeout`, or
    /// trickling a request line past `line_timeout`).
    pub connections_reaped: u64,
    /// Connections refused at accept because `max_connections` were open.
    pub connections_rejected: u64,
    /// Response writes dropped on a client that stopped reading within
    /// `write_timeout`.
    pub write_timeouts: u64,
    /// Request-handler panics converted into error responses.
    pub request_panics_recovered: u64,
}

struct Inner {
    engine: Engine,
    scheduler: Scheduler,
    cache: CircuitCache,
    metrics: ServeMetrics,
    slow_log: Option<SlowLog>,
    /// The resilience knobs the connection path consults per request:
    /// deadlines, hygiene timeouts, size/fleet bounds and the fault plan.
    config: ServeConfig,
    addr: SocketAddr,
    /// Set once shutdown is requested; new predict requests are refused.
    draining: AtomicBool,
    /// Signalled when a shutdown request arrives (wire verb or API call).
    shutdown_requested: (Mutex<bool>, Condvar),
    connections: Mutex<Vec<(JoinHandle<()>, TcpStream)>>,
}

/// The serving front end: owns the engine, the scheduler, the cache and the
/// listener/connection threads.
///
/// ```no_run
/// use deepgate::Engine;
/// use deepgate_serve::{ServeConfig, Server};
///
/// let engine = Engine::builder().build().expect("valid configuration");
/// let server = Server::start(engine, ServeConfig::default()).expect("binds");
/// println!("serving on {}", server.local_addr());
/// server.wait(); // blocks until a shutdown verb arrives, then drains
/// ```
pub struct Server {
    inner: Arc<Inner>,
    listener: Mutex<Option<JoinHandle<()>>>,
    drained: AtomicBool,
}

impl Server {
    /// Binds `config.addr` and starts the listener, workers and cache.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for inconsistent settings (including
    /// `workers == 0`, which only [`Scheduler::new`] accepts) and
    /// [`ServeError::Io`] if the address cannot be bound.
    pub fn start(mut engine: Engine, config: ServeConfig) -> Result<Server, ServeError> {
        if config.workers == 0 {
            return Err(ServeError::Config(
                "a server needs at least one worker".into(),
            ));
        }
        // One registry for the whole serving stack: the engine, the GNN
        // kernel, the scheduler's workers, the cache and the request path
        // all record into `metrics`, so one snapshot reads them all.
        let metrics = ServeMetrics::new();
        engine.set_metrics(Arc::clone(&metrics.engine));
        let scheduler =
            Scheduler::with_metrics(engine.session(), &config, metrics.scheduler.clone())?;
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ServeError::Io(format!("binding {}: {e}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(format!("local_addr: {e}")))?;
        let inner = Arc::new(Inner {
            engine,
            scheduler,
            cache: CircuitCache::with_metrics(config.cache_capacity, metrics.cache.clone()),
            slow_log: config.slow_request_threshold.map(SlowLog::new),
            metrics,
            config,
            addr,
            draining: AtomicBool::new(false),
            shutdown_requested: (Mutex::new(false), Condvar::new()),
            connections: Mutex::new(Vec::new()),
        });
        let accept_inner = Arc::clone(&inner);
        let listener_thread = std::thread::Builder::new()
            .name("deepgate-serve-listener".into())
            .spawn(move || accept_loop(&accept_inner, listener))
            .map_err(|e| ServeError::Io(format!("spawning listener: {e}")))?;
        Ok(Server {
            inner,
            listener: Mutex::new(Some(listener_thread)),
            drained: AtomicBool::new(false),
        })
    }

    /// The bound address (resolves the ephemeral port of `addr: …:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Current counters, derived from one telemetry snapshot.
    pub fn stats(&self) -> ServerStats {
        self.inner.stats()
    }

    /// The server's telemetry: every series of the serving stack, readable
    /// through one consistent [`ServeMetrics::snapshot`].
    pub fn metrics(&self) -> &ServeMetrics {
        &self.inner.metrics
    }

    /// Marks the server as draining without blocking: the wire `shutdown`
    /// verb calls this, and [`Server::wait`] picks it up.
    pub fn request_shutdown(&self) {
        self.inner.request_shutdown();
    }

    /// Blocks until shutdown is requested (by [`Server::request_shutdown`]
    /// or the wire verb), then drains and joins every thread.
    pub fn wait(&self) {
        let (flag, signal) = &self.inner.shutdown_requested;
        let mut requested = flag.lock().expect("shutdown flag lock");
        while !*requested {
            requested = signal.wait(requested).expect("shutdown flag lock");
        }
        drop(requested);
        self.drain();
    }

    /// Graceful shutdown: requests the drain and performs it. In-flight
    /// requests complete, queued requests get [`ServeError::ShuttingDown`],
    /// and the listener and every connection thread join. Idempotent.
    pub fn shutdown(&self) {
        self.inner.request_shutdown();
        self.drain();
    }

    fn drain(&self) {
        if self.drained.swap(true, Ordering::SeqCst) {
            return;
        }
        // 1. Stop accepting: the flag is already set (request_shutdown);
        //    a wake-up connection unblocks the accept loop.
        let _ = TcpStream::connect(self.inner.addr);
        if let Some(listener) = self.listener.lock().expect("listener lock").take() {
            let _ = listener.join();
        }
        // 2. Drain the scheduler: executing batches complete and respond,
        //    queued requests get a clean ShuttingDown error.
        self.inner.scheduler.shutdown();
        // 3. Unblock connection threads stuck reading idle sockets, then
        //    join them. Threads mid-response finish their write first —
        //    joining waits for that.
        let connections: Vec<(JoinHandle<()>, TcpStream)> = {
            let mut guard = self.inner.connections.lock().expect("connections lock");
            guard.drain(..).collect()
        };
        for (_, stream) in &connections {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for (handle, _) in connections {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Inner {
    /// Builds the `stats` response from ONE registry snapshot, so the
    /// scheduler and cache sections describe the same instant instead of
    /// being polled from each subsystem separately.
    fn stats(&self) -> ServerStats {
        let snapshot = self.metrics.snapshot();
        ServerStats {
            scheduler: SchedulerStats::from_snapshot(&snapshot),
            cache: CacheStats::from_snapshot(&snapshot),
            connections: snapshot.counter("connections_accepted_total"),
            connections_reaped: snapshot.counter("connections_reaped_total"),
            connections_rejected: snapshot.counter("connections_rejected_total"),
            write_timeouts: snapshot.counter("write_timeouts_total"),
            request_panics_recovered: snapshot.counter("request_panics_recovered_total"),
        }
    }

    /// Consults the fault plan at a stage hook: panic and delay faults
    /// apply in place (the panic unwinds into the caller's recovery layer),
    /// I/O faults surface as [`ServeError::Internal`].
    fn fault(&self, stage: Stage) -> Result<(), ServeError> {
        if let Some(faults) = &self.config.faults {
            faults
                .fire(stage)
                .map_err(|e| ServeError::Internal(e.to_string()))?;
        }
        Ok(())
    }

    fn request_shutdown(&self) {
        self.draining.store(true, Ordering::SeqCst);
        let (flag, signal) = &self.shutdown_requested;
        *flag.lock().expect("shutdown flag lock") = true;
        signal.notify_all();
    }

    /// Resolves a request payload to a prepared circuit through the
    /// two-level structural cache; misses run the full parse → transform →
    /// encode → plan pipeline, attributed to the trace's `Encode` and
    /// `Plan` stages (cache hits skip both, so those stages stay untouched).
    fn resolve(
        &self,
        payload: &RequestPayload,
        trace: &mut RequestTrace,
    ) -> Result<Arc<PreparedCircuit>, ServeError> {
        let key = payload.cache_key();
        if let Some(prepared) = self.cache.lookup_text(key) {
            return Ok(prepared);
        }
        self.fault(Stage::Encode)?;
        let circuits = trace.time(Stage::Encode, || match payload {
            RequestPayload::Bench { name, text } => self
                .engine
                .prepare_unlabelled(&BenchText::new(name.as_str(), text.as_str())),
            RequestPayload::Aiger {
                name,
                bytes,
                policy,
            } => self.engine.prepare_unlabelled(
                &AigerBytes::new(name.as_str(), bytes.clone()).latch_policy(*policy),
            ),
        });
        let circuit = circuits
            .map_err(|e| ServeError::BadRequest(e.to_string()))?
            .pop()
            .ok_or_else(|| ServeError::BadRequest("request contained no circuit".into()))?;
        if let Some(prepared) = self.cache.lookup_fingerprint(key, circuit.fingerprint()) {
            return Ok(prepared);
        }
        self.fault(Stage::Plan)?;
        let prepared = trace.time(Stage::Plan, || {
            Arc::new(self.scheduler.session().prepare(circuit))
        });
        self.cache.insert(key, Arc::clone(&prepared));
        Ok(prepared)
    }
}

/// One circuit payload extracted from a predict request: BENCH text, or
/// AIGER bytes (ASCII or binary, possibly base64-transported) plus the
/// latch ingestion policy the client asked for.
enum RequestPayload {
    Bench {
        name: String,
        text: String,
    },
    Aiger {
        name: String,
        bytes: Vec<u8>,
        policy: LatchPolicy,
    },
}

impl RequestPayload {
    /// First-level cache key. AIGER keys fold in the latch policy — the
    /// same bytes under `cut` and `unroll:k` are different circuits.
    fn cache_key(&self) -> u128 {
        match self {
            RequestPayload::Bench { text, .. } => text_key(text),
            RequestPayload::Aiger { bytes, policy, .. } => {
                request_key("aiger", &policy.to_string(), bytes)
            }
        }
    }
}

/// Parses the `deadline_ms` field of a predict request and folds in the
/// server-side cap: the *tighter* of the two budgets wins, and with neither
/// present the request has no deadline. `deadline_ms: 0` is legal and
/// deterministically sheds (the budget is already spent on arrival).
fn parse_deadline(
    value: Option<&Value>,
    cap: Option<Duration>,
) -> Result<Option<Duration>, String> {
    let requested = match value {
        None => None,
        Some(Value::UInt(ms)) => Some(Duration::from_millis(*ms)),
        Some(Value::Int(ms)) if *ms >= 0 => Some(Duration::from_millis(*ms as u64)),
        Some(_) => {
            return Err("`deadline_ms` must be a non-negative integer of milliseconds".into())
        }
    };
    Ok(match (requested, cap) {
        (Some(requested), Some(cap)) => Some(requested.min(cap)),
        (requested, cap) => requested.or(cap),
    })
}

/// Parses the `latch` field of a predict request: absent → `cut`, otherwise
/// the string forms `"cut"` and `"unroll:<frames>"`.
fn parse_latch(value: Option<&Value>) -> Result<LatchPolicy, String> {
    let Some(value) = value else {
        return Ok(LatchPolicy::Cut);
    };
    let Value::Str(text) = value else {
        return Err("`latch` must be a string: \"cut\" or \"unroll:<frames>\"".into());
    };
    if text == "cut" {
        return Ok(LatchPolicy::Cut);
    }
    if let Some(frames) = text.strip_prefix("unroll:") {
        let frames: usize = frames
            .parse()
            .map_err(|_| format!("bad frame count in `latch: \"{text}\"`"))?;
        if frames == 0 {
            return Err("`latch: \"unroll:0\"`: need at least one frame".into());
        }
        return Ok(LatchPolicy::Unroll(frames));
    }
    Err(format!(
        "unknown latch policy `{text}` (expected \"cut\" or \"unroll:<frames>\")"
    ))
}

/// Extracts the circuit payload from a predict request's fields: exactly one
/// of `bench` (BENCH text), `aiger` (AIGER-ASCII text) or `aiger_b64`
/// (base64 of an ASCII or binary AIGER file).
fn parse_payload(
    fields: &std::collections::BTreeMap<String, Value>,
    name: &str,
) -> Result<RequestPayload, String> {
    let sources = [
        ("bench", fields.get("bench")),
        ("aiger", fields.get("aiger")),
        ("aiger_b64", fields.get("aiger_b64")),
    ];
    let mut present = sources.iter().filter(|(_, value)| value.is_some());
    let (Some((field, Some(value))), None) = (present.next(), present.next()) else {
        return Err("predict request needs exactly one of `bench`, `aiger` or `aiger_b64`".into());
    };
    let Value::Str(text) = value else {
        return Err(format!("`{field}` must be a string"));
    };
    if *field == "bench" {
        if fields.contains_key("latch") {
            return Err("`latch` only applies to AIGER payloads".into());
        }
        return Ok(RequestPayload::Bench {
            name: name.to_string(),
            text: text.clone(),
        });
    }
    let policy = parse_latch(fields.get("latch"))?;
    let bytes = if *field == "aiger" {
        text.as_bytes().to_vec()
    } else {
        b64::decode(text).map_err(|e| format!("`aiger_b64`: {e}"))?
    };
    Ok(RequestPayload::Aiger {
        name: name.to_string(),
        bytes,
        policy,
    })
}

fn accept_loop(inner: &Arc<Inner>, listener: TcpListener) {
    for stream in listener.incoming() {
        if inner.draining.load(Ordering::SeqCst) {
            return; // the wake-up connection (or any later one) is dropped
        }
        let Ok(stream) = stream else { continue };
        inner.metrics.connections_accepted.inc();
        // Reap connections that have already closed, so a long-running
        // server churning through short-lived clients does not accumulate
        // one cloned socket and join handle per connection forever.
        {
            let mut guard = inner.connections.lock().expect("connections lock");
            let mut live = Vec::with_capacity(guard.len() + 1);
            for (handle, monitor) in guard.drain(..) {
                if handle.is_finished() {
                    let _ = handle.join();
                } else {
                    live.push((handle, monitor));
                }
            }
            *guard = live;
        }
        // Fleet bound: with every slot occupied (after reaping), refuse the
        // connection with one best-effort error line instead of letting the
        // thread count — and, with the one-request-at-a-time connection
        // loop, the in-flight request count — grow without limit.
        if inner.config.max_connections > 0 {
            let open = inner.connections.lock().expect("connections lock").len();
            if open >= inner.config.max_connections {
                inner.metrics.connections_rejected.inc();
                let mut stream = stream;
                let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
                let _ = stream
                    .write_all(b"{\"error\":\"server at connection capacity, try again later\"}\n");
                let _ = stream.shutdown(Shutdown::Both);
                continue;
            }
        }
        let Ok(monitor) = stream.try_clone() else {
            continue;
        };
        let conn_inner = Arc::clone(inner);
        let Ok(handle) = std::thread::Builder::new()
            .name("deepgate-serve-conn".into())
            .spawn(move || connection_loop(&conn_inner, stream))
        else {
            continue;
        };
        inner
            .connections
            .lock()
            .expect("connections lock")
            .push((handle, monitor));
    }
}

/// Decrements the open-connections gauge (and counts the close) when a
/// connection thread exits, whichever return path it takes.
struct ConnectionGuard<'a>(&'a ServeMetrics);

impl Drop for ConnectionGuard<'_> {
    fn drop(&mut self) {
        self.0.connections_open.dec();
        self.0.connections_closed.inc();
    }
}

/// The read-timeout tick the hygiene layer polls at: a fraction of the
/// tightest configured timeout (so expiry is detected promptly) clamped to
/// `[5 ms, 1 s]` (so an idle connection costs at most one wake-up per
/// second). `None` — no hygiene timeouts — keeps reads fully blocking.
fn hygiene_tick(idle: Option<Duration>, line: Option<Duration>) -> Option<Duration> {
    let tightest = match (idle, line) {
        (None, None) => return None,
        (Some(i), None) => i,
        (None, Some(l)) => l,
        (Some(i), Some(l)) => i.min(l),
    };
    Some((tightest / 4).clamp(Duration::from_millis(5), Duration::from_secs(1)))
}

/// How one attempt to complete the current request line ended.
enum LineRead {
    /// A full newline-terminated line is in the buffer.
    Complete,
    /// The socket's read tick expired; hygiene deadlines should be checked
    /// and the read retried (partial bytes stay in the buffer).
    Tick,
    /// The connection is done (client closed, mid-request EOF, line over
    /// the size limit — the closer has already responded if appropriate).
    Close,
}

fn connection_loop(inner: &Arc<Inner>, stream: TcpStream) {
    inner.metrics.connections_open.inc();
    let _guard = ConnectionGuard(&inner.metrics);
    // Socket timeouts are fd-level and shared with the cloned read half:
    // writes get the configured cap outright; reads tick so the loop can
    // enforce idle/line deadlines between blocking attempts.
    let _ = stream.set_write_timeout(inner.config.write_timeout);
    let _ = stream.set_read_timeout(hygiene_tick(
        inner.config.idle_timeout,
        inner.config.line_timeout,
    ));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    serve_connection(inner, &mut reader, &mut writer);
    // Retire the socket at the TCP level, not just this thread: the accept
    // loop still holds a monitor clone of the fd (for forced close during
    // drain), so without an explicit shutdown a cut client would see a
    // zero-window socket that never dies instead of a prompt FIN/RST.
    let _ = writer.shutdown(Shutdown::Both);
}

/// The request loop of one connection; returning retires the connection.
fn serve_connection(inner: &Arc<Inner>, reader: &mut BufReader<TcpStream>, writer: &mut TcpStream) {
    let config = &inner.config;
    let mut line = String::new();
    let mut last_activity = Instant::now();
    loop {
        line.clear();
        // Accumulate one request line across read ticks, policing the
        // hygiene deadlines: no traffic at all → idle reaping; a line
        // trickling in byte-by-byte → slow-loris cut-off.
        let mut line_started: Option<Instant> = None;
        loop {
            match read_line_step(reader, &mut line, config.max_request_bytes) {
                LineRead::Complete => break,
                LineRead::Close => {
                    if line.len() as u64 >= config.max_request_bytes {
                        inner.metrics.requests_unknown.inc();
                        inner.metrics.request_errors.inc();
                        let _ = writer.write_all(
                            format!(
                                "{{\"error\":\"request exceeds {} bytes\"}}\n",
                                config.max_request_bytes
                            )
                            .as_bytes(),
                        );
                    }
                    return;
                }
                LineRead::Tick => {
                    let now = Instant::now();
                    if line.is_empty() {
                        if let Some(idle) = config.idle_timeout {
                            if now.duration_since(last_activity) >= idle {
                                inner.metrics.connections_reaped.inc();
                                return;
                            }
                        }
                    } else {
                        // The deadline clock starts at the first tick that
                        // observes partial bytes — at worst one tick late,
                        // which the tick's clamp keeps proportionally small.
                        let started = *line_started.get_or_insert(now);
                        if let Some(limit) = config.line_timeout {
                            if now.duration_since(started) >= limit {
                                inner.metrics.connections_reaped.inc();
                                let _ =
                                    writer.write_all(b"{\"error\":\"request line timed out\"}\n");
                                return;
                            }
                        }
                    }
                }
            }
        }
        last_activity = Instant::now();
        if line.trim().is_empty() {
            continue;
        }
        let mut trace = RequestTrace::start();
        // Request handling is guarded: a panic in the parse/encode/plan
        // path (a bug, or an injected fault) becomes one error response on
        // a live connection instead of a dropped thread.
        let outcome = match std::panic::catch_unwind(AssertUnwindSafe(|| {
            handle_line(inner, &line, &mut trace)
        })) {
            Ok(outcome) => outcome,
            Err(payload) => {
                inner.metrics.request_panics_recovered.inc();
                LineOutcome::reply(error_response(
                    None,
                    &format!(
                        "internal error: request handling panicked: {}",
                        panic_message(payload.as_ref())
                    ),
                ))
            }
        };
        if outcome
            .response
            .as_object()
            .is_some_and(|fields| fields.contains_key("error"))
        {
            inner.metrics.request_errors.inc();
        }
        // The respond stage has its own guard: a panic while serialising or
        // writing (only reachable via an injected fault today) closes this
        // connection without killing the thread pool's accounting.
        let write_result: std::io::Result<()> =
            match std::panic::catch_unwind(AssertUnwindSafe(|| {
                trace.time(Stage::Respond, || -> std::io::Result<()> {
                    if let Some(faults) = &config.faults {
                        faults.fire(Stage::Respond)?;
                    }
                    let mut payload = match serde_json::to_string(&outcome.response) {
                        Ok(json) => json,
                        Err(_) => r#"{"error":"internal: response serialisation failed"}"#.into(),
                    };
                    payload.push('\n');
                    writer.write_all(payload.as_bytes())?;
                    writer.flush()
                })
            })) {
                Ok(result) => result,
                Err(_) => {
                    inner.metrics.request_panics_recovered.inc();
                    Err(std::io::Error::other("respond stage panicked"))
                }
            };
        let write_ok = match &write_result {
            Ok(()) => true,
            Err(e) => {
                if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
                    inner.metrics.write_timeouts.inc();
                }
                false
            }
        };
        // Stage histograms and the slow log track predict requests
        // only, so `request_latency_ns.count` equals
        // `requests_predict_total` exactly.
        if let Some(name) = &outcome.predict {
            inner.metrics.stages.observe(&trace);
            if let Some(slow) = &inner.slow_log {
                if let Some(record) = slow.check("predict", name, &trace) {
                    inner.metrics.slow_requests.inc();
                    eprintln!("{record}");
                }
            }
        }
        if !write_ok {
            return;
        }
        if outcome.shutdown {
            // Respond first, then begin the drain; the drain joins
            // this thread, so only flag the request here.
            inner.request_shutdown();
            return;
        }
    }
}

/// One attempt to complete the current request line. Partial bytes already
/// accumulated in `line` are kept across calls — a read timeout surfaces as
/// [`LineRead::Tick`] with the buffer intact, which is what lets the caller
/// enforce wall-clock deadlines on a line without losing data.
fn read_line_step(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
    max_request_bytes: u64,
) -> LineRead {
    let remaining = max_request_bytes.saturating_sub(line.len() as u64);
    match std::io::Read::take(reader, remaining).read_line(line) {
        Ok(_) if line.ends_with('\n') => LineRead::Complete,
        // EOF (client closed, possibly mid-request) or the size limit hit
        // without a newline: either way there is no resyncing this stream.
        Ok(_) => LineRead::Close,
        Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => LineRead::Tick,
        Err(_) => LineRead::Close,
    }
}

/// The result of dispatching one request line.
struct LineOutcome {
    response: Value,
    /// The connection requested a server shutdown.
    shutdown: bool,
    /// `Some(request name)` when the line was a predict request — only
    /// those fold into the stage histograms and the slow log.
    predict: Option<String>,
}

impl LineOutcome {
    fn reply(response: Value) -> Self {
        LineOutcome {
            response,
            shutdown: false,
            predict: None,
        }
    }
}

/// Parses and dispatches one request line, attributing stage timings to
/// `trace` (JSON parsing and payload extraction → `Parse`; `Encode`/`Plan`
/// inside [`Inner::resolve`] on cache misses; queueing + model execution →
/// `Infer`; the caller times `Respond` around the socket write).
fn handle_line(inner: &Arc<Inner>, line: &str, trace: &mut RequestTrace) -> LineOutcome {
    // Parse-stage fault hook: panics unwind into the connection loop's
    // recovery guard (one error response), I/O faults answer directly.
    if let Err(e) = inner.fault(Stage::Parse) {
        return LineOutcome::reply(error_response(None, &e.to_string()));
    }
    let parsed: Result<Value, _> = trace.time(Stage::Parse, || serde_json::from_str(line.trim()));
    let request = match parsed {
        Ok(value) => value,
        Err(e) => {
            inner.metrics.requests_unknown.inc();
            return LineOutcome::reply(error_response(None, &format!("invalid JSON: {e}")));
        }
    };
    let Some(fields) = request.as_object() else {
        inner.metrics.requests_unknown.inc();
        return LineOutcome::reply(error_response(None, "request must be a JSON object"));
    };
    let id = fields.get("id").cloned();
    let op = match fields.get("op") {
        Some(Value::Str(op)) => op.as_str(),
        Some(_) => {
            inner.metrics.requests_unknown.inc();
            return LineOutcome::reply(error_response(id, "`op` must be a string"));
        }
        None => "predict",
    };
    match op {
        "stats" => {
            inner.metrics.requests_stats.inc();
            let mut response = object_with_id(id);
            response.insert("stats".to_string(), inner.stats().serialize());
            LineOutcome::reply(Value::Object(response))
        }
        "metrics" => {
            inner.metrics.requests_metrics.inc();
            let mut response = object_with_id(id);
            response.insert(
                "metrics".to_string(),
                snapshot_to_value(&inner.metrics.snapshot()),
            );
            LineOutcome::reply(Value::Object(response))
        }
        "metrics_text" => {
            inner.metrics.requests_metrics_text.inc();
            let mut response = object_with_id(id);
            response.insert(
                "metrics_text".to_string(),
                Value::Str(inner.metrics.snapshot().to_prometheus("deepgate")),
            );
            LineOutcome::reply(Value::Object(response))
        }
        "shutdown" => {
            inner.metrics.requests_shutdown.inc();
            let mut response = object_with_id(id);
            response.insert("ok".to_string(), Value::Bool(true));
            LineOutcome {
                response: Value::Object(response),
                shutdown: true,
                predict: None,
            }
        }
        "predict" => {
            inner.metrics.requests_predict.inc();
            let name = match fields.get("name") {
                Some(Value::Str(name)) => name.as_str(),
                _ => "request",
            };
            let predict = Some(name.to_string());
            if inner.draining.load(Ordering::SeqCst) {
                return LineOutcome {
                    response: error_response(id, &ServeError::ShuttingDown.to_string()),
                    shutdown: false,
                    predict,
                };
            }
            let payload = match trace.time(Stage::Parse, || parse_payload(fields, name)) {
                Ok(payload) => payload,
                Err(message) => {
                    return LineOutcome {
                        response: error_response(id, &message),
                        shutdown: false,
                        predict,
                    }
                }
            };
            let budget =
                match parse_deadline(fields.get("deadline_ms"), inner.config.default_deadline) {
                    Ok(budget) => budget,
                    Err(message) => {
                        return LineOutcome {
                            response: error_response(id, &message),
                            shutdown: false,
                            predict,
                        }
                    }
                };
            // The budget is measured from the instant the request line was
            // read — the trace's start — not from here, so time already
            // spent parsing counts against it.
            let deadline = budget.map(|budget| trace.started_at() + budget);
            let outcome = match inner.resolve(&payload, trace) {
                Ok(prepared) => trace.time(Stage::Infer, || {
                    inner.scheduler.predict_with_deadline(prepared, deadline)
                }),
                Err(e) => Err(e),
            };
            let response = match outcome {
                Ok(probs) => {
                    let mut response = object_with_id(id);
                    response.insert("probs".to_string(), probs.serialize());
                    Value::Object(response)
                }
                Err(e) => error_response(id, &e.to_string()),
            };
            LineOutcome {
                response,
                shutdown: false,
                predict,
            }
        }
        other => {
            inner.metrics.requests_unknown.inc();
            LineOutcome::reply(error_response(id, &format!("unknown op `{other}`")))
        }
    }
}

fn object_with_id(id: Option<Value>) -> std::collections::BTreeMap<String, Value> {
    let mut map = std::collections::BTreeMap::new();
    if let Some(id) = id {
        map.insert("id".to_string(), id);
    }
    map
}

fn error_response(id: Option<Value>, message: &str) -> Value {
    let mut map = object_with_id(id);
    map.insert("error".to_string(), Value::Str(message.to_string()));
    Value::Object(map)
}
