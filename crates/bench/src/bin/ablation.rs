//! Ablation of DeepGate's design choices beyond the paper's tables: the
//! reversed propagation layer, the fixed gate-type input, the skip
//! connections and the per-gate-type regressor are disabled one at a time.

use deepgate_bench::{
    build_dataset, fmt_error, train_and_evaluate, ExperimentSettings, Report, Scale,
};
use deepgate_gnn::{AggregatorKind, DagRecConfig, DagRecGnn};
use deepgate_nn::ParamStore;

fn main() {
    let scale = Scale::from_env_and_args();
    let settings = ExperimentSettings::for_scale(scale);
    let dataset = build_dataset(&settings, true);
    let mut report = Report::new("ablation", "DeepGate design-choice ablation", scale);

    let base = DagRecConfig {
        feature_dim: 3,
        hidden_dim: settings.hidden_dim,
        num_iterations: settings.num_iterations,
        aggregator: AggregatorKind::Attention,
        reverse_layer: true,
        fix_gate_input: true,
        use_skip_connections: true,
        skip_encoding_frequencies: 8,
        regressor_hidden: settings.hidden_dim / 2,
        per_type_regressor: true,
        seed: 23,
    };
    let variants: Vec<(&str, DagRecConfig)> = vec![
        ("DeepGate (full)", base),
        (
            "w/o reversed layer",
            DagRecConfig {
                reverse_layer: false,
                ..base
            },
        ),
        (
            "w/o fixed gate input",
            DagRecConfig {
                fix_gate_input: false,
                ..base
            },
        ),
        (
            "w/o skip connections",
            DagRecConfig {
                use_skip_connections: false,
                ..base
            },
        ),
        (
            "single regressor head",
            DagRecConfig {
                per_type_regressor: false,
                ..base
            },
        ),
    ];

    for (label, config) in variants {
        let mut store = ParamStore::new();
        let model = DagRecGnn::new(&mut store, config);
        let error = train_and_evaluate(&model, &mut store, &dataset, &settings);
        report.push_row(
            label,
            vec![("Avg. Prediction Error".to_string(), fmt_error(error))],
        );
    }
    report.print();
    report.save();
}
