//! Deterministic fault injection for resilience testing.
//!
//! A [`FaultPlan`] is a seeded, stage-addressed schedule of failures —
//! panics, delays and I/O errors — that the serving stack consults at five
//! runtime hooks, one per [`Stage`] of the request path
//! (parse/encode/plan/infer/respond). The hooks are plain runtime checks
//! compiled into every build (no `#[cfg]` gating): a server without a plan
//! pays one `Option` test per stage, and chaos tests hand
//! [`crate::ServeConfig::faults`] a plan to drive the exact failure modes
//! they want to survive.
//!
//! Decisions are deterministic: whether the *n*-th check of a stage fires
//! depends only on the plan's seed, the stage, the rule and *n* — never on
//! wall time or global randomness. Rules with `rate == 1.0` and a `limit`
//! fire on exactly the first `limit` checks of their stage, which lets a
//! chaos test assert exact fault counts; fractional rates give a
//! reproducible pseudo-random schedule for soak-style runs.
//!
//! ```
//! use deepgate_serve::fault::{FaultKind, FaultPlan};
//! use deepgate::telemetry::Stage;
//! use std::time::Duration;
//!
//! let plan = FaultPlan::seeded(7)
//!     .inject_limited(Stage::Infer, FaultKind::Panic, 1.0, 3)
//!     .inject(Stage::Parse, FaultKind::Delay(Duration::from_millis(5)), 0.25);
//! assert_eq!(plan.check(Stage::Infer), Some(FaultKind::Panic));
//! ```

pub use deepgate::telemetry::Stage;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The failure modes a [`FaultPlan`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Unwind the executing thread, as a bug in stage code would. Worker
    /// threads recover via `catch_unwind` (and respawn on thread death);
    /// connection threads turn it into an internal-error response.
    Panic,
    /// Stall the stage for the given duration — stand-in for a slow model,
    /// a cold cache or a scheduling hiccup. Inflates latency and pushes
    /// queued requests past their deadlines.
    Delay(Duration),
    /// Fail the stage with a synthetic I/O error. At the respond stage this
    /// simulates a broken socket (the connection drops); elsewhere it
    /// surfaces as a clean internal-error response.
    IoError,
}

impl FaultKind {
    /// The kind's name, used in injected panic/error messages.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Delay(_) => "delay",
            FaultKind::IoError => "io-error",
        }
    }
}

/// One injection rule: at `stage`, fire `kind` on a `rate` fraction of
/// checks, at most `limit` times (0 = unlimited).
#[derive(Debug)]
struct FaultRule {
    stage: Stage,
    kind: FaultKind,
    rate: f64,
    limit: u64,
    fired: AtomicU64,
}

/// A seeded, stage-addressed fault schedule. See the [module docs](self).
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
    /// Per-stage check sequence numbers — the sole input (with the seed)
    /// to each firing decision.
    checks: [AtomicU64; Stage::COUNT],
    fired_at: [AtomicU64; Stage::COUNT],
}

/// SplitMix64: a tiny, high-quality mixer — enough to turn (seed, stage,
/// rule, sequence) into an unbiased coin for fractional rates.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// An empty plan (no rules) under the given seed.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
            checks: std::array::from_fn(|_| AtomicU64::new(0)),
            fired_at: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Adds an unlimited rule: `kind` fires on a `rate` fraction
    /// (`0.0 ..= 1.0`) of the stage's checks.
    pub fn inject(self, stage: Stage, kind: FaultKind, rate: f64) -> Self {
        self.inject_limited(stage, kind, rate, 0)
    }

    /// Adds a rule that fires at most `limit` times (0 = unlimited). With
    /// `rate == 1.0`, exactly the stage's first `limit` checks fire (in
    /// rule-insertion order when several rules address one stage), so tests
    /// can assert exact fault counts.
    pub fn inject_limited(mut self, stage: Stage, kind: FaultKind, rate: f64, limit: u64) -> Self {
        self.rules.push(FaultRule {
            stage,
            kind,
            rate: rate.clamp(0.0, 1.0),
            limit,
            fired: AtomicU64::new(0),
        });
        self
    }

    /// One stage check: returns the fault to inject now, if any. Each check
    /// consumes one per-stage sequence number; at most one rule fires per
    /// check (the first matching rule in insertion order wins).
    pub fn check(&self, stage: Stage) -> Option<FaultKind> {
        let stage_index = Stage::ALL.iter().position(|s| *s == stage).expect("stage");
        let n = self.checks[stage_index].fetch_add(1, Ordering::Relaxed);
        for (rule_index, rule) in self.rules.iter().enumerate() {
            if rule.stage != stage {
                continue;
            }
            let coin = splitmix64(
                self.seed ^ ((stage_index as u64) << 56) ^ ((rule_index as u64) << 48) ^ n,
            );
            // coin/2^64 < rate, computed in integers to keep rate == 1.0
            // exact (every check fires).
            let fires = (coin as f64) < rule.rate * (u64::MAX as f64);
            if !fires {
                continue;
            }
            if rule.limit > 0 && rule.fired.fetch_add(1, Ordering::Relaxed) >= rule.limit {
                continue; // budget spent; later rules may still fire
            }
            if rule.limit == 0 {
                rule.fired.fetch_add(1, Ordering::Relaxed);
            }
            self.fired_at[stage_index].fetch_add(1, Ordering::Relaxed);
            return Some(rule.kind);
        }
        None
    }

    /// Faults fired at `stage` so far.
    pub fn fired_at(&self, stage: Stage) -> u64 {
        let stage_index = Stage::ALL.iter().position(|s| *s == stage).expect("stage");
        self.fired_at[stage_index].load(Ordering::Relaxed)
    }

    /// Faults fired across all stages so far.
    pub fn fired(&self) -> u64 {
        self.fired_at
            .iter()
            .map(|f| f.load(Ordering::Relaxed))
            .sum()
    }

    /// Checks consumed at `stage` so far (fired or not).
    pub fn checks_at(&self, stage: Stage) -> u64 {
        let stage_index = Stage::ALL.iter().position(|s| *s == stage).expect("stage");
        self.checks[stage_index].load(Ordering::Relaxed)
    }

    /// Whether every limited rule has spent its budget — the moment a chaos
    /// test can rely on fault-free traffic again.
    pub fn exhausted(&self) -> bool {
        self.rules
            .iter()
            .all(|r| r.limit > 0 && r.fired.load(Ordering::Relaxed) >= r.limit)
    }

    /// The message carried by injected panics and synthetic I/O errors —
    /// greppable in logs, and matchable by panic hooks that want to silence
    /// expected chaos-test noise.
    pub fn message(stage: Stage, kind: FaultKind) -> String {
        format!("injected fault: {} at stage {}", kind.name(), stage.name())
    }

    /// Checks `stage` and *applies* panic/delay faults in place: a `Panic`
    /// rule panics with [`FaultPlan::message`], a `Delay` rule sleeps.
    /// Returns `Err` with a synthetic [`std::io::Error`] for `IoError`
    /// rules, which each hook site maps to its own failure surface.
    ///
    /// # Errors
    ///
    /// Returns the synthetic error when an `IoError` rule fires.
    ///
    /// # Panics
    ///
    /// Panics (deliberately) when a `Panic` rule fires.
    pub fn fire(&self, stage: Stage) -> Result<(), std::io::Error> {
        match self.check(stage) {
            None => Ok(()),
            Some(FaultKind::Panic) => {
                panic!("{}", FaultPlan::message(stage, FaultKind::Panic))
            }
            Some(FaultKind::Delay(duration)) => {
                std::thread::sleep(duration);
                Ok(())
            }
            Some(FaultKind::IoError) => Err(std::io::Error::other(FaultPlan::message(
                stage,
                FaultKind::IoError,
            ))),
        }
    }
}

/// Best-effort extraction of a panic payload's message — used by the
/// recovery paths to fold the panic's text into the error they respond
/// with.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limited_full_rate_rules_fire_exactly_their_budget() {
        let plan = FaultPlan::seeded(42).inject_limited(Stage::Infer, FaultKind::Panic, 1.0, 3);
        let fired: Vec<bool> = (0..10)
            .map(|_| plan.check(Stage::Infer).is_some())
            .collect();
        assert_eq!(
            fired,
            [true, true, true]
                .iter()
                .chain(&[false; 7])
                .copied()
                .collect::<Vec<_>>()
        );
        assert_eq!(plan.fired_at(Stage::Infer), 3);
        assert_eq!(plan.checks_at(Stage::Infer), 10);
        assert!(plan.exhausted());
    }

    #[test]
    fn decisions_are_deterministic_per_seed_and_sequence() {
        let decide = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::seeded(seed).inject(Stage::Parse, FaultKind::IoError, 0.5);
            (0..64)
                .map(|_| plan.check(Stage::Parse).is_some())
                .collect()
        };
        assert_eq!(decide(7), decide(7), "same seed, same schedule");
        assert_ne!(decide(7), decide(8), "different seeds diverge");
        let fired = decide(7).iter().filter(|f| **f).count();
        assert!((10..=54).contains(&fired), "rate 0.5 fired {fired}/64");
    }

    #[test]
    fn stages_are_addressed_independently() {
        let plan = FaultPlan::seeded(1)
            .inject_limited(Stage::Parse, FaultKind::Panic, 1.0, 1)
            .inject_limited(Stage::Respond, FaultKind::IoError, 1.0, 2);
        assert_eq!(plan.check(Stage::Encode), None, "no rule for encode");
        assert_eq!(plan.check(Stage::Parse), Some(FaultKind::Panic));
        assert_eq!(plan.check(Stage::Parse), None, "parse budget spent");
        assert_eq!(plan.check(Stage::Respond), Some(FaultKind::IoError));
        assert_eq!(plan.fired(), 2);
        assert!(!plan.exhausted(), "respond still has budget");
    }

    #[test]
    fn rules_on_one_stage_fire_in_insertion_order() {
        let plan = FaultPlan::seeded(3)
            .inject_limited(Stage::Infer, FaultKind::Delay(Duration::ZERO), 1.0, 2)
            .inject_limited(Stage::Infer, FaultKind::Panic, 1.0, 1);
        assert_eq!(
            plan.check(Stage::Infer),
            Some(FaultKind::Delay(Duration::ZERO))
        );
        assert_eq!(
            plan.check(Stage::Infer),
            Some(FaultKind::Delay(Duration::ZERO))
        );
        assert_eq!(plan.check(Stage::Infer), Some(FaultKind::Panic));
        assert_eq!(plan.check(Stage::Infer), None);
    }

    #[test]
    fn fire_applies_delays_and_surfaces_io_errors() {
        let plan = FaultPlan::seeded(9)
            .inject_limited(Stage::Plan, FaultKind::IoError, 1.0, 1)
            .inject_limited(
                Stage::Encode,
                FaultKind::Delay(Duration::from_millis(1)),
                1.0,
                1,
            );
        let err = plan.fire(Stage::Plan).expect_err("io fault surfaces");
        assert!(err
            .to_string()
            .contains("injected fault: io-error at stage plan"));
        let start = std::time::Instant::now();
        plan.fire(Stage::Encode).expect("delay is not an error");
        assert!(start.elapsed() >= Duration::from_millis(1));
        plan.fire(Stage::Plan).expect("budget spent, no fault");
    }

    #[test]
    fn injected_panics_carry_the_greppable_message() {
        let plan = FaultPlan::seeded(5).inject_limited(Stage::Infer, FaultKind::Panic, 1.0, 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = plan.fire(Stage::Infer);
        }));
        let payload = result.expect_err("panic rule panics");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("panic carries a String");
        assert_eq!(message, "injected fault: panic at stage infer");
    }
}
