//! A dynamic reverse-mode automatic-differentiation tape.
//!
//! Each forward pass of a model builds a fresh [`Graph`]; every operation
//! records its inputs so [`Graph::backward`] can propagate gradients in
//! reverse topological order and accumulate them into the [`ParamStore`].
//!
//! Besides the usual dense ops, the tape provides three ops that make
//! message passing over circuit DAGs efficient:
//!
//! - [`Graph::gather_rows`] — select the hidden states of a node's
//!   predecessors (one gather per topological level).
//! - [`Graph::scatter_add_rows`] — sum messages back onto their target
//!   nodes.
//! - [`Graph::segment_softmax`] — softmax over each node's predecessor set,
//!   the normalisation used by DeepGate's additive attention (Eq. 5).

use crate::{ParamId, ParamStore, Tensor};

/// Handle to a value on the autodiff tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    Param(ParamId),
    Matmul(Var, Var),
    Add(Var, Var),
    AddRow(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    MulCol(Var, Var),
    Scale(Var, f32),
    AddScalar(Var),
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    OneMinus(Var),
    ConcatCols(Var, Var),
    GatherRows(Var, Vec<usize>),
    ScatterAddRows(Var, Vec<usize>),
    SegmentSoftmax(Var, Vec<usize>),
    SumAll(Var),
    MeanAll(Var),
    L1Loss(Var, Tensor),
    MseLoss(Var, Tensor),
}

#[derive(Debug, Clone)]
struct TapeNode {
    value: Tensor,
    grad: Option<Tensor>,
    op: Op,
}

/// A reverse-mode autodiff tape.
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<TapeNode>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph { nodes: Vec::new() }
    }

    /// Number of recorded tape entries.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of a variable.
    pub fn value(&self, var: Var) -> &Tensor {
        &self.nodes[var.0].value
    }

    /// The gradient of a variable after [`Graph::backward`], if it received
    /// one.
    pub fn grad(&self, var: Var) -> Option<&Tensor> {
        self.nodes[var.0].grad.as_ref()
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(TapeNode {
            value,
            grad: None,
            op,
        });
        Var(self.nodes.len() - 1)
    }

    /// Records a constant input (no gradient flows into it).
    pub fn input(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Records a trainable parameter; its gradient is accumulated into the
    /// store on [`Graph::backward`].
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        self.push(store.value(id).clone(), Op::Param(id))
    }

    /// Matrix product `a @ b`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul(self.value(b));
        self.push(value, Op::Matmul(a, b))
    }

    /// Element-wise sum of two equally-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).add(self.value(b));
        self.push(value, Op::Add(a, b))
    }

    /// Adds a `[1, d]` row vector to every row of a `[n, d]` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not `[1, d]` with matching `d`.
    pub fn add_row(&mut self, a: Var, row: Var) -> Var {
        let m = self.value(a);
        let r = self.value(row);
        assert_eq!(r.rows(), 1, "add_row expects a [1, d] row vector");
        assert_eq!(m.cols(), r.cols(), "add_row column mismatch");
        let mut out = m.clone();
        for i in 0..out.rows() {
            for j in 0..out.cols() {
                out.set(i, j, out.get(i, j) + r.get(0, j));
            }
        }
        self.push(out, Op::AddRow(a, row))
    }

    /// Element-wise difference `a - b`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).sub(self.value(b));
        self.push(value, Op::Sub(a, b))
    }

    /// Element-wise product.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).mul(self.value(b));
        self.push(value, Op::Mul(a, b))
    }

    /// Broadcasts a `[k, 1]` column over the columns of a `[k, d]` matrix and
    /// multiplies element-wise (used to weight messages by attention
    /// coefficients).
    ///
    /// # Panics
    ///
    /// Panics if the shapes are incompatible.
    pub fn mul_col(&mut self, col: Var, mat: Var) -> Var {
        let c = self.value(col);
        let m = self.value(mat);
        assert_eq!(c.cols(), 1, "mul_col expects a [k, 1] column");
        assert_eq!(c.rows(), m.rows(), "mul_col row mismatch");
        let mut out = m.clone();
        for i in 0..out.rows() {
            let w = c.get(i, 0);
            for j in 0..out.cols() {
                out.set(i, j, out.get(i, j) * w);
            }
        }
        self.push(out, Op::MulCol(col, mat))
    }

    /// Multiplies by a scalar constant.
    pub fn scale(&mut self, a: Var, factor: f32) -> Var {
        let value = self.value(a).map(|v| v * factor);
        self.push(value, Op::Scale(a, factor))
    }

    /// Adds a scalar constant.
    pub fn add_scalar(&mut self, a: Var, constant: f32) -> Var {
        let value = self.value(a).map(|v| v + constant);
        self.push(value, Op::AddScalar(a))
    }

    /// Element-wise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|v| 1.0 / (1.0 + (-v).exp()));
        self.push(value, Op::Sigmoid(a))
    }

    /// Element-wise hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.value(a).map(f32::tanh);
        self.push(value, Op::Tanh(a))
    }

    /// Element-wise rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|v| v.max(0.0));
        self.push(value, Op::Relu(a))
    }

    /// Element-wise `1 - x` (used by the GRU update gate).
    pub fn one_minus(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|v| 1.0 - v);
        self.push(value, Op::OneMinus(a))
    }

    /// Concatenates two matrices with the same number of rows along the
    /// column axis.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let ta = self.value(a);
        let tb = self.value(b);
        assert_eq!(ta.rows(), tb.rows(), "concat_cols row mismatch");
        let rows = ta.rows();
        let cols = ta.cols() + tb.cols();
        let mut out = Tensor::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..ta.cols() {
                out.set(i, j, ta.get(i, j));
            }
            for j in 0..tb.cols() {
                out.set(i, ta.cols() + j, tb.get(i, j));
            }
        }
        self.push(out, Op::ConcatCols(a, b))
    }

    /// Selects rows of `a` by index: row `i` of the result is row
    /// `indices[i]` of `a`. Indices may repeat.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn gather_rows(&mut self, a: Var, indices: &[usize]) -> Var {
        let t = self.value(a);
        let mut out = Tensor::zeros(indices.len(), t.cols());
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < t.rows(), "gather index {idx} out of range");
            for j in 0..t.cols() {
                out.set(i, j, t.get(idx, j));
            }
        }
        self.push(out, Op::GatherRows(a, indices.to_vec()))
    }

    /// Scatters rows of `a` into a `[num_rows, d]` matrix, summing rows that
    /// share a target index: `out[indices[i]] += a[i]`.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= num_rows` or the index count differs from
    /// the number of rows of `a`.
    pub fn scatter_add_rows(&mut self, a: Var, indices: &[usize], num_rows: usize) -> Var {
        let t = self.value(a);
        assert_eq!(t.rows(), indices.len(), "scatter index count mismatch");
        let mut out = Tensor::zeros(num_rows, t.cols());
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < num_rows, "scatter index {idx} out of range");
            for j in 0..t.cols() {
                out.set(idx, j, out.get(idx, j) + t.get(i, j));
            }
        }
        self.push(out, Op::ScatterAddRows(a, indices.to_vec()))
    }

    /// Softmax over segments: rows of the `[k, 1]` score column that share a
    /// segment id are normalised together. This is the attention
    /// normalisation over each node's predecessor set.
    ///
    /// # Panics
    ///
    /// Panics if `scores` is not a column or the segment count differs from
    /// the number of rows.
    pub fn segment_softmax(&mut self, scores: Var, segments: &[usize]) -> Var {
        let s = self.value(scores);
        assert_eq!(s.cols(), 1, "segment_softmax expects a [k, 1] column");
        assert_eq!(s.rows(), segments.len(), "segment count mismatch");
        let value = segment_softmax_forward(s, segments);
        self.push(value, Op::SegmentSoftmax(scores, segments.to_vec()))
    }

    /// Sum of all elements, as a `[1, 1]` tensor.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let value = Tensor::from_vec(1, 1, vec![self.value(a).sum()]);
        self.push(value, Op::SumAll(a))
    }

    /// Mean of all elements, as a `[1, 1]` tensor.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let value = Tensor::from_vec(1, 1, vec![self.value(a).mean()]);
        self.push(value, Op::MeanAll(a))
    }

    /// Mean absolute error between `pred` and a constant `target`, as a
    /// `[1, 1]` tensor. This is the L1 training loss of the paper.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn l1_loss(&mut self, pred: Var, target: &Tensor) -> Var {
        let p = self.value(pred);
        assert_eq!(p.shape(), target.shape(), "l1_loss shape mismatch");
        let value = Tensor::from_vec(1, 1, vec![p.sub(target).map(f32::abs).mean()]);
        self.push(value, Op::L1Loss(pred, target.clone()))
    }

    /// Mean squared error between `pred` and a constant `target`, as a
    /// `[1, 1]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mse_loss(&mut self, pred: Var, target: &Tensor) -> Var {
        let p = self.value(pred);
        assert_eq!(p.shape(), target.shape(), "mse_loss shape mismatch");
        let diff = p.sub(target);
        let value = Tensor::from_vec(1, 1, vec![diff.mul(&diff).mean()]);
        self.push(value, Op::MseLoss(pred, target.clone()))
    }

    /// Runs reverse-mode differentiation from `loss` (which must be a
    /// `[1, 1]` tensor) and accumulates parameter gradients into `store`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a scalar-shaped tensor.
    pub fn backward(&mut self, loss: Var, store: &mut ParamStore) {
        assert_eq!(
            self.value(loss).shape(),
            [1, 1],
            "backward expects a scalar loss"
        );
        self.nodes[loss.0].grad = Some(Tensor::ones(1, 1));
        for i in (0..self.nodes.len()).rev() {
            let grad = match self.nodes[i].grad.clone() {
                Some(g) => g,
                None => continue,
            };
            let op = self.nodes[i].op.clone();
            match op {
                Op::Leaf => {}
                Op::Param(id) => store.accumulate_grad(id, &grad),
                Op::Matmul(a, b) => {
                    let da = grad.matmul(&self.nodes[b.0].value.transpose());
                    let db = self.nodes[a.0].value.transpose().matmul(&grad);
                    self.accumulate(a, da);
                    self.accumulate(b, db);
                }
                Op::Add(a, b) => {
                    self.accumulate(a, grad.clone());
                    self.accumulate(b, grad);
                }
                Op::AddRow(a, row) => {
                    self.accumulate(a, grad.clone());
                    let mut row_grad = Tensor::zeros(1, grad.cols());
                    for i in 0..grad.rows() {
                        for j in 0..grad.cols() {
                            row_grad.set(0, j, row_grad.get(0, j) + grad.get(i, j));
                        }
                    }
                    self.accumulate(row, row_grad);
                }
                Op::Sub(a, b) => {
                    self.accumulate(a, grad.clone());
                    self.accumulate(b, grad.map(|v| -v));
                }
                Op::Mul(a, b) => {
                    let da = grad.mul(&self.nodes[b.0].value);
                    let db = grad.mul(&self.nodes[a.0].value);
                    self.accumulate(a, da);
                    self.accumulate(b, db);
                }
                Op::MulCol(col, mat) => {
                    let c = self.nodes[col.0].value.clone();
                    let m = self.nodes[mat.0].value.clone();
                    let mut dc = Tensor::zeros(c.rows(), 1);
                    let mut dm = Tensor::zeros(m.rows(), m.cols());
                    for i in 0..m.rows() {
                        let mut acc = 0.0;
                        for j in 0..m.cols() {
                            acc += grad.get(i, j) * m.get(i, j);
                            dm.set(i, j, grad.get(i, j) * c.get(i, 0));
                        }
                        dc.set(i, 0, acc);
                    }
                    self.accumulate(col, dc);
                    self.accumulate(mat, dm);
                }
                Op::Scale(a, factor) => self.accumulate(a, grad.map(|v| v * factor)),
                Op::AddScalar(a) => self.accumulate(a, grad),
                Op::Sigmoid(a) => {
                    let y = &self.nodes[i].value;
                    let da = grad.zip(y, |g, s| g * s * (1.0 - s));
                    self.accumulate(a, da);
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[i].value;
                    let da = grad.zip(y, |g, t| g * (1.0 - t * t));
                    self.accumulate(a, da);
                }
                Op::Relu(a) => {
                    let x = &self.nodes[a.0].value;
                    let da = grad.zip(x, |g, v| if v > 0.0 { g } else { 0.0 });
                    self.accumulate(a, da);
                }
                Op::OneMinus(a) => self.accumulate(a, grad.map(|v| -v)),
                Op::ConcatCols(a, b) => {
                    let ca = self.nodes[a.0].value.cols();
                    let cb = self.nodes[b.0].value.cols();
                    let rows = grad.rows();
                    let mut da = Tensor::zeros(rows, ca);
                    let mut db = Tensor::zeros(rows, cb);
                    for i in 0..rows {
                        for j in 0..ca {
                            da.set(i, j, grad.get(i, j));
                        }
                        for j in 0..cb {
                            db.set(i, j, grad.get(i, ca + j));
                        }
                    }
                    self.accumulate(a, da);
                    self.accumulate(b, db);
                }
                Op::GatherRows(a, indices) => {
                    let src_rows = self.nodes[a.0].value.rows();
                    let mut da = Tensor::zeros(src_rows, grad.cols());
                    for (i, &idx) in indices.iter().enumerate() {
                        for j in 0..grad.cols() {
                            da.set(idx, j, da.get(idx, j) + grad.get(i, j));
                        }
                    }
                    self.accumulate(a, da);
                }
                Op::ScatterAddRows(a, indices) => {
                    let mut da = Tensor::zeros(indices.len(), grad.cols());
                    for (i, &idx) in indices.iter().enumerate() {
                        for j in 0..grad.cols() {
                            da.set(i, j, grad.get(idx, j));
                        }
                    }
                    self.accumulate(a, da);
                }
                Op::SegmentSoftmax(scores, segments) => {
                    let y = self.nodes[i].value.clone();
                    let da = segment_softmax_backward(&y, &grad, &segments);
                    self.accumulate(scores, da);
                }
                Op::SumAll(a) => {
                    let g = grad.get(0, 0);
                    let shape = self.nodes[a.0].value.shape();
                    self.accumulate(a, Tensor::full(shape[0], shape[1], g));
                }
                Op::MeanAll(a) => {
                    let shape = self.nodes[a.0].value.shape();
                    let n = (shape[0] * shape[1]) as f32;
                    let g = grad.get(0, 0) / n;
                    self.accumulate(a, Tensor::full(shape[0], shape[1], g));
                }
                Op::L1Loss(pred, target) => {
                    let p = &self.nodes[pred.0].value;
                    let n = p.len() as f32;
                    let g = grad.get(0, 0) / n;
                    let dp = p.zip(&target, |pv, tv| {
                        if pv > tv {
                            g
                        } else if pv < tv {
                            -g
                        } else {
                            0.0
                        }
                    });
                    self.accumulate(pred, dp);
                }
                Op::MseLoss(pred, target) => {
                    let p = &self.nodes[pred.0].value;
                    let n = p.len() as f32;
                    let g = grad.get(0, 0) * 2.0 / n;
                    let dp = p.zip(&target, |pv, tv| g * (pv - tv));
                    self.accumulate(pred, dp);
                }
            }
        }
    }

    fn accumulate(&mut self, var: Var, delta: Tensor) {
        match &mut self.nodes[var.0].grad {
            Some(existing) => existing.axpy(1.0, &delta),
            slot @ None => *slot = Some(delta),
        }
    }
}

/// Gradient-free segment softmax on plain tensors: rows of the `[k, 1]`
/// score column that share a segment id are normalised together. This is the
/// inference-path counterpart of [`Graph::segment_softmax`].
///
/// # Panics
///
/// Panics if `scores` is not a column or the segment count differs from the
/// number of rows.
pub fn segment_softmax_tensor(scores: &Tensor, segments: &[usize]) -> Tensor {
    assert_eq!(scores.cols(), 1, "segment_softmax expects a [k, 1] column");
    assert_eq!(scores.rows(), segments.len(), "segment count mismatch");
    segment_softmax_forward(scores, segments)
}

fn segment_softmax_forward(scores: &Tensor, segments: &[usize]) -> Tensor {
    let k = scores.rows();
    let num_segments = segments.iter().copied().max().map_or(0, |m| m + 1);
    let mut max_per_seg = vec![f32::NEG_INFINITY; num_segments];
    for i in 0..k {
        max_per_seg[segments[i]] = max_per_seg[segments[i]].max(scores.get(i, 0));
    }
    let mut sum_per_seg = vec![0.0f32; num_segments];
    let mut exps = vec![0.0f32; k];
    for i in 0..k {
        let e = (scores.get(i, 0) - max_per_seg[segments[i]]).exp();
        exps[i] = e;
        sum_per_seg[segments[i]] += e;
    }
    let mut out = Tensor::zeros(k, 1);
    for i in 0..k {
        out.set(i, 0, exps[i] / sum_per_seg[segments[i]]);
    }
    out
}

fn segment_softmax_backward(y: &Tensor, grad: &Tensor, segments: &[usize]) -> Tensor {
    let k = y.rows();
    let num_segments = segments.iter().copied().max().map_or(0, |m| m + 1);
    // dot[s] = sum_j grad_j * y_j within segment s
    let mut dot = vec![0.0f32; num_segments];
    for i in 0..k {
        dot[segments[i]] += grad.get(i, 0) * y.get(i, 0);
    }
    let mut out = Tensor::zeros(k, 1);
    for i in 0..k {
        let v = y.get(i, 0) * (grad.get(i, 0) - dot[segments[i]]);
        out.set(i, 0, v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically checks d loss / d param[0][0] via central differences.
    fn finite_difference(
        store: &mut ParamStore,
        id: ParamId,
        row: usize,
        col: usize,
        mut forward: impl FnMut(&ParamStore) -> f32,
    ) -> f32 {
        let eps = 1e-3;
        let original = store.value(id).get(row, col);
        store.value_mut(id).set(row, col, original + eps);
        let plus = forward(store);
        store.value_mut(id).set(row, col, original - eps);
        let minus = forward(store);
        store.value_mut(id).set(row, col, original);
        (plus - minus) / (2.0 * eps)
    }

    #[test]
    fn matmul_gradient_matches_finite_difference() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_rows(&[&[0.5, -0.2], &[0.3, 0.8]]));
        let x = Tensor::from_rows(&[&[1.0, 2.0], &[-1.0, 0.5], &[0.3, 0.7]]);
        let target = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.5, 0.5]]);

        let run = |store: &ParamStore| -> f32 {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let wv = g.param(store, w);
            let y = g.matmul(xv, wv);
            let loss = g.mse_loss(y, &target);
            g.value(loss).get(0, 0)
        };

        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let wv = g.param(&store, w);
        let y = g.matmul(xv, wv);
        let loss = g.mse_loss(y, &target);
        g.backward(loss, &mut store);

        for (r, c) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            let numeric = finite_difference(&mut store, w, r, c, run);
            let analytic = store.grad(w).get(r, c);
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "({r},{c}): numeric {numeric} analytic {analytic}"
            );
        }
    }

    #[test]
    fn elementwise_and_activation_gradients() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_rows(&[&[0.3, -0.6, 0.9]]));
        let target = Tensor::from_rows(&[&[0.2, 0.4, 0.1]]);

        let run = |store: &ParamStore| -> f32 {
            let mut g = Graph::new();
            let wv = g.param(store, w);
            let s = g.sigmoid(wv);
            let t = g.tanh(s);
            let r = g.relu(t);
            let o = g.one_minus(r);
            let sc = g.scale(o, 1.5);
            let sh = g.add_scalar(sc, 0.1);
            let loss = g.l1_loss(sh, &target);
            g.value(loss).get(0, 0)
        };

        let mut g = Graph::new();
        let wv = g.param(&store, w);
        let s = g.sigmoid(wv);
        let t = g.tanh(s);
        let r = g.relu(t);
        let o = g.one_minus(r);
        let sc = g.scale(o, 1.5);
        let sh = g.add_scalar(sc, 0.1);
        let loss = g.l1_loss(sh, &target);
        g.backward(loss, &mut store);

        for c in 0..3 {
            let numeric = finite_difference(&mut store, w, 0, c, run);
            let analytic = store.grad(w).get(0, c);
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "col {c}: numeric {numeric} analytic {analytic}"
            );
        }
    }

    #[test]
    fn gather_scatter_gradients() {
        let mut store = ParamStore::new();
        let w = store.add(
            "w",
            Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]),
        );
        let indices = vec![0usize, 2, 2, 1];
        let targets = vec![0usize, 1, 1, 0];
        let target = Tensor::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]);

        let run = |store: &ParamStore| -> f32 {
            let mut g = Graph::new();
            let wv = g.param(store, w);
            let gathered = g.gather_rows(wv, &indices);
            let scattered = g.scatter_add_rows(gathered, &targets, 2);
            let loss = g.mse_loss(scattered, &target);
            g.value(loss).get(0, 0)
        };

        let mut g = Graph::new();
        let wv = g.param(&store, w);
        let gathered = g.gather_rows(wv, &indices);
        let scattered = g.scatter_add_rows(gathered, &targets, 2);
        let loss = g.mse_loss(scattered, &target);
        g.backward(loss, &mut store);

        for (r, c) in [(0, 0), (1, 1), (2, 0), (2, 1)] {
            let numeric = finite_difference(&mut store, w, r, c, run);
            let analytic = store.grad(w).get(r, c);
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "({r},{c}): numeric {numeric} analytic {analytic}"
            );
        }
    }

    #[test]
    fn segment_softmax_forward_normalises_per_segment() {
        let scores = Tensor::column(&[1.0, 2.0, 3.0, 0.5, 0.5]);
        let segments = vec![0, 0, 1, 1, 1];
        let y = segment_softmax_forward(&scores, &segments);
        let seg0: f32 = y.get(0, 0) + y.get(1, 0);
        let seg1: f32 = y.get(2, 0) + y.get(3, 0) + y.get(4, 0);
        assert!((seg0 - 1.0).abs() < 1e-6);
        assert!((seg1 - 1.0).abs() < 1e-6);
        assert!(y.get(1, 0) > y.get(0, 0));
    }

    #[test]
    fn segment_softmax_gradient_matches_finite_difference() {
        let mut store = ParamStore::new();
        let w = store.add("scores", Tensor::column(&[0.2, -0.4, 0.7, 1.1]));
        let segments = vec![0usize, 0, 1, 1];
        let weights = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 2.0], &[1.5, 0.5], &[0.2, 0.9]]);
        let target = Tensor::from_rows(&[&[0.3, 0.3], &[0.4, 0.4]]);

        let run = |store: &ParamStore| -> f32 {
            let mut g = Graph::new();
            let sv = g.param(store, w);
            let alpha = g.segment_softmax(sv, &segments);
            let wv = g.input(weights.clone());
            let weighted = g.mul_col(alpha, wv);
            let pooled = g.scatter_add_rows(weighted, &segments, 2);
            let loss = g.mse_loss(pooled, &target);
            g.value(loss).get(0, 0)
        };

        let mut g = Graph::new();
        let sv = g.param(&store, w);
        let alpha = g.segment_softmax(sv, &segments);
        let wv = g.input(weights.clone());
        let weighted = g.mul_col(alpha, wv);
        let pooled = g.scatter_add_rows(weighted, &segments, 2);
        let loss = g.mse_loss(pooled, &target);
        g.backward(loss, &mut store);

        for r in 0..4 {
            let numeric = finite_difference(&mut store, w, r, 0, run);
            let analytic = store.grad(w).get(r, 0);
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "row {r}: numeric {numeric} analytic {analytic}"
            );
        }
    }

    #[test]
    fn concat_add_row_sub_mul_gradients() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::from_rows(&[&[0.1, 0.2], &[0.3, 0.4]]));
        let b = store.add("b", Tensor::from_rows(&[&[0.5], &[0.6]]));
        let bias = store.add("bias", Tensor::from_rows(&[&[0.05, -0.05, 0.1]]));
        let target = Tensor::from_rows(&[&[0.0, 1.0, 0.5], &[1.0, 0.0, 0.5]]);

        let run = |store: &ParamStore| -> f32 {
            let mut g = Graph::new();
            let av = g.param(store, a);
            let bv = g.param(store, b);
            let biasv = g.param(store, bias);
            let cat = g.concat_cols(av, bv);
            let shifted = g.add_row(cat, biasv);
            let doubled = g.add(shifted, shifted);
            let diff = g.sub(doubled, shifted);
            let squared = g.mul(diff, diff);
            let loss = g.l1_loss(squared, &target);
            g.value(loss).get(0, 0)
        };

        let mut g = Graph::new();
        let av = g.param(&store, a);
        let bv = g.param(&store, b);
        let biasv = g.param(&store, bias);
        let cat = g.concat_cols(av, bv);
        let shifted = g.add_row(cat, biasv);
        let doubled = g.add(shifted, shifted);
        let diff = g.sub(doubled, shifted);
        let squared = g.mul(diff, diff);
        let loss = g.l1_loss(squared, &target);
        g.backward(loss, &mut store);

        for (id, r, c) in [(a, 0, 0), (a, 1, 1), (b, 0, 0), (b, 1, 0), (bias, 0, 2)] {
            let numeric = finite_difference(&mut store, id, r, c, run);
            let analytic = store.grad(id).get(r, c);
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "{} ({r},{c}): numeric {numeric} analytic {analytic}",
                store.name(id)
            );
        }
    }

    #[test]
    fn sum_and_mean_gradients() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let mut g = Graph::new();
        let wv = g.param(&store, w);
        let s = g.sum_all(wv);
        g.backward(s, &mut store);
        assert_eq!(store.grad(w).as_slice(), &[1.0, 1.0, 1.0, 1.0]);

        store.zero_grad();
        let mut g = Graph::new();
        let wv = g.param(&store, w);
        let m = g.mean_all(wv);
        g.backward(m, &mut store);
        assert_eq!(store.grad(w).as_slice(), &[0.25, 0.25, 0.25, 0.25]);
    }

    #[test]
    fn grad_of_input_is_tracked_but_not_stored() {
        let mut store = ParamStore::new();
        let mut g = Graph::new();
        let x = g.input(Tensor::from_rows(&[&[1.0, 2.0]]));
        let s = g.sum_all(x);
        g.backward(s, &mut store);
        assert!(g.grad(x).is_some());
        assert!(store.is_empty());
        assert!(!g.is_empty());
        assert_eq!(g.len(), 2);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_rejects_non_scalar_loss() {
        let mut store = ParamStore::new();
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(2, 2));
        g.backward(x, &mut store);
    }
}
