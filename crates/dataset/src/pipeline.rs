//! The end-to-end dataset pipeline: generate designs, transform to AIG,
//! optimise, label with logic-simulated signal probabilities and split into
//! training and test circuit graphs.

use crate::suites::SuiteKind;
use deepgate_aig::{opt, Aig};
use deepgate_gnn::{CircuitGraph, FeatureEncoding};
use deepgate_netlist::Netlist;
use deepgate_sim::{SignalProbability, SimError};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration of dataset generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Benchmark suites to draw designs from.
    pub suites: Vec<SuiteKind>,
    /// Number of designs generated per suite.
    pub designs_per_suite: usize,
    /// Number of random simulation patterns per circuit for labelling.
    pub num_patterns: usize,
    /// Whether circuits are transformed to AIG form (the DeepGate flow) or
    /// kept with their original gate types (the Table IV ablation).
    pub transform_to_aig: bool,
    /// Whether the AIG optimisation passes run after transformation.
    pub optimize: bool,
    /// Fraction of circuits that go into the training split (the paper uses
    /// a 90/10 split).
    pub train_fraction: f64,
    /// Scale factor in `(0, 1]` applied to design sizes; 1.0 targets the
    /// paper's size ranges.
    pub size_scale: f64,
    /// Seed controlling design generation, labelling and the split.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            suites: SuiteKind::ALL.to_vec(),
            designs_per_suite: 24,
            num_patterns: 8_192,
            transform_to_aig: true,
            optimize: true,
            train_fraction: 0.9,
            size_scale: 0.25,
            seed: 0,
        }
    }
}

impl DatasetConfig {
    /// The feature encoding the generated circuit graphs use.
    pub fn encoding(&self) -> FeatureEncoding {
        if self.transform_to_aig {
            FeatureEncoding::AigGates
        } else {
            FeatureEncoding::AllGates
        }
    }
}

/// Per-suite statistics (the rows of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuiteStats {
    /// The suite.
    pub suite: SuiteKind,
    /// Number of sub-circuits generated from this suite.
    pub num_subcircuits: usize,
    /// Smallest node count.
    pub min_nodes: usize,
    /// Largest node count.
    pub max_nodes: usize,
    /// Smallest logic depth.
    pub min_level: usize,
    /// Largest logic depth.
    pub max_level: usize,
}

/// A labelled dataset of circuit graphs split into train and test sets.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Training circuits.
    pub train: Vec<CircuitGraph>,
    /// Held-out test circuits.
    pub test: Vec<CircuitGraph>,
    /// Per-suite statistics over all generated circuits.
    pub suite_stats: Vec<SuiteStats>,
}

impl Dataset {
    /// Generates a labelled dataset.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if labelling fails (e.g. a zero pattern count).
    pub fn generate(config: &DatasetConfig) -> Result<Dataset, SimError> {
        let mut all: Vec<(SuiteKind, CircuitGraph)> = Vec::new();
        let mut suite_stats = Vec::new();
        for &suite in &config.suites {
            let designs: Vec<Netlist> = (0..config.designs_per_suite)
                .map(|index| suite.generate_design(index, config.seed, config.size_scale))
                .collect();
            let graphs: Result<Vec<CircuitGraph>, SimError> = designs
                .par_iter()
                .enumerate()
                .map(|(index, netlist)| {
                    let label_seed = config.seed ^ ((index as u64 + 1) << 20);
                    if config.transform_to_aig {
                        let aig = Aig::from_netlist(netlist)
                            .map_err(|e| SimError::InvalidCircuit(e.to_string()))?;
                        let aig = if config.optimize {
                            opt::optimize(&aig, 2)
                        } else {
                            aig
                        };
                        labelled_circuit_from_aig(&aig, config.num_patterns, label_seed)
                    } else {
                        labelled_circuit_from_netlist(
                            netlist,
                            FeatureEncoding::AllGates,
                            config.num_patterns,
                            label_seed,
                        )
                    }
                })
                .collect();
            let graphs = graphs?;
            let stats = SuiteStats {
                suite,
                num_subcircuits: graphs.len(),
                min_nodes: graphs.iter().map(|g| g.num_nodes).min().unwrap_or(0),
                max_nodes: graphs.iter().map(|g| g.num_nodes).max().unwrap_or(0),
                min_level: graphs.iter().map(|g| g.max_level).min().unwrap_or(0),
                max_level: graphs.iter().map(|g| g.max_level).max().unwrap_or(0),
            };
            suite_stats.push(stats);
            all.extend(graphs.into_iter().map(|g| (suite, g)));
        }

        // Deterministic shuffled train/test split.
        let mut rng = SmallRng::seed_from_u64(config.seed.wrapping_add(0xD5));
        all.shuffle(&mut rng);
        let train_count = ((all.len() as f64) * config.train_fraction).round() as usize;
        let train_count = train_count.min(all.len());
        let mut train = Vec::with_capacity(train_count);
        let mut test = Vec::with_capacity(all.len() - train_count);
        for (i, (_, graph)) in all.into_iter().enumerate() {
            if i < train_count {
                train.push(graph);
            } else {
                test.push(graph);
            }
        }
        Ok(Dataset {
            train,
            test,
            suite_stats,
        })
    }

    /// Total number of circuits (train + test).
    pub fn len(&self) -> usize {
        self.train.len() + self.test.len()
    }

    /// Returns `true` if the dataset holds no circuits.
    pub fn is_empty(&self) -> bool {
        self.train.is_empty() && self.test.is_empty()
    }
}

/// Builds a labelled circuit graph from an AIG: the AIG is expanded into an
/// explicit PI/AND/NOT netlist, simulated, and encoded with
/// [`FeatureEncoding::AigGates`].
///
/// # Errors
///
/// Returns a [`SimError`] if simulation fails.
pub fn labelled_circuit_from_aig(
    aig: &Aig,
    num_patterns: usize,
    seed: u64,
) -> Result<CircuitGraph, SimError> {
    let netlist = aig.to_netlist();
    labelled_circuit_from_netlist(&netlist, FeatureEncoding::AigGates, num_patterns, seed)
}

/// Builds a labelled circuit graph from a gate-level netlist by simulating
/// `num_patterns` random patterns.
///
/// # Errors
///
/// Returns a [`SimError`] if simulation fails.
pub fn labelled_circuit_from_netlist(
    netlist: &Netlist,
    encoding: FeatureEncoding,
    num_patterns: usize,
    seed: u64,
) -> Result<CircuitGraph, SimError> {
    let probs = SignalProbability::simulate_netlist(netlist, num_patterns, seed)?;
    let labels: Vec<f32> = probs.values().iter().map(|&v| v as f32).collect();
    Ok(CircuitGraph::from_netlist(netlist, encoding, Some(labels)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> DatasetConfig {
        DatasetConfig {
            designs_per_suite: 4,
            num_patterns: 512,
            size_scale: 0.1,
            ..DatasetConfig::default()
        }
    }

    #[test]
    fn generate_produces_labelled_split() {
        let dataset = Dataset::generate(&quick_config()).unwrap();
        assert_eq!(dataset.len(), 16);
        assert!(!dataset.is_empty());
        assert_eq!(dataset.suite_stats.len(), 4);
        assert!(dataset.train.len() > dataset.test.len());
        for graph in dataset.train.iter().chain(&dataset.test) {
            assert!(graph.labels.is_some());
            assert_eq!(graph.encoding, FeatureEncoding::AigGates);
            let labels = graph.labels.as_ref().unwrap();
            assert!(labels.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
        for stats in &dataset.suite_stats {
            assert!(stats.min_nodes <= stats.max_nodes);
            assert!(stats.max_level >= stats.min_level);
            assert_eq!(stats.num_subcircuits, 4);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(&quick_config()).unwrap();
        let b = Dataset::generate(&quick_config()).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.train[0].labels, b.train[0].labels);
        assert_eq!(a.train[0].num_nodes, b.train[0].num_nodes);
    }

    #[test]
    fn untransformed_dataset_uses_full_gate_alphabet() {
        let config = DatasetConfig {
            transform_to_aig: false,
            designs_per_suite: 2,
            num_patterns: 256,
            size_scale: 0.1,
            suites: vec![SuiteKind::Epfl, SuiteKind::Iwls],
            ..DatasetConfig::default()
        };
        assert_eq!(config.encoding(), FeatureEncoding::AllGates);
        let dataset = Dataset::generate(&config).unwrap();
        assert_eq!(dataset.len(), 4);
        for graph in dataset.train.iter().chain(&dataset.test) {
            assert_eq!(graph.encoding, FeatureEncoding::AllGates);
        }
    }

    #[test]
    fn optimisation_reduces_or_preserves_node_count() {
        let base = DatasetConfig {
            optimize: false,
            ..quick_config()
        };
        let optimized = DatasetConfig {
            optimize: true,
            ..quick_config()
        };
        let raw = Dataset::generate(&base).unwrap();
        let opt = Dataset::generate(&optimized).unwrap();
        let raw_nodes: usize = raw.train.iter().chain(&raw.test).map(|g| g.num_nodes).sum();
        let opt_nodes: usize = opt.train.iter().chain(&opt.test).map(|g| g.num_nodes).sum();
        assert!(opt_nodes <= raw_nodes);
    }

    #[test]
    fn helper_builders_label_every_node() {
        let netlist = crate::generators::ripple_carry_adder(4);
        let graph =
            labelled_circuit_from_netlist(&netlist, FeatureEncoding::AllGates, 512, 3).unwrap();
        assert_eq!(graph.labels.as_ref().unwrap().len(), graph.num_nodes);
        let aig = Aig::from_netlist(&netlist).unwrap();
        let graph2 = labelled_circuit_from_aig(&aig, 512, 3).unwrap();
        assert_eq!(graph2.labels.as_ref().unwrap().len(), graph2.num_nodes);
    }
}
