//! Combinational AIGER-ASCII (`aag`) convenience wrappers.
//!
//! These entry points predate the full [`crate::aiger`] subsystem and keep
//! its combinational contract: parsing rejects sequential circuits, matching
//! the combinational graphs the DeepGate training front-end operates on. All
//! reading and writing delegates to [`crate::aiger`], so both paths share
//! one canonical serialisation and one panic-free parser. For latch-aware
//! I/O (including binary `.aig`) use [`crate::aiger`] directly.

use crate::{Aig, AigError, AigLit, AigNodeKind};

/// Serialises an [`Aig`] to AIGER-ASCII text (canonical variable numbering,
/// full symbol table). Equivalent to [`crate::aiger::write_aag`].
pub fn write_aag(aig: &Aig) -> String {
    crate::aiger::write_aag(aig)
}

/// Parses AIGER-ASCII text into a combinational [`Aig`].
///
/// # Errors
///
/// Returns [`AigError::Aiger`] for malformed input and
/// [`AigError::UnsupportedGate`] if the circuit contains latches — use
/// [`crate::aiger::parse_aag`] plus a [`crate::LatchPolicy`] to ingest
/// sequential circuits.
pub fn parse_aag(text: &str, name: impl Into<String>) -> Result<Aig, AigError> {
    let aig = crate::aiger::parse_aag(text, name)?;
    if !aig.is_combinational() {
        return Err(AigError::UnsupportedGate(format!(
            "circuit has {} latches; apply a LatchPolicy via crate::aiger",
            aig.num_latches()
        )));
    }
    Ok(aig)
}

impl Aig {
    /// Appends an AND node verbatim (no simplification, no strashing). Used
    /// by the AIGER parsers to preserve literal numbering.
    pub(crate) fn push_raw_and(&mut self, fanin0: AigLit, fanin1: AigLit) -> AigLit {
        let index = self.len();
        self.push_node(AigNodeKind::And, fanin0, fanin1);
        AigLit::positive(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_aig() -> Aig {
        let mut aig = Aig::new("sample");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, b);
        let y = aig.or(ab, c.complement());
        aig.add_output(y, "y");
        aig.add_output(ab.complement(), "nab");
        aig
    }

    #[test]
    fn roundtrip_aag() {
        let aig = sample_aig();
        let text = write_aag(&aig);
        let parsed = parse_aag(&text, "sample").expect("own output reparses");
        assert!(parsed.validate().is_ok());
        assert_eq!(parsed.num_inputs(), aig.num_inputs());
        assert_eq!(parsed.num_ands(), aig.num_ands());
        assert_eq!(parsed.num_outputs(), aig.num_outputs());
        assert_eq!(parsed.input_name(0), "a");
        assert_eq!(parsed.outputs()[0].1, "y");
        // Output literals are preserved exactly.
        assert_eq!(parsed.outputs()[0].0, aig.outputs()[0].0);
    }

    #[test]
    fn parse_rejects_bad_header() {
        assert!(parse_aag("", "x").is_err());
        assert!(parse_aag("aig 1 1 0 0 0\n", "x").is_err());
        assert!(parse_aag("aag 1 1 1 0 0\n2\n", "x").is_err()); // M != I+L+A
        assert!(parse_aag("aag 5 1 0 0 1\n2\n", "x").is_err()); // M mismatch
    }

    #[test]
    fn parse_rejects_latches() {
        // A valid sequential file must be refused by the combinational entry
        // point with the UnsupportedGate variant.
        let text = "aag 1 0 1 1 0\n2 2\n2\n";
        assert!(matches!(
            parse_aag(text, "x"),
            Err(AigError::UnsupportedGate(_))
        ));
    }

    #[test]
    fn parse_rejects_forward_reference() {
        // and node 2 references literal 6 (node 3) which does not exist.
        let text = "aag 2 1 0 1 1\n2\n4\n4 6 2\n";
        assert!(parse_aag(text, "x").is_err());
    }

    #[test]
    fn parse_minimal_constant_circuit() {
        let text = "aag 0 0 0 1 0\n1\n";
        let aig = parse_aag(text, "const").expect("constant circuit parses");
        assert_eq!(aig.num_outputs(), 1);
        assert_eq!(aig.outputs()[0].0, AigLit::TRUE);
    }
}
