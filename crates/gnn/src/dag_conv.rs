//! The DAG-ConvGNN baseline: layered propagation in topological order
//! (Eq. 3 of the paper) with per-layer parameters and a single forward pass.

use crate::{Aggregator, AggregatorKind, CircuitGraph, ProbabilityModel};
use deepgate_nn::{Activation, Graph, GruCell, Linear, Mlp, ParamStore, Tensor, Var};
use serde::{Deserialize, Serialize};

/// Configuration of the [`DagConvGnn`] baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DagConvConfig {
    /// Node feature dimensionality.
    pub feature_dim: usize,
    /// Hidden state dimensionality.
    pub hidden_dim: usize,
    /// Number of stacked layers (each with its own parameters).
    pub num_layers: usize,
    /// Aggregation function.
    pub aggregator: AggregatorKind,
    /// Seed for weight initialisation.
    pub seed: u64,
}

impl Default for DagConvConfig {
    fn default() -> Self {
        DagConvConfig {
            feature_dim: 3,
            hidden_dim: 64,
            num_layers: 3,
            aggregator: AggregatorKind::ConvSum,
            seed: 0,
        }
    }
}

/// The DAG-ConvGNN baseline model.
///
/// Within a layer the nodes are processed level by level so a node aggregates
/// the *current-layer* states of its predecessors (Eq. 3); the GRU combine
/// mixes that message with the node's previous-layer state. Unlike
/// [`crate::DagRecGnn`] each layer has its own parameters and there is no
/// reversed propagation.
#[derive(Debug, Clone)]
pub struct DagConvGnn {
    config: DagConvConfig,
    embed: Linear,
    aggregators: Vec<Aggregator>,
    combiners: Vec<GruCell>,
    regressor: Mlp,
}

impl DagConvGnn {
    /// Registers the model's parameters in `store`.
    pub fn new(store: &mut ParamStore, config: DagConvConfig) -> Self {
        let embed = Linear::new(
            store,
            "dagconv.embed",
            config.feature_dim,
            config.hidden_dim,
            config.seed,
        );
        let mut aggregators = Vec::new();
        let mut combiners = Vec::new();
        for layer in 0..config.num_layers {
            aggregators.push(Aggregator::new(
                store,
                &format!("dagconv.layer{layer}.agg"),
                config.aggregator,
                config.hidden_dim,
                0,
                config.seed + 10 + layer as u64,
            ));
            combiners.push(GruCell::new(
                store,
                &format!("dagconv.layer{layer}.gru"),
                config.hidden_dim,
                config.hidden_dim,
                config.seed + 100 + layer as u64,
            ));
        }
        let regressor = Mlp::new(
            store,
            "dagconv.regressor",
            &[config.hidden_dim, config.hidden_dim, 1],
            Activation::Relu,
            true,
            config.seed + 1000,
        );
        DagConvGnn {
            config,
            embed,
            aggregators,
            combiners,
            regressor,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> DagConvConfig {
        self.config
    }
}

impl ProbabilityModel for DagConvGnn {
    fn forward(&self, g: &mut Graph, store: &ParamStore, circuit: &CircuitGraph) -> Var {
        assert_eq!(
            circuit.encoding.dimension(),
            self.config.feature_dim,
            "circuit feature encoding does not match the model configuration"
        );
        let n = circuit.num_nodes;
        let features = g.input(circuit.features.clone());
        let mut h = self.embed.forward(g, store, features);
        for layer in 0..self.config.num_layers {
            let h_prev_layer = h;
            for batch in &circuit.forward_batches {
                let edge_targets: Vec<usize> =
                    batch.edge_seg.iter().map(|&s| batch.targets[s]).collect();
                let src_states = g.gather_rows(h, &batch.edge_src);
                let query_states = g.gather_rows(h_prev_layer, &edge_targets);
                let msg = self.aggregators[layer].aggregate(
                    g,
                    store,
                    src_states,
                    query_states,
                    &batch.edge_seg,
                    batch.targets.len(),
                    None,
                );
                let h_targets_prev = g.gather_rows(h_prev_layer, &batch.targets);
                let updated = self.combiners[layer].forward(g, store, msg, h_targets_prev);
                // Write the updated rows back into h.
                let mut keep = vec![1.0f32; n];
                for &t in &batch.targets {
                    keep[t] = 0.0;
                }
                let keep_mask = g.input(Tensor::column(&keep));
                let kept = g.mul_col(keep_mask, h);
                let scattered = g.scatter_add_rows(updated, &batch.targets, n);
                h = g.add(kept, scattered);
            }
        }
        self.regressor.forward(g, store, h)
    }

    fn name(&self) -> String {
        format!("DAG-ConvGNN ({})", self.config.aggregator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeatureEncoding;
    use deepgate_netlist::{GateKind, Netlist};

    fn graph() -> CircuitGraph {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g1 = n.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = n.add_gate(GateKind::Not, &[g1]).unwrap();
        let g3 = n.add_gate(GateKind::And, &[g1, g2]).unwrap();
        n.mark_output(g3, "y");
        CircuitGraph::from_netlist(&n, FeatureEncoding::AigGates, None)
    }

    #[test]
    fn forward_produces_probabilities_for_every_node() {
        let circuit = graph();
        for kind in AggregatorKind::ALL {
            let mut store = ParamStore::new();
            let model = DagConvGnn::new(
                &mut store,
                DagConvConfig {
                    aggregator: kind,
                    hidden_dim: 16,
                    num_layers: 2,
                    ..DagConvConfig::default()
                },
            );
            let pred = model.predict(&store, &circuit);
            assert_eq!(pred.len(), circuit.num_nodes);
            assert!(pred.iter().all(|&p| (0.0..=1.0).contains(&p)), "{kind}");
            assert!(model.name().contains("DAG-ConvGNN"));
        }
    }

    #[test]
    fn deeper_models_have_more_parameters() {
        let mut store2 = ParamStore::new();
        let _ = DagConvGnn::new(
            &mut store2,
            DagConvConfig {
                num_layers: 2,
                hidden_dim: 8,
                ..DagConvConfig::default()
            },
        );
        let mut store4 = ParamStore::new();
        let _ = DagConvGnn::new(
            &mut store4,
            DagConvConfig {
                num_layers: 4,
                hidden_dim: 8,
                ..DagConvConfig::default()
            },
        );
        assert!(store4.num_weights() > store2.num_weights());
    }
}
