//! Telemetry handles for the GNN inference kernel.

use deepgate_telemetry::{Counter, Histogram, Registry};
use std::sync::Arc;

/// Shared handles to the inference-kernel metric series.
///
/// The planned prediction path ([`crate::DagRecGnn::try_predict_into_metered`])
/// records into these when given a set; the un-metered entry points skip
/// telemetry entirely, so training and offline benchmarking pay nothing.
#[derive(Debug, Clone)]
pub struct GnnMetrics {
    /// Wall time of one level-batch aggregation + GRU update, in
    /// nanoseconds (`gnn_level_agg_ns`). Forward and reverse batches both
    /// record here — this is the per-level cost profile of the recurrence.
    pub level_agg_ns: Arc<Histogram>,
    /// Wall time of the regressor head over the final embeddings, in
    /// nanoseconds (`gnn_regress_ns`).
    pub regress_ns: Arc<Histogram>,
    /// Circuit sizes (node counts) seen by the inference path
    /// (`gnn_circuit_nodes`) — the size-bucket profile of the workload.
    pub circuit_nodes: Arc<Histogram>,
    /// Total level batches processed across all iterations
    /// (`gnn_levels_total`).
    pub levels_total: Arc<Counter>,
    /// Target-node counts of the CSR kernel's level slices
    /// (`gnn_csr_level_width`) — the density profile of the packed layout;
    /// wide levels amortise the per-level dispatch, narrow ones do not.
    pub csr_level_width: Arc<Histogram>,
    /// Predictions served by the quantized (int8) scoring mode
    /// (`gnn_quantized_predicts_total`).
    pub quantized_predicts: Arc<Counter>,
}

impl GnnMetrics {
    /// Registers the kernel's series in `registry` (get-or-create, so many
    /// models can share one registry).
    pub fn registered(registry: &Registry) -> Self {
        GnnMetrics {
            level_agg_ns: registry.histogram("gnn_level_agg_ns"),
            regress_ns: registry.histogram("gnn_regress_ns"),
            circuit_nodes: registry.histogram("gnn_circuit_nodes"),
            levels_total: registry.counter("gnn_levels_total"),
            csr_level_width: registry.histogram("gnn_csr_level_width"),
            quantized_predicts: registry.counter("gnn_quantized_predicts_total"),
        }
    }
}
