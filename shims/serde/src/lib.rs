//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of serde's API surface the workspace uses, built around a
//! concrete JSON-like [`Value`] tree instead of serde's visitor machinery:
//!
//! - [`Serialize`] / [`Deserialize`] traits (`T -> Value` / `&Value -> T`),
//! - impls for the primitives and containers the workspace serialises,
//! - re-exported `#[derive(Serialize, Deserialize)]` macros from the
//!   sibling `serde_derive` shim.
//!
//! The `serde_json` shim renders [`Value`] to JSON text and parses it back.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-like value tree.
///
/// Integers are kept in dedicated variants so `u64`/`i64` round-trip
/// exactly (JSON numbers above 2^53 would lose precision through `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with sorted keys (deterministic output).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Borrows the object map if the value is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the array if the value is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// Deserialisation error: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error from a message.
    pub fn custom(msg: &str) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialises a value into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn serialize(&self) -> Value;
}

/// Reconstructs a value from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Converts a [`Value`] back into `Self`.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

/// Derive-macro helper: looks up a struct field by name, treating a missing
/// key as `null` (so `Option` fields tolerate omission).
pub fn __field<T: Deserialize>(obj: &BTreeMap<String, Value>, name: &str) -> Result<T, DeError> {
    match obj.get(name) {
        Some(v) => T::deserialize(v),
        None => {
            T::deserialize(&Value::Null).map_err(|_| DeError(format!("missing field `{name}`")))
        }
    }
}

// ---------------------------------------------------------------- primitives

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected bool")),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let raw: u64 = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    _ => return Err(DeError::custom("expected unsigned integer")),
                };
                <$t>::try_from(raw).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) if *u <= i64::MAX as u64 => *u as i64,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    _ => return Err(DeError::custom("expected integer")),
                };
                <$t>::try_from(raw).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            _ => Err(DeError::custom("expected number")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// --------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(a) => a.iter().map(T::deserialize).collect(),
            _ => Err(DeError::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(a) if a.len() == 2 => Ok((A::deserialize(&a[0])?, B::deserialize(&a[1])?)),
            _ => Err(DeError::custom("expected 2-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(a) if a.len() == 3 => Ok((
                A::deserialize(&a[0])?,
                B::deserialize(&a[1])?,
                C::deserialize(&a[2])?,
            )),
            _ => Err(DeError::custom("expected 3-element array")),
        }
    }
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Serialize, S> Serialize for HashMap<&str, V, S> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| V::deserialize(v).map(|v| (k.clone(), v)))
                .collect(),
            _ => Err(DeError::custom("expected object")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| V::deserialize(v).map(|v| (k.clone(), v)))
                .collect(),
            _ => Err(DeError::custom("expected object")),
        }
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
