//! Criterion micro-benchmarks of the model layer: DeepGate inference and a
//! single training step, for the DeepGate configuration and the DeepSet
//! baseline (the two contenders of Tables II and III).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deepgate_aig::Aig;
use deepgate_core::{DeepGate, DeepGateConfig};
use deepgate_dataset::{generators, labelled_circuit_from_aig};
use deepgate_gnn::{
    masked_l1_loss, AggregatorKind, CircuitGraph, DagRecConfig, DagRecGnn, ProbabilityModel,
};
use deepgate_nn::{Graph, ParamStore};
use std::hint::black_box;

fn labelled_circuit(width: usize) -> CircuitGraph {
    let netlist = generators::alu(width);
    let aig = Aig::from_netlist(&netlist).unwrap();
    labelled_circuit_from_aig(&aig, 2048, 3).unwrap()
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("deepgate_inference");
    group.sample_size(10);
    let model = DeepGate::new(DeepGateConfig {
        hidden_dim: 64,
        num_iterations: 10,
        ..DeepGateConfig::default()
    });
    for width in [8usize, 16] {
        let circuit = labelled_circuit(width);
        group.bench_with_input(
            BenchmarkId::new("predict_T10", circuit.num_nodes),
            &circuit,
            |b, circuit| b.iter(|| black_box(model.predict(black_box(circuit)))),
        );
        group.bench_with_input(
            BenchmarkId::new("embeddings_T10", circuit.num_nodes),
            &circuit,
            |b, circuit| b.iter(|| black_box(model.embeddings(black_box(circuit)))),
        );
    }
    group.finish();
}

fn bench_training_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_step");
    group.sample_size(10);
    let circuit = labelled_circuit(8);
    for (label, aggregator, fix, skip) in [
        (
            "deepgate_attention_sc",
            AggregatorKind::Attention,
            true,
            true,
        ),
        ("dag_rec_deepset", AggregatorKind::DeepSet, false, false),
    ] {
        let mut store = ParamStore::new();
        let model = DagRecGnn::new(
            &mut store,
            DagRecConfig {
                hidden_dim: 64,
                num_iterations: 4,
                aggregator,
                fix_gate_input: fix,
                use_skip_connections: skip,
                regressor_hidden: 32,
                ..DagRecConfig::default()
            },
        );
        group.bench_function(BenchmarkId::new("forward_backward", label), |b| {
            b.iter(|| {
                let mut g = Graph::new();
                let pred = model.forward(&mut g, &store, &circuit);
                let loss = masked_l1_loss(&mut g, pred, &circuit).expect("labelled circuit");
                let mut store_copy = store.clone();
                g.backward(loss, &mut store_copy);
                black_box(store_copy.grad_norm())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference, bench_training_step);
criterion_main!(benches);
