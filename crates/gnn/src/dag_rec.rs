//! The recurrent DAG-GNN family (DAG-RecGNN) — the machinery shared by the
//! strongest baseline of the paper and by DeepGate itself.
//!
//! One parameter set is applied for `T` iterations (Eq. 4). Every iteration
//! runs a forward propagation in topological order followed, optionally, by a
//! reversed propagation that models logic implication from outputs back to
//! inputs. The configuration flags select between the paper's variants:
//!
//! | paper model | aggregator | `reverse_layer` | `fix_gate_input` | `use_skip_connections` |
//! |---|---|---|---|---|
//! | DAG-RecGNN (Conv. Sum / DeepSet / GatedSum) | respective | yes | no | no |
//! | DeepGate w/o SC | Attention | yes | yes | no |
//! | DeepGate w/ SC | Attention | yes | yes | yes |

use crate::csr::{CompiledKernel, InferencePlan, QuantMode};
use crate::{
    Aggregator, AggregatorKind, CircuitGraph, GnnError, GnnMetrics, LevelBatch, ProbabilityModel,
};
use deepgate_aig::recon::positional_encoding;
use deepgate_nn::{Activation, Graph, GruCell, Linear, Mlp, ParamStore, Tensor, Var};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Precomputed per-circuit state of the *legacy* tensor path: the extended
/// (skip-connection augmented) edge lists of every forward level batch.
///
/// This is the reference implementation the CSR kernel is validated against
/// (`tests/csr_parity.rs` asserts bit-exact agreement in f32 mode). Serving
/// uses [`InferencePlan`] + [`CompiledKernel`] instead; the reference path
/// stays as the ground truth for parity tests and the before/after
/// benchmark sweep.
#[derive(Debug, Clone)]
pub struct ReferencePlan {
    /// Per forward batch: skip-extended `(edge_src, edge_seg, attr)`.
    forward: Vec<(Vec<usize>, Vec<usize>, Option<Tensor>)>,
    /// Per forward batch: target node of every (extended) edge.
    forward_targets: Vec<Vec<usize>>,
    /// Per reverse batch: target node of every edge.
    reverse_targets: Vec<Vec<usize>>,
    /// Edge-attribute dimensionality of the model that built the plan
    /// (guards against reusing a plan across differently-configured models).
    attr_dim: usize,
}

impl ReferencePlan {
    /// Number of forward level batches the plan covers.
    pub fn num_batches(&self) -> usize {
        self.forward.len()
    }
}

/// Configuration of a [`DagRecGnn`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DagRecConfig {
    /// Node feature dimensionality (3 for AIG circuits).
    pub feature_dim: usize,
    /// Hidden state dimensionality (the paper uses 64).
    pub hidden_dim: usize,
    /// Number of recurrence iterations `T` (the paper uses 10).
    pub num_iterations: usize,
    /// Aggregation function.
    pub aggregator: AggregatorKind,
    /// Whether a reversed propagation layer follows every forward layer.
    pub reverse_layer: bool,
    /// Whether the gate-type one-hot is concatenated to the aggregated
    /// message as GRU input on every update (DeepGate keeps it fixed to
    /// avoid the gate information vanishing over iterations).
    pub fix_gate_input: bool,
    /// Whether skip connections from reconvergence analysis are added.
    pub use_skip_connections: bool,
    /// Number of frequency pairs `L` of the positional encoding (Eq. 7).
    pub skip_encoding_frequencies: usize,
    /// Hidden width of the MLP regressor.
    pub regressor_hidden: usize,
    /// Whether a separate regressor head is used per gate type (the paper
    /// shares MLP weights only among nodes of the same type).
    pub per_type_regressor: bool,
    /// Seed for weight initialisation.
    pub seed: u64,
}

impl Default for DagRecConfig {
    fn default() -> Self {
        DagRecConfig {
            feature_dim: 3,
            hidden_dim: 64,
            num_iterations: 10,
            aggregator: AggregatorKind::DeepSet,
            reverse_layer: true,
            fix_gate_input: false,
            use_skip_connections: false,
            skip_encoding_frequencies: 8,
            regressor_hidden: 32,
            per_type_regressor: false,
            seed: 0,
        }
    }
}

impl DagRecConfig {
    /// Dimensionality of the positional-encoding edge attribute.
    pub fn edge_attr_dim(&self) -> usize {
        if self.use_skip_connections {
            2 * self.skip_encoding_frequencies
        } else {
            0
        }
    }

    /// GRU input dimensionality (message plus, optionally, the gate one-hot).
    pub fn gru_input_dim(&self) -> usize {
        if self.fix_gate_input {
            self.hidden_dim + self.feature_dim
        } else {
            self.hidden_dim
        }
    }
}

/// A recurrent DAG-GNN with configurable aggregation, reversed propagation,
/// fixed gate-type input and reconvergence skip connections.
#[derive(Debug, Clone)]
pub struct DagRecGnn {
    config: DagRecConfig,
    embed: Linear,
    forward_agg: Aggregator,
    forward_gru: GruCell,
    reverse_agg: Option<Aggregator>,
    reverse_gru: Option<GruCell>,
    regressors: Vec<Mlp>,
}

impl DagRecGnn {
    /// Registers the model's parameters in `store`.
    pub fn new(store: &mut ParamStore, config: DagRecConfig) -> Self {
        let embed = Linear::new(
            store,
            "dagrec.embed",
            config.feature_dim,
            config.hidden_dim,
            config.seed,
        );
        let forward_agg = Aggregator::new(
            store,
            "dagrec.forward.agg",
            config.aggregator,
            config.hidden_dim,
            config.edge_attr_dim(),
            config.seed + 1,
        );
        let forward_gru = GruCell::new(
            store,
            "dagrec.forward.gru",
            config.gru_input_dim(),
            config.hidden_dim,
            config.seed + 2,
        );
        let (reverse_agg, reverse_gru) = if config.reverse_layer {
            (
                Some(Aggregator::new(
                    store,
                    "dagrec.reverse.agg",
                    config.aggregator,
                    config.hidden_dim,
                    0,
                    config.seed + 3,
                )),
                Some(GruCell::new(
                    store,
                    "dagrec.reverse.gru",
                    config.gru_input_dim(),
                    config.hidden_dim,
                    config.seed + 4,
                )),
            )
        } else {
            (None, None)
        };
        let num_heads = if config.per_type_regressor {
            config.feature_dim
        } else {
            1
        };
        let regressors = (0..num_heads)
            .map(|head| {
                Mlp::new(
                    store,
                    &format!("dagrec.regressor{head}"),
                    &[config.hidden_dim, config.regressor_hidden, 1],
                    Activation::Relu,
                    true,
                    config.seed + 100 + head as u64,
                )
            })
            .collect();
        DagRecGnn {
            config,
            embed,
            forward_agg,
            forward_gru,
            reverse_agg,
            reverse_gru,
            regressors,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> DagRecConfig {
        self.config
    }

    /// Builds the extended edge lists of a forward batch, appending skip
    /// edges whose targets belong to this batch, plus the edge attribute
    /// matrix (zeros for ordinary edges, γ(D) for skip edges).
    fn extended_edges(
        &self,
        circuit: &CircuitGraph,
        batch: &LevelBatch,
    ) -> (Vec<usize>, Vec<usize>, Option<Tensor>) {
        let mut edge_src = batch.edge_src.clone();
        let mut edge_seg = batch.edge_seg.clone();
        if !self.config.use_skip_connections {
            return (edge_src, edge_seg, None);
        }
        let attr_dim = self.config.edge_attr_dim();
        let mut attrs: Vec<Vec<f32>> = vec![vec![0.0; attr_dim]; edge_src.len()];
        for (seg, &target) in batch.targets.iter().enumerate() {
            if let Some(skip) = circuit.skip_edge_for(target) {
                edge_src.push(skip.source);
                edge_seg.push(seg);
                attrs.push(positional_encoding(
                    skip.level_difference,
                    self.config.skip_encoding_frequencies,
                ));
            }
        }
        let mut attr_tensor = Tensor::zeros(edge_src.len(), attr_dim);
        for (e, row) in attrs.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                attr_tensor.set(e, j, v);
            }
        }
        (edge_src, edge_seg, Some(attr_tensor))
    }

    /// Runs the regressor head(s) on the final hidden states (tape version).
    fn regress(&self, g: &mut Graph, store: &ParamStore, circuit: &CircuitGraph, h: Var) -> Var {
        if !self.config.per_type_regressor {
            return self.regressors[0].forward(g, store, h);
        }
        let n = circuit.num_nodes;
        let mut total: Option<Var> = None;
        for (head, regressor) in self.regressors.iter().enumerate() {
            let mask: Vec<f32> = (0..n).map(|i| circuit.features.get(i, head)).collect();
            let pred = regressor.forward(g, store, h);
            let mask_v = g.input(Tensor::column(&mask));
            let masked = g.mul(pred, mask_v);
            total = Some(match total {
                Some(t) => g.add(t, masked),
                None => masked,
            });
        }
        total.expect("at least one regressor head")
    }

    fn forward_with_iterations(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        circuit: &CircuitGraph,
        num_iterations: usize,
    ) -> Var {
        assert_eq!(
            circuit.encoding.dimension(),
            self.config.feature_dim,
            "circuit feature encoding does not match the model configuration"
        );
        let features = g.input(circuit.features.clone());
        let mut h = self.embed.forward(g, store, features);
        for _ in 0..num_iterations {
            // Forward propagation in topological order.
            for batch in &circuit.forward_batches {
                let (edge_src, edge_seg, attr) = self.extended_edges(circuit, batch);
                let edge_targets: Vec<usize> = edge_seg.iter().map(|&s| batch.targets[s]).collect();
                let src_states = g.gather_rows(h, &edge_src);
                let query_states = g.gather_rows(h, &edge_targets);
                let attr_var = attr.map(|a| g.input(a));
                let msg = self.forward_agg.aggregate(
                    g,
                    store,
                    src_states,
                    query_states,
                    &edge_seg,
                    batch.targets.len(),
                    attr_var,
                );
                h = self.update_rows(g, store, circuit, h, batch, msg, false);
            }
            // Reversed propagation, if configured.
            if let Some(reverse_agg) = &self.reverse_agg {
                for batch in &circuit.reverse_batches {
                    let edge_targets: Vec<usize> =
                        batch.edge_seg.iter().map(|&s| batch.targets[s]).collect();
                    let src_states = g.gather_rows(h, &batch.edge_src);
                    let query_states = g.gather_rows(h, &edge_targets);
                    let msg = reverse_agg.aggregate(
                        g,
                        store,
                        src_states,
                        query_states,
                        &batch.edge_seg,
                        batch.targets.len(),
                        None,
                    );
                    h = self.update_rows(g, store, circuit, h, batch, msg, true);
                }
            }
        }
        self.regress(g, store, circuit, h)
    }

    #[allow(clippy::too_many_arguments)]
    fn update_rows(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        circuit: &CircuitGraph,
        h: Var,
        batch: &LevelBatch,
        msg: Var,
        reverse: bool,
    ) -> Var {
        let n = circuit.num_nodes;
        let gru = if reverse {
            self.reverse_gru.as_ref().expect("reverse layer configured")
        } else {
            &self.forward_gru
        };
        let gru_input = if self.config.fix_gate_input {
            let target_features = {
                let feat_rows: Vec<Vec<f32>> = batch
                    .targets
                    .iter()
                    .map(|&t| circuit.features.row(t).to_vec())
                    .collect();
                let mut t = Tensor::zeros(batch.targets.len(), self.config.feature_dim);
                for (i, row) in feat_rows.iter().enumerate() {
                    for (j, &v) in row.iter().enumerate() {
                        t.set(i, j, v);
                    }
                }
                g.input(t)
            };
            g.concat_cols(msg, target_features)
        } else {
            msg
        };
        let h_targets = g.gather_rows(h, &batch.targets);
        let updated = gru.forward(g, store, gru_input, h_targets);
        let mut keep = vec![1.0f32; n];
        for &t in &batch.targets {
            keep[t] = 0.0;
        }
        let keep_mask = g.input(Tensor::column(&keep));
        let kept = g.mul_col(keep_mask, h);
        let scattered = g.scatter_add_rows(updated, &batch.targets, n);
        g.add(kept, scattered)
    }

    /// Validates that a circuit's feature encoding matches the model.
    fn check_encoding(&self, circuit: &CircuitGraph) -> Result<(), GnnError> {
        let got = circuit.encoding.dimension();
        if got != self.config.feature_dim {
            return Err(GnnError::EncodingMismatch {
                expected: self.config.feature_dim,
                got,
            });
        }
        Ok(())
    }

    /// Compiles a circuit into the CSR arena layout consumed by the fused
    /// inference kernel: level-contiguous node ordering, per-level CSR
    /// adjacency with skip edges folded in and their positional encodings
    /// precomputed. Build once per circuit, reuse across iterations and
    /// inference calls (a serving layer — see `deepgate::InferenceSession` —
    /// reuses it across requests for repeated circuits).
    pub fn plan(&self, circuit: &CircuitGraph) -> InferencePlan {
        InferencePlan::compile(
            circuit,
            self.config.edge_attr_dim(),
            self.config.skip_encoding_frequencies,
        )
    }

    /// Bakes the model's weights into a [`CompiledKernel`] for the given
    /// scoring mode. The kernel is independent of the parameter store, so a
    /// session can compile once and predict many times.
    pub fn compile(&self, store: &ParamStore, mode: QuantMode) -> CompiledKernel {
        CompiledKernel::build(
            store,
            &self.config,
            &self.embed,
            &self.forward_agg,
            &self.forward_gru,
            self.reverse_agg.as_ref(),
            self.reverse_gru.as_ref(),
            &self.regressors,
            mode,
        )
    }

    /// Precomputes the extended edge lists of every forward batch of a
    /// circuit for the legacy tensor path — the reference implementation the
    /// CSR kernel is validated against.
    pub fn reference_plan(&self, circuit: &CircuitGraph) -> ReferencePlan {
        let forward: Vec<(Vec<usize>, Vec<usize>, Option<Tensor>)> = circuit
            .forward_batches
            .iter()
            .map(|batch| self.extended_edges(circuit, batch))
            .collect();
        let forward_targets = circuit
            .forward_batches
            .iter()
            .zip(&forward)
            .map(|(batch, (_, edge_seg, _))| edge_seg.iter().map(|&s| batch.targets[s]).collect())
            .collect();
        let reverse_targets = circuit
            .reverse_batches
            .iter()
            .map(|batch| batch.edge_seg.iter().map(|&s| batch.targets[s]).collect())
            .collect();
        ReferencePlan {
            forward,
            forward_targets,
            reverse_targets,
            attr_dim: self.config.edge_attr_dim(),
        }
    }

    /// Gradient-free prediction with an explicit iteration count. Used by the
    /// recurrence-iteration sweep (Section IV-D2 of the paper) and for
    /// inference on circuits far larger than the training set (Table III),
    /// where recording an autodiff tape would exhaust memory.
    pub fn predict_with_iterations(
        &self,
        store: &ParamStore,
        circuit: &CircuitGraph,
        num_iterations: usize,
    ) -> Vec<f32> {
        assert_eq!(
            circuit.encoding.dimension(),
            self.config.feature_dim,
            "circuit feature encoding does not match the model configuration"
        );
        let plan = self.plan(circuit);
        let kernel = self.compile(store, QuantMode::F32);
        let mut out = Vec::new();
        kernel
            .predict_into(&plan, num_iterations, &mut out, None)
            .expect("plan freshly built for this circuit and model");
        out
    }

    /// Gradient-free prediction through a precomputed [`InferencePlan`] via
    /// the CSR kernel, writing the per-node probabilities into `out`
    /// (cleared first, so a caller can reuse one allocation across many
    /// calls). Compiles an f32 kernel per call; sessions that predict
    /// repeatedly should hold a [`CompiledKernel`] (see
    /// [`DagRecGnn::compile`]) and call
    /// [`CompiledKernel::predict_into`] directly.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::EncodingMismatch`] if the circuit's feature
    /// encoding does not match the model configuration, and
    /// [`GnnError::PlanMismatch`] if the plan was built for a different
    /// circuit or under a different model configuration.
    pub fn try_predict_into(
        &self,
        store: &ParamStore,
        circuit: &CircuitGraph,
        plan: &InferencePlan,
        num_iterations: usize,
        out: &mut Vec<f32>,
    ) -> Result<(), GnnError> {
        self.try_predict_into_metered(store, circuit, plan, num_iterations, out, None)
    }

    /// [`DagRecGnn::try_predict_into`] with optional kernel telemetry: when
    /// `metrics` is given, every level-batch update records its wall time
    /// and packed width, the regressor head is timed and the circuit's node
    /// count lands in the size-bucket histogram. With `None` the path is
    /// identical to the un-metered one.
    ///
    /// # Errors
    ///
    /// Same contract as [`DagRecGnn::try_predict_into`].
    pub fn try_predict_into_metered(
        &self,
        store: &ParamStore,
        circuit: &CircuitGraph,
        plan: &InferencePlan,
        num_iterations: usize,
        out: &mut Vec<f32>,
        metrics: Option<&GnnMetrics>,
    ) -> Result<(), GnnError> {
        self.check_encoding(circuit)?;
        if !plan.matches(circuit, self.config.edge_attr_dim()) {
            return Err(GnnError::PlanMismatch);
        }
        let kernel = self.compile(store, QuantMode::F32);
        kernel.predict_into(plan, num_iterations, out, metrics)
    }

    /// Gradient-free prediction through the *legacy* tensor path — the
    /// reference implementation the CSR kernel is validated against. Same
    /// output contract as [`DagRecGnn::try_predict_into`].
    ///
    /// # Errors
    ///
    /// Same contract as [`DagRecGnn::try_predict_into`].
    pub fn predict_reference_into(
        &self,
        store: &ParamStore,
        circuit: &CircuitGraph,
        plan: &ReferencePlan,
        num_iterations: usize,
        out: &mut Vec<f32>,
    ) -> Result<(), GnnError> {
        self.check_encoding(circuit)?;
        if plan.forward.len() != circuit.forward_batches.len()
            || plan.attr_dim != self.config.edge_attr_dim()
        {
            return Err(GnnError::PlanMismatch);
        }
        let h = self.embed_with_plan_metered(store, circuit, num_iterations, plan, None);
        let pred = self.regress_tensor(store, circuit, &h);
        out.clear();
        out.extend_from_slice(pred.as_slice());
        Ok(())
    }

    /// Gradient-free computation of the final node embeddings `h_v^T` — the
    /// neural representations of the logic gates that downstream EDA tasks
    /// would consume.
    pub fn embed_with_iterations(
        &self,
        store: &ParamStore,
        circuit: &CircuitGraph,
        num_iterations: usize,
    ) -> Tensor {
        let plan = self.reference_plan(circuit);
        self.embed_with_plan(store, circuit, num_iterations, &plan)
    }

    /// Fallible [`DagRecGnn::embed_with_iterations`]: validates the
    /// circuit's feature encoding first.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::EncodingMismatch`] for incompatible circuits.
    pub fn try_embed_with_iterations(
        &self,
        store: &ParamStore,
        circuit: &CircuitGraph,
        num_iterations: usize,
    ) -> Result<Tensor, GnnError> {
        self.check_encoding(circuit)?;
        Ok(self.embed_with_iterations(store, circuit, num_iterations))
    }

    /// The embedding recurrence over precomputed extended edge lists.
    fn embed_with_plan(
        &self,
        store: &ParamStore,
        circuit: &CircuitGraph,
        num_iterations: usize,
        plan: &ReferencePlan,
    ) -> Tensor {
        self.embed_with_plan_metered(store, circuit, num_iterations, plan, None)
    }

    /// The embedding recurrence, optionally timing every level-batch
    /// aggregation + update into `metrics`.
    fn embed_with_plan_metered(
        &self,
        store: &ParamStore,
        circuit: &CircuitGraph,
        num_iterations: usize,
        plan: &ReferencePlan,
        metrics: Option<&GnnMetrics>,
    ) -> Tensor {
        let mut h = self.embed.forward_tensor(store, &circuit.features);
        for _ in 0..num_iterations {
            for ((batch, (edge_src, edge_seg, attr)), edge_targets) in circuit
                .forward_batches
                .iter()
                .zip(&plan.forward)
                .zip(&plan.forward_targets)
            {
                let level_start = metrics.map(|_| Instant::now());
                let msg = self.aggregate_tensor(
                    store,
                    &h,
                    edge_src,
                    edge_seg,
                    edge_targets,
                    batch,
                    attr.as_ref(),
                    false,
                );
                self.update_rows_tensor(store, circuit, &mut h, batch, &msg, false);
                if let (Some(m), Some(start)) = (metrics, level_start) {
                    m.level_agg_ns.record_duration(start.elapsed());
                    m.levels_total.inc();
                }
            }
            if self.reverse_agg.is_some() {
                for (batch, edge_targets) in
                    circuit.reverse_batches.iter().zip(&plan.reverse_targets)
                {
                    let level_start = metrics.map(|_| Instant::now());
                    let msg = self.aggregate_tensor(
                        store,
                        &h,
                        &batch.edge_src,
                        &batch.edge_seg,
                        edge_targets,
                        batch,
                        None,
                        true,
                    );
                    self.update_rows_tensor(store, circuit, &mut h, batch, &msg, true);
                    if let (Some(m), Some(start)) = (metrics, level_start) {
                        m.level_agg_ns.record_duration(start.elapsed());
                        m.levels_total.inc();
                    }
                }
            }
        }
        h
    }

    #[allow(clippy::too_many_arguments)]
    fn aggregate_tensor(
        &self,
        store: &ParamStore,
        h: &Tensor,
        edge_src: &[usize],
        edge_seg: &[usize],
        edge_targets: &[usize],
        batch: &LevelBatch,
        attr: Option<&Tensor>,
        reverse: bool,
    ) -> Tensor {
        let gather = |indices: &[usize]| -> Tensor {
            let mut out = Tensor::zeros(indices.len(), h.cols());
            for (i, &idx) in indices.iter().enumerate() {
                for j in 0..h.cols() {
                    out.set(i, j, h.get(idx, j));
                }
            }
            out
        };
        let src_states = gather(edge_src);
        let query_states = gather(edge_targets);
        let agg = if reverse {
            self.reverse_agg.as_ref().expect("reverse layer configured")
        } else {
            &self.forward_agg
        };
        agg.aggregate_tensor(
            store,
            &src_states,
            &query_states,
            edge_seg,
            batch.targets.len(),
            attr,
        )
    }

    fn update_rows_tensor(
        &self,
        store: &ParamStore,
        circuit: &CircuitGraph,
        h: &mut Tensor,
        batch: &LevelBatch,
        msg: &Tensor,
        reverse: bool,
    ) {
        let gru = if reverse {
            self.reverse_gru.as_ref().expect("reverse layer configured")
        } else {
            &self.forward_gru
        };
        let input = if self.config.fix_gate_input {
            let mut concat = Tensor::zeros(
                batch.targets.len(),
                self.config.hidden_dim + self.config.feature_dim,
            );
            for (i, &t) in batch.targets.iter().enumerate() {
                for j in 0..self.config.hidden_dim {
                    concat.set(i, j, msg.get(i, j));
                }
                for j in 0..self.config.feature_dim {
                    concat.set(i, self.config.hidden_dim + j, circuit.features.get(t, j));
                }
            }
            concat
        } else {
            msg.clone()
        };
        let mut h_targets = Tensor::zeros(batch.targets.len(), h.cols());
        for (i, &t) in batch.targets.iter().enumerate() {
            for j in 0..h.cols() {
                h_targets.set(i, j, h.get(t, j));
            }
        }
        let updated = gru.forward_tensor(store, &input, &h_targets);
        for (i, &t) in batch.targets.iter().enumerate() {
            for j in 0..h.cols() {
                h.set(t, j, updated.get(i, j));
            }
        }
    }

    fn regress_tensor(&self, store: &ParamStore, circuit: &CircuitGraph, h: &Tensor) -> Tensor {
        if !self.config.per_type_regressor {
            return self.regressors[0].forward_tensor(store, h);
        }
        let n = circuit.num_nodes;
        let mut out = Tensor::zeros(n, 1);
        for (head, regressor) in self.regressors.iter().enumerate() {
            let pred = regressor.forward_tensor(store, h);
            for i in 0..n {
                let mask = circuit.features.get(i, head);
                if mask > 0.0 {
                    out.set(i, 0, out.get(i, 0) + mask * pred.get(i, 0));
                }
            }
        }
        out
    }
}

impl ProbabilityModel for DagRecGnn {
    fn forward(&self, g: &mut Graph, store: &ParamStore, circuit: &CircuitGraph) -> Var {
        self.forward_with_iterations(g, store, circuit, self.config.num_iterations)
    }

    fn try_forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        circuit: &CircuitGraph,
    ) -> Result<Var, GnnError> {
        self.check_encoding(circuit)?;
        Ok(self.forward(g, store, circuit))
    }

    fn predict(&self, store: &ParamStore, circuit: &CircuitGraph) -> Vec<f32> {
        self.predict_with_iterations(store, circuit, self.config.num_iterations)
    }

    fn try_predict(
        &self,
        store: &ParamStore,
        circuit: &CircuitGraph,
    ) -> Result<Vec<f32>, GnnError> {
        self.check_encoding(circuit)?;
        Ok(self.predict_with_iterations(store, circuit, self.config.num_iterations))
    }

    fn name(&self) -> String {
        let base =
            if self.config.fix_gate_input && self.config.aggregator == AggregatorKind::Attention {
                if self.config.use_skip_connections {
                    "DeepGate (Attention w/ SC)".to_string()
                } else {
                    "DeepGate (Attention w/o SC)".to_string()
                }
            } else {
                format!("DAG-RecGNN ({})", self.config.aggregator)
            };
        format!("{base} T={}", self.config.num_iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeatureEncoding;
    use deepgate_netlist::{GateKind, Netlist};

    fn reconvergent_graph() -> CircuitGraph {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g1 = n.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = n.add_gate(GateKind::Not, &[g1]).unwrap();
        let g3 = n.add_gate(GateKind::And, &[g1, c]).unwrap();
        let g4 = n.add_gate(GateKind::And, &[g2, g3]).unwrap();
        n.mark_output(g4, "y");
        CircuitGraph::from_netlist(&n, FeatureEncoding::AigGates, None)
    }

    fn small_config(kind: AggregatorKind) -> DagRecConfig {
        DagRecConfig {
            hidden_dim: 12,
            num_iterations: 2,
            aggregator: kind,
            regressor_hidden: 8,
            ..DagRecConfig::default()
        }
    }

    #[test]
    fn union_prediction_matches_per_circuit_prediction() {
        // Batched inference over a disjoint union must reproduce the
        // per-circuit results exactly, for every model variant.
        let a = reconvergent_graph();
        let mut n = Netlist::new("chain");
        let x = n.add_input("x");
        let y = n.add_input("y");
        let g1 = n.add_gate(GateKind::And, &[x, y]).unwrap();
        let g2 = n.add_gate(GateKind::Not, &[g1]).unwrap();
        let g3 = n.add_gate(GateKind::Not, &[g2]).unwrap();
        let g4 = n.add_gate(GateKind::And, &[g3, x]).unwrap();
        n.mark_output(g4, "z");
        let b = CircuitGraph::from_netlist(&n, FeatureEncoding::AigGates, None);

        let (union, offsets) = CircuitGraph::disjoint_union(&[&a, &b]).unwrap();
        for (fix, skip) in [(false, false), (true, true)] {
            let mut store = ParamStore::new();
            let config = DagRecConfig {
                fix_gate_input: fix,
                use_skip_connections: skip,
                per_type_regressor: fix,
                ..small_config(AggregatorKind::Attention)
            };
            let model = DagRecGnn::new(&mut store, config);
            let merged = model.predict(&store, &union);
            for (circuit, &offset) in [&a, &b].iter().zip(&offsets) {
                let single = model.predict(&store, circuit);
                for (i, &value) in single.iter().enumerate() {
                    assert!(
                        (value - merged[offset + i]).abs() < 1e-6,
                        "node {i} of `{}`: {value} vs {}",
                        circuit.name,
                        merged[offset + i]
                    );
                }
            }
        }
    }

    #[test]
    fn forward_produces_probabilities_for_all_aggregators() {
        let circuit = reconvergent_graph();
        for kind in AggregatorKind::ALL {
            let mut store = ParamStore::new();
            let model = DagRecGnn::new(&mut store, small_config(kind));
            let mut g = Graph::new();
            let pred = model.forward(&mut g, &store, &circuit);
            let values = g.value(pred);
            assert_eq!(values.shape(), [circuit.num_nodes, 1]);
            assert!(values.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn tensor_prediction_matches_tape_prediction() {
        let circuit = reconvergent_graph();
        for (fix, skip, per_type) in [
            (false, false, false),
            (true, false, false),
            (true, true, true),
        ] {
            let mut store = ParamStore::new();
            let config = DagRecConfig {
                aggregator: AggregatorKind::Attention,
                fix_gate_input: fix,
                use_skip_connections: skip,
                per_type_regressor: per_type,
                ..small_config(AggregatorKind::Attention)
            };
            let model = DagRecGnn::new(&mut store, config);
            let mut g = Graph::new();
            let tape_pred = model.forward(&mut g, &store, &circuit);
            let tape_values = g.value(tape_pred).as_slice().to_vec();
            let tensor_values = model.predict(&store, &circuit);
            for (a, b) in tape_values.iter().zip(&tensor_values) {
                assert!((a - b).abs() < 1e-4, "fix={fix} skip={skip}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn deepgate_configuration_is_named_deepgate() {
        let mut store = ParamStore::new();
        let config = DagRecConfig {
            aggregator: AggregatorKind::Attention,
            fix_gate_input: true,
            use_skip_connections: true,
            ..small_config(AggregatorKind::Attention)
        };
        let model = DagRecGnn::new(&mut store, config);
        assert!(model.name().contains("DeepGate"));
        assert!(model.name().contains("w/ SC"));
        let mut store2 = ParamStore::new();
        let baseline = DagRecGnn::new(&mut store2, small_config(AggregatorKind::DeepSet));
        assert!(baseline.name().contains("DAG-RecGNN"));
    }

    #[test]
    fn skip_connections_change_predictions_on_reconvergent_circuits() {
        let circuit = reconvergent_graph();
        assert!(!circuit.skip_edges.is_empty());
        let base_config = DagRecConfig {
            aggregator: AggregatorKind::Attention,
            fix_gate_input: true,
            use_skip_connections: false,
            ..small_config(AggregatorKind::Attention)
        };
        let skip_config = DagRecConfig {
            use_skip_connections: true,
            ..base_config
        };
        // Same seed so shared parameters initialise identically; the extra
        // skip-edge parameters must change the output on a reconvergent
        // circuit.
        let mut store_a = ParamStore::new();
        let model_a = DagRecGnn::new(&mut store_a, base_config);
        let mut store_b = ParamStore::new();
        let model_b = DagRecGnn::new(&mut store_b, skip_config);
        let pred_a = model_a.predict(&store_a, &circuit);
        let pred_b = model_b.predict(&store_b, &circuit);
        let diff: f32 = pred_a.iter().zip(&pred_b).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-6);
    }

    #[test]
    fn more_iterations_change_the_embedding() {
        let circuit = reconvergent_graph();
        let mut store = ParamStore::new();
        let model = DagRecGnn::new(&mut store, small_config(AggregatorKind::Attention));
        let h1 = model.embed_with_iterations(&store, &circuit, 1);
        let h4 = model.embed_with_iterations(&store, &circuit, 4);
        assert_eq!(h1.shape(), [circuit.num_nodes, 12]);
        assert_ne!(h1, h4);
    }

    #[test]
    fn metered_prediction_matches_and_records_kernel_series() {
        let circuit = reconvergent_graph();
        let mut store = ParamStore::new();
        let model = DagRecGnn::new(&mut store, small_config(AggregatorKind::Attention));
        let plan = model.plan(&circuit);

        let mut plain = Vec::new();
        model
            .try_predict_into(&store, &circuit, &plan, 2, &mut plain)
            .unwrap();

        let registry = deepgate_telemetry::Registry::new();
        let metrics = GnnMetrics::registered(&registry);
        let mut metered = Vec::new();
        model
            .try_predict_into_metered(&store, &circuit, &plan, 2, &mut metered, Some(&metrics))
            .unwrap();
        assert_eq!(plain, metered, "telemetry must not perturb the prediction");

        let snap = registry.snapshot();
        // 2 iterations × (forward + reverse) level batches.
        let levels = 2 * (circuit.forward_batches.len() + circuit.reverse_batches.len()) as u64;
        assert_eq!(snap.counter("gnn_levels_total"), levels);
        assert_eq!(
            snap.histogram("gnn_level_agg_ns").expect("series").count,
            levels
        );
        assert_eq!(snap.histogram("gnn_regress_ns").expect("series").count, 1);
        let nodes = snap.histogram("gnn_circuit_nodes").expect("series");
        assert_eq!(nodes.count, 1);
        assert_eq!(nodes.max, circuit.num_nodes as u64);
        // Every level pass records its packed target width; f32 mode never
        // touches the quantized counter.
        let widths = snap.histogram("gnn_csr_level_width").expect("series");
        assert_eq!(widths.count, levels);
        assert!(widths.max >= 1);
        assert_eq!(snap.counter("gnn_quantized_predicts_total"), 0);
    }

    #[test]
    fn csr_kernel_is_bit_exact_with_reference_path() {
        let circuit = reconvergent_graph();
        for kind in AggregatorKind::ALL {
            for (fix, skip, per_type) in [(false, false, false), (true, true, true)] {
                let mut store = ParamStore::new();
                let config = DagRecConfig {
                    fix_gate_input: fix,
                    use_skip_connections: skip,
                    per_type_regressor: per_type,
                    ..small_config(kind)
                };
                let model = DagRecGnn::new(&mut store, config);
                let mut reference = Vec::new();
                model
                    .predict_reference_into(
                        &store,
                        &circuit,
                        &model.reference_plan(&circuit),
                        3,
                        &mut reference,
                    )
                    .unwrap();
                let mut csr = Vec::new();
                model
                    .compile(&store, QuantMode::F32)
                    .predict_into(&model.plan(&circuit), 3, &mut csr, None)
                    .unwrap();
                let bits = |v: &[f32]| v.iter().map(|p| p.to_bits()).collect::<Vec<_>>();
                assert_eq!(
                    bits(&reference),
                    bits(&csr),
                    "kind={kind:?} fix={fix} skip={skip}"
                );
            }
        }
    }

    #[test]
    fn iteration_count_is_an_inference_knob() {
        let circuit = reconvergent_graph();
        let mut store = ParamStore::new();
        let model = DagRecGnn::new(&mut store, small_config(AggregatorKind::Attention));
        let p1 = model.predict_with_iterations(&store, &circuit, 1);
        let p8 = model.predict_with_iterations(&store, &circuit, 8);
        assert_eq!(p1.len(), p8.len());
        assert!(p1.iter().zip(&p8).any(|(a, b)| (a - b).abs() > 1e-7));
    }
}
