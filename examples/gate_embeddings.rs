//! Gate-embedding exploration: train DeepGate on a small dataset through the
//! [`deepgate::Engine`], then use the learned per-gate vectors to find
//! functionally similar gates across two different circuits — the "general
//! representation" use-case the paper targets for downstream EDA tasks.
//!
//! ```bash
//! cargo run --release --example gate_embeddings
//! ```

use deepgate::dataset::generators;
use deepgate::prelude::*;

fn main() -> Result<(), DeepGateError> {
    // Train briefly on a handful of small circuits via the unified engine.
    let mut engine = Engine::builder()
        .model(DeepGateConfig {
            hidden_dim: 32,
            num_iterations: 4,
            ..DeepGateConfig::default()
        })
        .trainer(TrainerConfig {
            epochs: 15,
            learning_rate: 3e-3,
            ..TrainerConfig::default()
        })
        .num_patterns(4_096)
        .build()?;
    let training_source = NetlistSource::new(vec![
        generators::ripple_carry_adder(6),
        generators::comparator(6),
        generators::priority_arbiter(8),
        generators::parity_tree(12),
    ]);
    engine.fit(&training_source)?;
    println!(
        "trained DeepGate ({} weights) through the engine",
        engine.model().num_weights()
    );

    // Embed two unseen circuits and find, for a probe gate in the first, the
    // most similar gates in the second by cosine similarity.
    let unseen = engine.prepare(&NetlistSource::new(vec![
        generators::alu(4),
        generators::counter_next_state(8),
    ]))?;
    let (probe, other) = (&unseen[0], &unseen[1]);
    let probe_emb = engine.embeddings(probe)?;
    let other_emb = engine.embeddings(other)?;

    let cosine = |a: &[f32], b: &[f32]| -> f32 {
        let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    };

    // Probe: the deepest gate of the ALU circuit.
    let probe_gate = (0..probe.num_nodes)
        .filter(|&i| probe.gate_mask[i])
        .max_by_key(|&i| probe.levels[i])
        .expect("circuit has gates");
    let probe_vec = probe_emb.row(probe_gate);
    let probe_label = probe.labels.as_ref().expect("labelled")[probe_gate];
    println!(
        "probe: ALU gate {probe_gate} at level {} with simulated P(1) = {probe_label:.3}",
        probe.levels[probe_gate]
    );

    let mut matches: Vec<(usize, f32)> = (0..other.num_nodes)
        .filter(|&i| other.gate_mask[i])
        .map(|i| (i, cosine(probe_vec, other_emb.row(i))))
        .collect();
    matches.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite similarity"));
    println!("closest gates in the counter circuit (by embedding cosine similarity):");
    for (gate, sim) in matches.iter().take(5) {
        let label = other.labels.as_ref().expect("labelled")[*gate];
        println!(
            "  gate {gate}: similarity {sim:.3}, level {}, simulated P(1) = {label:.3}",
            other.levels[*gate]
        );
    }
    Ok(())
}
