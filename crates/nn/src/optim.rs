//! First-order optimisers over a [`ParamStore`].

use crate::{ParamStore, Tensor};

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    learning_rate: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimiser.
    pub fn new(learning_rate: f32, momentum: f32) -> Self {
        Sgd {
            learning_rate,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// The learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// Applies one update step using the gradients accumulated in `store`.
    pub fn step(&mut self, store: &mut ParamStore) {
        let ids: Vec<_> = store.ids().collect();
        if self.velocity.len() != ids.len() {
            self.velocity = ids
                .iter()
                .map(|&id| {
                    let v = store.value(id);
                    Tensor::zeros(v.rows(), v.cols())
                })
                .collect();
        }
        for (slot, id) in ids.into_iter().enumerate() {
            let grad = store.grad(id).clone();
            if grad.is_empty() {
                continue;
            }
            let v = &mut self.velocity[slot];
            for (vel, &g) in v.as_mut_slice().iter_mut().zip(grad.as_slice()) {
                *vel = self.momentum * *vel - self.learning_rate * g;
            }
            let update = v.clone();
            store.value_mut(id).axpy(1.0, &update);
        }
    }
}

/// The Adam optimiser (Kingma & Ba), used by the paper with a learning rate
/// of `1e-4`.
#[derive(Debug, Clone)]
pub struct Adam {
    learning_rate: f32,
    beta1: f32,
    beta2: f32,
    epsilon: f32,
    step_count: u64,
    first_moment: Vec<Tensor>,
    second_moment: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimiser with explicit hyper-parameters.
    pub fn new(learning_rate: f32, beta1: f32, beta2: f32, epsilon: f32) -> Self {
        Adam {
            learning_rate,
            beta1,
            beta2,
            epsilon,
            step_count: 0,
            first_moment: Vec::new(),
            second_moment: Vec::new(),
        }
    }

    /// Creates an Adam optimiser with the standard β/ε defaults
    /// (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    pub fn with_defaults(learning_rate: f32) -> Self {
        Adam::new(learning_rate, 0.9, 0.999, 1e-8)
    }

    /// The learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// Overrides the learning rate (e.g. for schedules).
    pub fn set_learning_rate(&mut self, learning_rate: f32) {
        self.learning_rate = learning_rate;
    }

    /// Number of update steps applied so far.
    pub fn step_count(&self) -> u64 {
        self.step_count
    }

    /// Applies one Adam update step using the gradients accumulated in
    /// `store`.
    pub fn step(&mut self, store: &mut ParamStore) {
        let ids: Vec<_> = store.ids().collect();
        if self.first_moment.len() != ids.len() {
            self.first_moment = ids
                .iter()
                .map(|&id| {
                    let v = store.value(id);
                    Tensor::zeros(v.rows(), v.cols())
                })
                .collect();
            self.second_moment = self.first_moment.clone();
        }
        self.step_count += 1;
        let t = self.step_count as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for (slot, id) in ids.into_iter().enumerate() {
            let grad = store.grad(id).clone();
            if grad.is_empty() {
                continue;
            }
            let m = &mut self.first_moment[slot];
            let v = &mut self.second_moment[slot];
            let value = store.value_mut(id);
            for i in 0..grad.len() {
                let g = grad.as_slice()[i];
                let mi = self.beta1 * m.as_slice()[i] + (1.0 - self.beta1) * g;
                let vi = self.beta2 * v.as_slice()[i] + (1.0 - self.beta2) * g * g;
                m.as_mut_slice()[i] = mi;
                v.as_mut_slice()[i] = vi;
                let m_hat = mi / bias1;
                let v_hat = vi / bias2;
                value.as_mut_slice()[i] -=
                    self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Graph, ParamStore};

    fn quadratic_loss(store: &ParamStore, id: crate::ParamId) -> (Graph, crate::Var) {
        // loss = mean((w - 3)^2): minimised at w = 3.
        let mut g = Graph::new();
        let w = g.param(store, id);
        let target = Tensor::full(1, 4, 3.0);
        let loss = g.mse_loss(w, &target);
        (g, loss)
    }

    #[test]
    fn sgd_minimises_quadratic() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::zeros(1, 4));
        let mut sgd = Sgd::new(0.1, 0.9);
        assert_eq!(sgd.learning_rate(), 0.1);
        for _ in 0..200 {
            let (mut g, loss) = quadratic_loss(&store, id);
            g.backward(loss, &mut store);
            sgd.step(&mut store);
            store.zero_grad();
        }
        for &v in store.value(id).as_slice() {
            assert!((v - 3.0).abs() < 1e-2, "value {v}");
        }
    }

    #[test]
    fn adam_minimises_quadratic_faster_than_sgd_without_momentum() {
        let mut store_adam = ParamStore::new();
        let id_adam = store_adam.add("w", Tensor::zeros(1, 4));
        let mut adam = Adam::with_defaults(0.2);
        for _ in 0..100 {
            let (mut g, loss) = quadratic_loss(&store_adam, id_adam);
            g.backward(loss, &mut store_adam);
            adam.step(&mut store_adam);
            store_adam.zero_grad();
        }
        assert_eq!(adam.step_count(), 100);
        for &v in store_adam.value(id_adam).as_slice() {
            assert!((v - 3.0).abs() < 0.05, "adam value {v}");
        }
    }

    #[test]
    fn adam_learning_rate_can_be_changed() {
        let mut adam = Adam::with_defaults(0.1);
        assert_eq!(adam.learning_rate(), 0.1);
        adam.set_learning_rate(0.01);
        assert_eq!(adam.learning_rate(), 0.01);
    }

    #[test]
    fn optimisers_skip_parameters_without_gradients() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::ones(1, 2));
        let mut adam = Adam::with_defaults(0.1);
        let mut sgd = Sgd::new(0.1, 0.0);
        // No backward pass ran; values must stay unchanged.
        adam.step(&mut store);
        sgd.step(&mut store);
        assert_eq!(store.value(id).as_slice(), &[1.0, 1.0]);
    }
}
