//! The dynamic micro-batching scheduler: a bounded request queue drained by
//! worker threads that fuse concurrent requests into
//! [`deepgate::InferenceSession`] batches.

use crate::metrics::SchedulerMetrics;
use crate::{ServeConfig, ServeError};
use deepgate::gnn::CircuitGraph;
use deepgate::telemetry::Registry;
use deepgate::{InferenceSession, PreparedCircuit};
use serde::Serialize;
use std::collections::VecDeque;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One queued prediction request: the prepared circuit plus the channel its
/// result is routed back through.
struct Job {
    circuit: Arc<PreparedCircuit>,
    respond: Sender<Result<Vec<f32>, ServeError>>,
}

/// Scheduler counters, as reported by the `stats` wire verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SchedulerStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered with predictions.
    pub completed: u64,
    /// Requests answered with an engine error.
    pub failed: u64,
    /// Submissions rejected because the queue was full.
    pub rejected_overloaded: u64,
    /// Queued requests flushed with [`ServeError::ShuttingDown`] during
    /// drain (plus submissions after the drain began).
    pub rejected_shutdown: u64,
    /// Batches executed.
    pub batches: u64,
    /// Requests summed over all executed batches (mean batch size is
    /// `batched / batches`).
    pub batched: u64,
    /// Largest batch executed so far.
    pub max_batch_observed: u64,
    /// Requests that shared a batch-mate's prediction instead of running
    /// their own (duplicate circuits deduplicated within a batch).
    pub deduplicated: u64,
}

impl SchedulerStats {
    /// Derives the stats from a registry [`Snapshot`] — the server's
    /// one-snapshot `stats` path, so these values are consistent with every
    /// other series read from the same snapshot.
    ///
    /// [`Snapshot`]: deepgate::telemetry::Snapshot
    pub fn from_snapshot(snapshot: &deepgate::telemetry::Snapshot) -> Self {
        SchedulerStats {
            submitted: snapshot.counter("scheduler_submitted_total"),
            completed: snapshot.counter("scheduler_completed_total"),
            failed: snapshot.counter("scheduler_failed_total"),
            rejected_overloaded: snapshot.counter("scheduler_rejected_overloaded_total"),
            rejected_shutdown: snapshot.counter("scheduler_rejected_shutdown_total"),
            batches: snapshot.counter("scheduler_batches_total"),
            batched: snapshot.counter("scheduler_batched_requests_total"),
            max_batch_observed: snapshot.counter("scheduler_max_batch"),
            deduplicated: snapshot.counter("scheduler_deduplicated_total"),
        }
    }
}

struct QueueState {
    jobs: VecDeque<Job>,
    open: bool,
}

struct Shared {
    session: InferenceSession,
    max_batch: usize,
    batch_window: Duration,
    queue_depth: usize,
    state: Mutex<QueueState>,
    not_empty: Condvar,
    metrics: SchedulerMetrics,
}

/// The dynamic micro-batching scheduler.
///
/// Requests enter through [`Scheduler::submit`] into a bounded queue; worker
/// threads drain it in batches. A worker holding one request keeps
/// collecting until it has `max_batch` of them or `batch_window` has
/// elapsed, then deduplicates repeated circuits, executes the distinct
/// remainder as fused disjoint-union graphs and routes each result back to
/// its submitter — so concurrent small requests pay one batched dispatch
/// instead of many sequential ones, repeats of a hot circuit pay a single
/// prediction, and a lone request under light load only ever waits
/// `batch_window`.
///
/// Backpressure is explicit: a full queue rejects with
/// [`ServeError::Overloaded`] rather than queueing unboundedly. Shutdown is
/// graceful: batches already executing complete and respond, still-queued
/// requests are flushed with [`ServeError::ShuttingDown`], and
/// [`Scheduler::shutdown`] joins every worker.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    /// Starts `config.workers` batching workers over a session.
    ///
    /// `config.workers == 0` is allowed and starts none: requests queue up
    /// (and are rejected / flushed per the normal rules) without ever being
    /// served — useful for exercising backpressure and drain behaviour in
    /// tests.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] if `max_batch` or `queue_depth` is 0.
    pub fn new(session: InferenceSession, config: &ServeConfig) -> Result<Scheduler, ServeError> {
        // Standalone schedulers (tests, embedding without a Server) get a
        // private registry; the Server shares one via `with_metrics`.
        Scheduler::with_metrics(
            session,
            config,
            SchedulerMetrics::registered(&Registry::new()),
        )
    }

    /// [`Scheduler::new`] recording into externally registered telemetry
    /// handles, so the scheduler's series share a registry (and therefore a
    /// snapshot) with the rest of the serving stack.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] if `max_batch` or `queue_depth` is 0.
    pub fn with_metrics(
        session: InferenceSession,
        config: &ServeConfig,
        metrics: SchedulerMetrics,
    ) -> Result<Scheduler, ServeError> {
        if config.max_batch == 0 {
            return Err(ServeError::Config("max_batch must be at least 1".into()));
        }
        if config.queue_depth == 0 {
            return Err(ServeError::Config("queue_depth must be at least 1".into()));
        }
        let shared = Arc::new(Shared {
            session,
            max_batch: config.max_batch,
            batch_window: config.batch_window,
            queue_depth: config.queue_depth,
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                open: true,
            }),
            not_empty: Condvar::new(),
            metrics,
        });
        let workers = (0..config.workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("deepgate-serve-worker-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(|e| ServeError::Io(format!("spawning worker: {e}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Scheduler {
            shared,
            workers: Mutex::new(workers),
        })
    }

    /// The session the workers predict through.
    pub fn session(&self) -> &InferenceSession {
        &self.shared.session
    }

    /// Enqueues a prepared circuit, returning the channel its result will
    /// arrive on.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Overloaded`] when the queue is full and
    /// [`ServeError::ShuttingDown`] once [`Scheduler::shutdown`] has begun.
    #[allow(clippy::type_complexity)]
    pub fn submit(
        &self,
        circuit: Arc<PreparedCircuit>,
    ) -> Result<Receiver<Result<Vec<f32>, ServeError>>, ServeError> {
        let (respond, receive) = mpsc::channel();
        {
            let mut state = self.shared.state.lock().expect("scheduler lock");
            if !state.open {
                self.shared.metrics.rejected_shutdown.inc();
                return Err(ServeError::ShuttingDown);
            }
            if state.jobs.len() >= self.shared.queue_depth {
                self.shared.metrics.rejected_overloaded.inc();
                return Err(ServeError::Overloaded {
                    depth: self.shared.queue_depth,
                });
            }
            state.jobs.push_back(Job { circuit, respond });
            self.shared.metrics.queue_depth.inc();
        }
        self.shared.metrics.submitted.inc();
        self.shared.not_empty.notify_one();
        Ok(receive)
    }

    /// Submits and blocks until the result arrives — the per-connection
    /// serving path.
    ///
    /// # Errors
    ///
    /// Propagates [`Scheduler::submit`] rejections and any engine error the
    /// worker hit; a worker that disappeared mid-request reports
    /// [`ServeError::ShuttingDown`].
    pub fn predict(&self, circuit: Arc<PreparedCircuit>) -> Result<Vec<f32>, ServeError> {
        self.submit(circuit)?
            .recv()
            .unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Current counters (each read individually; the server's `stats` verb
    /// instead derives [`SchedulerStats`] from one registry snapshot via
    /// [`SchedulerStats::from_snapshot`]).
    pub fn stats(&self) -> SchedulerStats {
        let m = &self.shared.metrics;
        SchedulerStats {
            submitted: m.submitted.get(),
            completed: m.completed.get(),
            failed: m.failed.get(),
            rejected_overloaded: m.rejected_overloaded.get(),
            rejected_shutdown: m.rejected_shutdown.get(),
            batches: m.batches.get(),
            batched: m.batched_requests.get(),
            max_batch_observed: m.max_batch.get(),
            deduplicated: m.deduplicated.get(),
        }
    }

    /// Requests queued right now.
    pub fn queue_len(&self) -> usize {
        self.shared.state.lock().expect("scheduler lock").jobs.len()
    }

    /// Graceful drain: closes the queue, answers every still-queued request
    /// with [`ServeError::ShuttingDown`], and joins the workers (which
    /// finish and respond to the batches they already hold). Idempotent.
    pub fn shutdown(&self) {
        let flushed: Vec<Job> = {
            let mut state = self.shared.state.lock().expect("scheduler lock");
            state.open = false;
            state.jobs.drain(..).collect()
        };
        self.shared.not_empty.notify_all();
        self.shared.metrics.queue_depth.add(-(flushed.len() as i64));
        self.shared
            .metrics
            .rejected_shutdown
            .add(flushed.len() as u64);
        for job in flushed {
            let _ = job.respond.send(Err(ServeError::ShuttingDown));
        }
        let workers: Vec<JoinHandle<()>> = {
            let mut guard = self.workers.lock().expect("worker handles lock");
            guard.drain(..).collect()
        };
        for worker in workers {
            let _ = worker.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(jobs) = next_batch(shared) {
        execute(shared, jobs);
    }
}

/// Blocks for work, then keeps the queue drained into one batch until the
/// batch is full or `batch_window` has elapsed since the first request was
/// taken. Returns `None` once the queue is closed and empty.
fn next_batch(shared: &Shared) -> Option<Vec<Job>> {
    let mut state = shared.state.lock().expect("scheduler lock");
    loop {
        if let Some(first) = state.jobs.pop_front() {
            shared.metrics.queue_depth.dec();
            let mut jobs = vec![first];
            let deadline = Instant::now() + shared.batch_window;
            while jobs.len() < shared.max_batch {
                if let Some(job) = state.jobs.pop_front() {
                    shared.metrics.queue_depth.dec();
                    jobs.push(job);
                    continue;
                }
                if !state.open {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (next, _) = shared
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .expect("scheduler lock");
                state = next;
            }
            return Some(jobs);
        }
        if !state.open {
            return None;
        }
        state = shared.not_empty.wait(state).expect("scheduler lock");
    }
}

/// Executes one batch and routes every result back to its submitter.
///
/// Requests for the *same* prepared circuit (same cached `Arc`, which is how
/// the structural cache hands out repeats) are deduplicated first: the
/// circuit is predicted once and the result fanned out to every duplicate.
/// The model is immutable for the session's lifetime, so duplicates are
/// guaranteed bit-identical — under a repeated-circuit serving workload this
/// is where most of the micro-batching win comes from, on top of the fused
/// disjoint-union execution of the distinct remainder. A batch-level failure
/// falls back to per-circuit prediction so one poisoned request cannot fail
/// its batch-mates.
fn execute(shared: &Shared, jobs: Vec<Job>) {
    let metrics = &shared.metrics;
    let batch_start = Instant::now();
    metrics.batches.inc();
    metrics.batched_requests.add(jobs.len() as u64);
    metrics.max_batch.record_max(jobs.len() as u64);
    metrics.batch_size.record(jobs.len() as u64);

    // Group jobs by circuit identity (Arc pointer): cheap, and exact for
    // cache-served repeats. Uncached duplicates simply form singleton
    // groups and run individually.
    let mut group_of_job: Vec<usize> = Vec::with_capacity(jobs.len());
    let mut groups: Vec<usize> = Vec::new(); // index of each group's first job
    let mut index_of: std::collections::HashMap<*const PreparedCircuit, usize> =
        std::collections::HashMap::new();
    for (j, job) in jobs.iter().enumerate() {
        let key = Arc::as_ptr(&job.circuit);
        let group = *index_of.entry(key).or_insert_with(|| {
            groups.push(j);
            groups.len() - 1
        });
        group_of_job.push(group);
    }
    metrics.deduplicated.add((jobs.len() - groups.len()) as u64);

    let distinct: Result<Vec<Vec<f32>>, ServeError> = if groups.len() == 1 {
        // One distinct circuit: its cached plan serves directly, no fusing.
        let mut out = Vec::new();
        shared
            .session
            .predict_into(&jobs[groups[0]].circuit, &mut out)
            .map(|()| vec![out])
            .map_err(ServeError::Engine)
    } else {
        let refs: Vec<&CircuitGraph> = groups.iter().map(|&j| jobs[j].circuit.circuit()).collect();
        let mut out = Vec::new();
        shared
            .session
            .prepare_batch_refs(&refs)
            .and_then(|prepared| shared.session.predict_batch_into(&prepared, &mut out))
            .map(|()| out)
            .map_err(ServeError::Engine)
    };

    // The batch latency is recorded BEFORE responses are routed: once a
    // submitter holds its result, every series this batch touched is
    // already visible, so a snapshot taken at quiescence is exact
    // (`batch_latency_ns.count == scheduler_batches_total`).
    match distinct {
        Ok(results) => {
            metrics
                .batch_latency_ns
                .record_duration(batch_start.elapsed());
            for (job, &group) in jobs.iter().zip(&group_of_job) {
                metrics.completed.inc();
                let _ = job.respond.send(Ok(results[group].clone()));
            }
        }
        Err(_) => {
            let results: Vec<Result<Vec<f32>, ServeError>> = jobs
                .iter()
                .map(|job| {
                    let mut out = Vec::new();
                    shared
                        .session
                        .predict_into(&job.circuit, &mut out)
                        .map(|()| out)
                        .map_err(ServeError::Engine)
                })
                .collect();
            metrics
                .batch_latency_ns
                .record_duration(batch_start.elapsed());
            for (job, result) in jobs.iter().zip(results) {
                match result {
                    Ok(probs) => {
                        metrics.completed.inc();
                        let _ = job.respond.send(Ok(probs));
                    }
                    Err(e) => {
                        metrics.failed.inc();
                        let _ = job.respond.send(Err(e));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepgate::core::DeepGateConfig;
    use deepgate::{BenchText, Engine};

    fn test_session() -> InferenceSession {
        Engine::builder()
            .model(DeepGateConfig {
                hidden_dim: 8,
                num_iterations: 2,
                regressor_hidden: 4,
                ..DeepGateConfig::default()
            })
            .build()
            .expect("valid configuration")
            .into_session()
    }

    /// Chains of distinct lengths, so per-circuit outputs are
    /// distinguishable by length and value.
    fn chain_circuit(engine_session: &InferenceSession, length: usize) -> Arc<PreparedCircuit> {
        let mut bench = String::from("INPUT(a)\nINPUT(b)\nOUTPUT(y)\nw0 = AND(a, b)\n");
        for i in 1..length {
            bench.push_str(&format!("w{i} = NOT(w{})\n", i - 1));
        }
        bench.push_str(&format!("y = AND(w{}, a)\n", length - 1));
        let engine = Engine::builder()
            .model(DeepGateConfig {
                hidden_dim: 8,
                num_iterations: 2,
                regressor_hidden: 4,
                ..DeepGateConfig::default()
            })
            .build()
            .expect("valid configuration");
        let circuit = engine
            .prepare_unlabelled(&BenchText::new(format!("chain{length}"), bench))
            .expect("chain parses")
            .pop()
            .expect("one circuit");
        Arc::new(engine_session.prepare(circuit))
    }

    #[test]
    fn responses_are_routed_to_their_requests() {
        let session = test_session();
        let circuits: Vec<Arc<PreparedCircuit>> =
            (2..8).map(|n| chain_circuit(&session, n)).collect();
        let expected: Vec<Vec<f32>> = circuits
            .iter()
            .map(|c| session.predict(c.circuit()).expect("predicts"))
            .collect();

        let scheduler = Scheduler::new(
            test_session(),
            &ServeConfig {
                workers: 2,
                max_batch: 4,
                batch_window: Duration::from_millis(5),
                ..ServeConfig::default()
            },
        )
        .expect("valid config");
        // Submit everything first so batches actually form, then collect.
        let receivers: Vec<_> = circuits
            .iter()
            .map(|c| scheduler.submit(Arc::clone(c)).expect("queue open"))
            .collect();
        for (i, receiver) in receivers.into_iter().enumerate() {
            let probs = receiver.recv().expect("worker alive").expect("predicts");
            assert_eq!(probs, expected[i], "request {i} got someone else's result");
        }
        let stats = scheduler.stats();
        assert_eq!(stats.completed, circuits.len() as u64);
        assert!(stats.batches >= 1);
        assert_eq!(stats.batched, circuits.len() as u64);
        scheduler.shutdown();
    }

    #[test]
    fn duplicate_circuits_in_a_batch_predict_once_with_identical_results() {
        let session = test_session();
        let a = chain_circuit(&session, 3);
        let b = chain_circuit(&session, 5);
        let expected_a = session.predict(a.circuit()).expect("predicts");
        let expected_b = session.predict(b.circuit()).expect("predicts");

        // No workers: drain one batch by hand so its composition is exact.
        let scheduler = Scheduler::new(
            test_session(),
            &ServeConfig {
                workers: 0,
                max_batch: 8,
                batch_window: Duration::from_millis(1),
                ..ServeConfig::default()
            },
        )
        .expect("valid config");
        let submitted = [&a, &a, &b, &a, &b];
        let receivers: Vec<_> = submitted
            .iter()
            .map(|c| scheduler.submit(Arc::clone(c)).expect("queue open"))
            .collect();
        let jobs = next_batch(&scheduler.shared).expect("jobs queued");
        assert_eq!(jobs.len(), submitted.len());
        execute(&scheduler.shared, jobs);

        for (circuit, receiver) in submitted.iter().zip(receivers) {
            let probs = receiver.recv().expect("executed").expect("predicts");
            let expected = if Arc::ptr_eq(circuit, &a) {
                &expected_a
            } else {
                &expected_b
            };
            assert_eq!(&probs, expected, "deduplicated result must be exact");
        }
        let stats = scheduler.stats();
        assert_eq!(stats.completed, 5);
        assert_eq!(stats.deduplicated, 3); // five requests, two distinct circuits
        assert_eq!(stats.batches, 1);
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        let session = test_session();
        let circuit = chain_circuit(&session, 3);
        // No workers: the queue can only fill.
        let scheduler = Scheduler::new(
            session,
            &ServeConfig {
                workers: 0,
                queue_depth: 2,
                ..ServeConfig::default()
            },
        )
        .expect("valid config");
        let _a = scheduler.submit(Arc::clone(&circuit)).expect("first fits");
        let _b = scheduler.submit(Arc::clone(&circuit)).expect("second fits");
        assert!(matches!(
            scheduler.submit(Arc::clone(&circuit)),
            Err(ServeError::Overloaded { depth: 2 })
        ));
        assert_eq!(scheduler.stats().rejected_overloaded, 1);
        assert_eq!(scheduler.queue_len(), 2);
    }

    #[test]
    fn shutdown_flushes_queued_requests_with_clean_errors() {
        let session = test_session();
        let circuit = chain_circuit(&session, 3);
        let scheduler = Scheduler::new(
            session,
            &ServeConfig {
                workers: 0,
                queue_depth: 8,
                ..ServeConfig::default()
            },
        )
        .expect("valid config");
        let queued: Vec<_> = (0..3)
            .map(|_| scheduler.submit(Arc::clone(&circuit)).expect("queue open"))
            .collect();
        scheduler.shutdown();
        for receiver in queued {
            assert_eq!(
                receiver.recv().expect("response delivered"),
                Err(ServeError::ShuttingDown)
            );
        }
        // Submissions after shutdown are rejected immediately.
        assert!(matches!(
            scheduler.submit(circuit),
            Err(ServeError::ShuttingDown)
        ));
        assert_eq!(scheduler.stats().rejected_shutdown, 4);
        // Idempotent.
        scheduler.shutdown();
    }

    #[test]
    fn scheduler_config_is_validated() {
        assert!(matches!(
            Scheduler::new(
                test_session(),
                &ServeConfig {
                    max_batch: 0,
                    ..ServeConfig::default()
                }
            ),
            Err(ServeError::Config(_))
        ));
        assert!(matches!(
            Scheduler::new(
                test_session(),
                &ServeConfig {
                    queue_depth: 0,
                    ..ServeConfig::default()
                }
            ),
            Err(ServeError::Config(_))
        ));
    }
}
