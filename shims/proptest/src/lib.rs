//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro with `name in strategy` bindings and an optional
//! `#![proptest_config(..)]` header, [`Strategy`] with `prop_map`,
//! [`any`], `prop::collection::vec`, tuple strategies, integer-range
//! strategies, and the `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! seeds: cases are generated from a deterministic per-test seed (derived
//! from the test name), so failures reproduce across runs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Configuration of a property-test block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Creates a configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The random source handed to strategies (deterministic per test).
#[derive(Debug)]
pub struct TestRng {
    rng: SmallRng,
}

impl TestRng {
    /// Creates a generator seeded from the test name.
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.rng.gen()
    }

    fn next_usize(&mut self, range: Range<usize>) -> usize {
        self.rng.gen_range(range)
    }
}

/// A generator of random values for one test argument.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform values of a whole type (`any::<u64>()` style).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types that can be generated uniformly at random.
pub trait Arbitrary: Sized {
    /// Generates one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "cannot sample empty range");
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// Sub-strategies namespace, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// A strategy producing `Vec`s with lengths drawn from `len_range`.
        pub struct VecStrategy<S> {
            element: S,
            len_range: Range<usize>,
        }

        /// Generates vectors of values from `element`, with a random length
        /// in `len_range`.
        pub fn vec<S: Strategy>(element: S, len_range: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len_range }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.next_usize(self.len_range.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Declares property tests: `fn name(arg in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )*
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body Ok(()) })();
                if let Err(message) = outcome {
                    panic!("{} failed at case {case}: {message}", stringify!($name));
                }
            }
        }
    )*};
}
