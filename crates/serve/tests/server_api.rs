//! Integration tests of the TCP front end: wire protocol round trips,
//! caching across requests, error reporting and graceful shutdown.

use deepgate::core::DeepGateConfig;
use deepgate::prelude::*;
use deepgate_serve::{ServeConfig, Server};
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

const FULL_ADDER: &str = "INPUT(a)\nINPUT(b)\nINPUT(cin)\nOUTPUT(sum)\nOUTPUT(cout)\nx = XOR(a, b)\nsum = XOR(x, cin)\ng1 = AND(a, b)\ng2 = AND(x, cin)\ncout = OR(g1, g2)\n";

fn quick_engine() -> Engine {
    Engine::builder()
        .model(DeepGateConfig {
            hidden_dim: 8,
            num_iterations: 2,
            regressor_hidden: 4,
            ..DeepGateConfig::default()
        })
        .build()
        .expect("valid configuration")
}

fn start_server(config: ServeConfig) -> Server {
    Server::start(quick_engine(), config).expect("server binds an ephemeral port")
}

/// A line-oriented test client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("server is listening");
        let reader = BufReader::new(stream.try_clone().expect("clone socket"));
        Client {
            reader,
            writer: stream,
        }
    }

    fn roundtrip(&mut self, request: &str) -> Value {
        self.writer
            .write_all(format!("{request}\n").as_bytes())
            .expect("request written");
        self.writer.flush().expect("request flushed");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("response arrives");
        serde_json::from_str(&line).expect("response is JSON")
    }
}

fn request_of(pairs: &[(&str, Value)]) -> String {
    serde_json::to_string(&Value::Object(
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    ))
    .expect("request serialises")
}

fn field<'a>(value: &'a Value, name: &str) -> &'a Value {
    value
        .as_object()
        .and_then(|o| o.get(name))
        .unwrap_or_else(|| panic!("response lacks `{name}`: {value:?}"))
}

fn probs_of(value: &Value) -> Vec<f32> {
    field(value, "probs")
        .as_array()
        .expect("probs is an array")
        .iter()
        .map(|v| match v {
            Value::Float(f) => *f as f32,
            Value::UInt(u) => *u as f32,
            other => panic!("non-numeric probability {other:?}"),
        })
        .collect()
}

#[test]
fn predict_roundtrips_and_matches_local_inference() {
    let engine = quick_engine();
    let expected = {
        let circuits = engine
            .prepare_unlabelled(&BenchText::new("full_adder", FULL_ADDER))
            .expect("bench parses");
        engine.session().predict(&circuits[0]).expect("predicts")
    };

    let server = start_server(ServeConfig::default());
    let mut client = Client::connect(&server);
    let request = serde_json::to_string(&Value::Object(
        [
            ("id".to_string(), Value::UInt(7)),
            ("bench".to_string(), Value::Str(FULL_ADDER.to_string())),
        ]
        .into_iter()
        .collect(),
    ))
    .expect("request serialises");
    let response = client.roundtrip(&request);
    assert_eq!(field(&response, "id"), &Value::UInt(7));
    let probs = probs_of(&response);
    assert_eq!(probs.len(), expected.len());
    for (got, want) in probs.iter().zip(&expected) {
        assert_eq!(got, want, "server prediction must match local inference");
    }

    // The same circuit again: served from the structural cache.
    let response = client.roundtrip(&request);
    assert_eq!(probs_of(&response), probs);
    let stats = server.stats();
    assert_eq!(stats.cache.hits, 1);
    assert_eq!(stats.cache.misses, 1);
    assert_eq!(stats.scheduler.completed, 2);
    server.shutdown();
}

#[test]
fn structurally_identical_texts_share_one_cache_entry() {
    let server = start_server(ServeConfig::default());
    let mut client = Client::connect(&server);
    let commented = format!("# same circuit, different text\n{FULL_ADDER}");
    for text in [FULL_ADDER, &commented] {
        let request = serde_json::to_string(&Value::Object(
            [
                ("id".to_string(), Value::UInt(1)),
                ("bench".to_string(), Value::Str(text.to_string())),
            ]
            .into_iter()
            .collect(),
        ))
        .expect("request serialises");
        let response = client.roundtrip(&request);
        assert!(field(&response, "probs").as_array().is_some());
    }
    let stats = server.stats();
    // Text differs, structure does not: the fingerprint level hits, so one
    // prepared entry serves both requests.
    assert_eq!(stats.cache.entries, 1);
    assert_eq!(stats.cache.hits, 1);
    assert_eq!(stats.cache.misses, 1);
    server.shutdown();
}

#[test]
fn malformed_and_invalid_requests_get_error_responses() {
    let server = start_server(ServeConfig::default());
    let mut client = Client::connect(&server);

    let response = client.roundtrip("this is not json");
    assert!(matches!(field(&response, "error"), Value::Str(_)));

    let response = client.roundtrip(r#"{"id": 1}"#);
    assert!(matches!(field(&response, "error"), Value::Str(_)));
    assert_eq!(field(&response, "id"), &Value::UInt(1));

    let response = client.roundtrip(r#"{"id": 2, "bench": "y = AND(a, b)\n"}"#);
    let Value::Str(message) = field(&response, "error") else {
        panic!("expected error string");
    };
    assert!(message.contains("bad request"), "got: {message}");

    let response = client.roundtrip(r#"{"id": 3, "op": "frobnicate"}"#);
    assert!(matches!(field(&response, "error"), Value::Str(_)));

    // The connection survives all of that.
    let response = client.roundtrip(r#"{"id": 4, "op": "stats"}"#);
    assert!(field(&response, "stats").as_object().is_some());
    server.shutdown();
}

#[test]
fn stats_verb_reports_counters() {
    let server = start_server(ServeConfig::default());
    let mut client = Client::connect(&server);
    let request = format!(
        r#"{{"id": "s1", "bench": {}}}"#,
        serde_json::to_string(&FULL_ADDER.to_string()).expect("string serialises")
    );
    client.roundtrip(&request);
    let response = client.roundtrip(r#"{"id": "s2", "op": "stats"}"#);
    let stats = field(&response, "stats");
    let scheduler = field(stats, "scheduler");
    assert_eq!(field(scheduler, "completed"), &Value::UInt(1));
    assert_eq!(field(stats, "connections"), &Value::UInt(1));
    server.shutdown();
}

#[test]
fn shutdown_verb_drains_gracefully_under_load() {
    // Several clients fire requests while one of them asks for shutdown:
    // every in-flight request must complete or get a clean error, the
    // drain must answer the shutdown verb, and every thread must join
    // (the test harness would hang otherwise).
    let server = start_server(ServeConfig {
        max_batch: 4,
        batch_window: Duration::from_millis(1),
        workers: 2,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();

    let clients: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connects");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut writer = stream;
                let request = format!(
                    "{}\n",
                    serde_json::to_string(&Value::Object(
                        [
                            ("id".to_string(), Value::UInt(1)),
                            ("bench".to_string(), Value::Str(FULL_ADDER.to_string())),
                        ]
                        .into_iter()
                        .collect(),
                    ))
                    .expect("request serialises")
                );
                let mut answered = 0usize;
                for _ in 0..16 {
                    if writer.write_all(request.as_bytes()).is_err() {
                        break; // server drained mid-run: acceptable
                    }
                    let mut line = String::new();
                    match reader.read_line(&mut line) {
                        Ok(n) if n > 0 => {
                            let response: Value =
                                serde_json::from_str(&line).expect("well-formed response");
                            let object = response.as_object().expect("object response");
                            assert!(
                                object.contains_key("probs") || object.contains_key("error"),
                                "response is neither a result nor a clean error: {line}"
                            );
                            answered += 1;
                        }
                        _ => break, // force-closed during drain: acceptable
                    }
                }
                answered
            })
        })
        .collect();

    // Let the clients make some progress, then drain via the wire verb.
    std::thread::sleep(Duration::from_millis(30));
    let mut shutter = Client::connect(&server);
    let response = shutter.roundtrip(r#"{"id": "bye", "op": "shutdown"}"#);
    assert_eq!(field(&response, "ok"), &Value::Bool(true));

    // wait() returns only after the listener, workers and connection
    // threads have all joined.
    server.wait();

    let answered: usize = clients
        .into_iter()
        .map(|c| c.join().expect("client thread panicked"))
        .sum();
    assert!(answered > 0, "no request completed before the drain");
}

#[test]
fn oversized_request_lines_are_rejected_not_buffered() {
    let server = start_server(ServeConfig::default());
    let stream = TcpStream::connect(server.local_addr()).expect("connects");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    // 9 MiB without a newline: past the 8 MiB request cap.
    let chunk = vec![b'a'; 1024 * 1024];
    for _ in 0..9 {
        if writer.write_all(&chunk).is_err() {
            break; // server may cut the connection mid-stream: also fine
        }
    }
    let _ = writer.flush();
    let mut line = String::new();
    if reader.read_line(&mut line).is_ok() && !line.is_empty() {
        assert!(line.contains("error"), "expected an error, got: {line}");
    }
    // Either way the connection is closed and the server stays healthy.
    let mut probe = Client::connect(&server);
    let response = probe.roundtrip(r#"{"id": 1, "op": "stats"}"#);
    assert!(field(&response, "stats").as_object().is_some());
    server.shutdown();
}

#[test]
fn oversized_line_boundary_cuts_one_connection_while_others_serve() {
    // A small, explicit cap so the boundary is cheap to probe.
    let cap: usize = 4096;
    let server = start_server(ServeConfig {
        max_request_bytes: cap as u64,
        ..ServeConfig::default()
    });
    let mut bystander = Client::connect(&server);

    // Exactly at the cap (payload + newline == cap bytes): the line is
    // accepted as framing and answered — here with an invalid-JSON error,
    // which is a *response*, not a cut.
    let mut client = Client::connect(&server);
    let fitting = format!("{}\n", "x".repeat(cap - 1));
    client.writer.write_all(fitting.as_bytes()).expect("writes");
    let mut line = String::new();
    client
        .reader
        .read_line(&mut line)
        .expect("response arrives");
    assert!(line.contains("invalid JSON"), "got: {line}");
    // The connection survived the at-boundary line.
    let response = client.roundtrip(r#"{"id": 1, "op": "stats"}"#);
    assert!(field(&response, "stats").as_object().is_some());

    // One byte past the cap: the server reports the overflow and cuts this
    // connection — there is no way to resync a stream mid-line.
    let over = format!("{}\n", "x".repeat(cap));
    client.writer.write_all(over.as_bytes()).expect("writes");
    let mut line = String::new();
    client
        .reader
        .read_line(&mut line)
        .expect("error line arrives");
    assert!(line.contains("exceeds"), "got: {line}");
    let mut rest = String::new();
    assert_eq!(
        client.reader.read_line(&mut rest).expect("socket readable"),
        0,
        "connection must be closed after the overflow"
    );

    // The bystander connection kept serving throughout.
    let response = bystander.roundtrip(&request_of(&[
        ("id", Value::UInt(2)),
        ("bench", Value::Str(FULL_ADDER.into())),
    ]));
    assert!(field(&response, "probs").as_array().is_some());
    server.shutdown();
}

#[test]
fn mid_request_disconnect_leaves_server_healthy() {
    let server = start_server(ServeConfig::default());
    let mut bystander = Client::connect(&server);
    {
        // Half a request, then vanish.
        let mut client = Client::connect(&server);
        client
            .writer
            .write_all(br#"{"id": 1, "bench": "INPUT(a)"#)
            .expect("writes");
        client.writer.flush().expect("flushes");
    } // dropped: the socket closes mid-line
      // The server notices the EOF and retires the connection thread; the
      // bystander keeps serving. Poll the close counter so the assertion is
      // not racing the reaper.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let response = bystander.roundtrip(r#"{"op": "metrics"}"#);
        let closed = field(
            field(field(&response, "metrics"), "counters"),
            "connections_closed_total",
        );
        if matches!(closed, Value::UInt(n) if *n >= 1) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "disconnected client was never retired: {response:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let response = bystander.roundtrip(&request_of(&[
        ("id", Value::UInt(2)),
        ("bench", Value::Str(FULL_ADDER.into())),
    ]));
    assert!(field(&response, "probs").as_array().is_some());
    server.shutdown();
}

#[test]
fn slow_loris_partial_lines_are_reaped_by_the_line_timeout() {
    let server = start_server(ServeConfig {
        line_timeout: Some(Duration::from_millis(100)),
        idle_timeout: Some(Duration::from_secs(30)),
        ..ServeConfig::default()
    });
    let mut bystander = Client::connect(&server);

    // Start a request line and stall: the classic slow-loris shape.
    let client = TcpStream::connect(server.local_addr()).expect("connects");
    let mut reader = BufReader::new(client.try_clone().expect("clone"));
    let mut writer = client;
    writer.write_all(br#"{"id": 1, "ben"#).expect("writes");
    writer.flush().expect("flushes");
    reader
        .get_ref()
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("client read timeout");
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .expect("server cuts us off before the client timeout");
    assert!(line.contains("timed out"), "got: {line}");
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).expect("readable"), 0);

    // The cut is visible in telemetry, and everyone else is unaffected.
    let response = bystander.roundtrip(r#"{"op": "stats"}"#);
    let reaped = field(field(&response, "stats"), "connections_reaped");
    assert!(matches!(reaped, Value::UInt(n) if *n >= 1), "{response:?}");
    let response = bystander.roundtrip(&request_of(&[
        ("id", Value::UInt(2)),
        ("bench", Value::Str(FULL_ADDER.into())),
    ]));
    assert!(field(&response, "probs").as_array().is_some());
    server.shutdown();
}

#[test]
fn idle_connections_are_reaped() {
    let server = start_server(ServeConfig {
        idle_timeout: Some(Duration::from_millis(100)),
        line_timeout: Some(Duration::from_secs(30)),
        ..ServeConfig::default()
    });
    let idler = TcpStream::connect(server.local_addr()).expect("connects");
    idler
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("client read timeout");
    let mut reader = BufReader::new(idler);
    let mut line = String::new();
    // An idle connection is closed silently — no traffic arrived, so no
    // error line is owed — well before the client-side guard timeout.
    assert_eq!(
        reader
            .read_line(&mut line)
            .expect("server closes before the client timeout"),
        0,
        "expected a silent close, got: {line}"
    );
    // A fresh client (connected after the reap, so it cannot itself idle
    // out mid-assertion) sees the reap in telemetry.
    let mut bystander = Client::connect(&server);
    let response = bystander.roundtrip(r#"{"op": "stats"}"#);
    let reaped = field(field(&response, "stats"), "connections_reaped");
    assert!(matches!(reaped, Value::UInt(n) if *n >= 1), "{response:?}");
    server.shutdown();
}

#[test]
fn a_client_that_stops_reading_is_cut_by_the_write_timeout() {
    // A response stream big enough to overrun socket buffering: tens of
    // thousands of pipelined `metrics_text` requests — a few hundred KB of
    // requests that fan out into ~100 MB of multi-KB responses nobody
    // reads. The responses pile up until the server's write blocks, trips
    // `write_timeout` and the connection is cut — without stalling anyone
    // else.
    let server = start_server(ServeConfig {
        write_timeout: Some(Duration::from_millis(250)),
        workers: 2,
        ..ServeConfig::default()
    });
    let mut bystander = Client::connect(&server);

    let deaf = TcpStream::connect(server.local_addr()).expect("connects");
    // Guard the test itself: once the server cuts us the socket dies
    // promptly (FIN/RST), but never block the test thread indefinitely.
    deaf.set_write_timeout(Some(Duration::from_secs(5)))
        .expect("client write timeout");
    let mut writer = deaf.try_clone().expect("clone");
    let flood: String = "{\"op\": \"metrics_text\"}\n".repeat(20_000);
    // The server may cut us mid-stream — a write error here is the test
    // working, not failing.
    let _ = writer.write_all(flood.as_bytes());
    let _ = writer.flush();

    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let response = bystander.roundtrip(r#"{"op": "stats"}"#);
        let timeouts = field(field(&response, "stats"), "write_timeouts");
        if matches!(timeouts, Value::UInt(n) if *n >= 1) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "write timeout never tripped: {response:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    // The bystander was never blocked behind the deaf client.
    let response = bystander.roundtrip(&request_of(&[
        ("id", Value::UInt(2)),
        ("bench", Value::Str(FULL_ADDER.into())),
    ]));
    assert!(field(&response, "probs").as_array().is_some());
    drop(deaf);
    server.shutdown();
}

#[test]
fn a_one_byte_at_a_time_reader_drains_without_tripping_the_write_deadline() {
    // The opposite of the deaf client: a reader that accepts its responses
    // one byte at a time. It drives the write-buffer state machine through
    // many partial flushes, but every flush makes *progress*, so the write
    // deadline keeps resetting and the connection must survive until the
    // full backlog drains — slow is not dead.
    let server = start_server(ServeConfig {
        write_timeout: Some(Duration::from_millis(500)),
        workers: 2,
        ..ServeConfig::default()
    });
    let stream = TcpStream::connect(server.local_addr()).expect("connects");
    let mut writer = stream.try_clone().expect("clone");
    // Enough pipelined multi-KB responses to overrun socket buffering, so
    // the server actually holds a blocked write buffer while we trickle.
    const REQUESTS: usize = 2_000;
    let flood: String = "{\"op\": \"metrics_text\"}\n".repeat(REQUESTS);
    writer
        .write_all(flood.as_bytes())
        .expect("requests written");
    writer.flush().expect("requests flushed");

    let mut reader = stream.try_clone().expect("clone");
    reader
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("client read timeout");
    // The first response arrives strictly byte-by-byte — maximal partial
    // progress — then the rest drains in small chunks, counting response
    // lines as they complete.
    let mut lines = 0usize;
    let mut byte = [0u8; 1];
    loop {
        match std::io::Read::read(&mut reader, &mut byte) {
            Ok(0) => panic!("server cut a reader that was making progress"),
            Ok(_) => {
                if byte[0] == b'\n' {
                    lines += 1;
                    break;
                }
            }
            Err(e) => panic!("byte-wise read failed: {e}"),
        }
    }
    let mut chunk = [0u8; 4096];
    while lines < REQUESTS {
        match std::io::Read::read(&mut reader, &mut chunk) {
            Ok(0) => panic!("connection cut after {lines}/{REQUESTS} responses"),
            Ok(n) => lines += chunk[..n].iter().filter(|&&b| b == b'\n').count(),
            Err(e) => panic!("read failed after {lines}/{REQUESTS} responses: {e}"),
        }
    }
    assert_eq!(lines, REQUESTS, "exactly one response line per request");
    drop(reader);
    drop(writer);

    let stats = server.stats();
    assert_eq!(
        stats.write_timeouts, 0,
        "a progressing reader must never count as a write timeout"
    );
    server.shutdown();
}

#[test]
fn connection_cap_refuses_the_overflow_client() {
    let server = start_server(ServeConfig {
        max_connections: 2,
        ..ServeConfig::default()
    });
    // Two clients occupy the fleet (a roundtrip each proves they are live).
    let mut first = Client::connect(&server);
    let mut second = Client::connect(&server);
    assert!(field(&first.roundtrip(r#"{"op": "stats"}"#), "stats")
        .as_object()
        .is_some());
    assert!(field(&second.roundtrip(r#"{"op": "stats"}"#), "stats")
        .as_object()
        .is_some());
    // The third is refused with one error line, then closed.
    let overflow = TcpStream::connect(server.local_addr()).expect("connects");
    overflow
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("client read timeout");
    let mut reader = BufReader::new(overflow);
    let mut line = String::new();
    reader.read_line(&mut line).expect("rejection line arrives");
    assert!(line.contains("connection capacity"), "got: {line}");
    let response = first.roundtrip(r#"{"op": "stats"}"#);
    let rejected = field(field(&response, "stats"), "connections_rejected");
    assert!(
        matches!(rejected, Value::UInt(n) if *n >= 1),
        "{response:?}"
    );
    server.shutdown();
}

#[test]
fn deadlines_flow_through_the_wire() {
    let server = start_server(ServeConfig::default());
    let mut client = Client::connect(&server);

    // A spent budget (`deadline_ms: 0`) deterministically sheds: the
    // request is expired the moment batch assembly sees it.
    let response = client.roundtrip(&request_of(&[
        ("id", Value::UInt(1)),
        ("bench", Value::Str(FULL_ADDER.into())),
        ("deadline_ms", Value::UInt(0)),
    ]));
    let Value::Str(message) = field(&response, "error") else {
        panic!("expected shed error, got {response:?}");
    };
    assert!(message.contains("deadline exceeded"), "got: {message}");

    // A generous budget predicts normally.
    let response = client.roundtrip(&request_of(&[
        ("id", Value::UInt(2)),
        ("bench", Value::Str(FULL_ADDER.into())),
        ("deadline_ms", Value::UInt(60_000)),
    ]));
    assert!(field(&response, "probs").as_array().is_some());

    // Shed and completion are both visible in one stats snapshot.
    let response = client.roundtrip(r#"{"op": "stats"}"#);
    let scheduler = field(field(&response, "stats"), "scheduler");
    assert_eq!(field(scheduler, "deadline_shed"), &Value::UInt(1));
    assert_eq!(field(scheduler, "completed"), &Value::UInt(1));

    // Malformed budgets are rejected before queueing.
    let response = client.roundtrip(&request_of(&[
        ("id", Value::UInt(3)),
        ("bench", Value::Str(FULL_ADDER.into())),
        ("deadline_ms", Value::Str("soon".into())),
    ]));
    let Value::Str(message) = field(&response, "error") else {
        panic!("expected type error, got {response:?}");
    };
    assert!(message.contains("non-negative integer"), "got: {message}");
    server.shutdown();
}

#[test]
fn server_side_default_deadline_caps_every_request() {
    // `default_deadline: 0` is an absurd cap no request can meet — which
    // makes the server-side folding observable without timing games.
    let server = start_server(ServeConfig {
        default_deadline: Some(Duration::ZERO),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(&server);
    // No client deadline at all: the cap alone sheds the request.
    let response = client.roundtrip(&request_of(&[
        ("id", Value::UInt(1)),
        ("bench", Value::Str(FULL_ADDER.into())),
    ]));
    let Value::Str(message) = field(&response, "error") else {
        panic!("expected shed error, got {response:?}");
    };
    assert!(message.contains("deadline exceeded"), "got: {message}");
    // A generous client deadline cannot out-vote the tighter server cap.
    let response = client.roundtrip(&request_of(&[
        ("id", Value::UInt(2)),
        ("bench", Value::Str(FULL_ADDER.into())),
        ("deadline_ms", Value::UInt(60_000)),
    ]));
    assert!(
        matches!(field(&response, "error"), Value::Str(m) if m.contains("deadline exceeded")),
        "{response:?}"
    );
    assert_eq!(server.stats().scheduler.deadline_shed, 2);
    server.shutdown();
}

#[test]
fn aiger_payloads_flow_through_the_wire_in_both_latch_modes() {
    use deepgate::aig::aiger::{random_aig, write_aag, write_aig};

    let aig = random_aig(7, 3, 2, 12);
    let ascii = write_aag(&aig);
    let binary = write_aig(&aig).expect("canonical AIG serialises");
    let server = start_server(ServeConfig::default());
    let mut client = Client::connect(&server);

    // AIGER-ASCII inline, default (cut) latch policy.
    let ascii_request = request_of(&[("id", Value::UInt(1)), ("aiger", Value::Str(ascii.clone()))]);
    let cut_probs = probs_of(&client.roundtrip(&ascii_request));
    assert!(!cut_probs.is_empty());
    assert!(cut_probs.iter().all(|p| (0.0..=1.0).contains(p)));

    // The same circuit as base64-encoded *binary* AIGER: different bytes,
    // same structure — the fingerprint level of the cache shares the one
    // prepared entry, and predictions are bit-identical.
    let binary_request = request_of(&[
        ("id", Value::UInt(2)),
        (
            "aiger_b64",
            Value::Str(deepgate_serve::b64::encode(&binary)),
        ),
        ("latch", Value::Str("cut".to_string())),
    ]);
    let bin_probs = probs_of(&client.roundtrip(&binary_request));
    assert_eq!(bin_probs, cut_probs);
    assert_eq!(server.stats().cache.entries, 1);

    // Unrolling time-frame-expands the latch transition logic (with frame-0
    // reset constants folded in), yielding a structurally different circuit
    // from the cut view of the same bytes. The latch policy is part of the
    // cache key: this is a new prepared entry, not a hit.
    let unrolled_request = request_of(&[
        ("id", Value::UInt(3)),
        (
            "aiger_b64",
            Value::Str(deepgate_serve::b64::encode(&binary)),
        ),
        ("latch", Value::Str("unroll:3".to_string())),
    ]);
    let unrolled_probs = probs_of(&client.roundtrip(&unrolled_request));
    assert!(!unrolled_probs.is_empty());
    assert_ne!(unrolled_probs, cut_probs);
    assert_eq!(server.stats().cache.entries, 2);
    server.shutdown();
}

#[test]
fn malformed_aiger_requests_get_clean_errors() {
    let server = start_server(ServeConfig::default());
    let mut client = Client::connect(&server);
    let valid_aag = "aag 1 1 0 1 0\n2\n2\n";

    let cases: Vec<(String, &str)> = vec![
        (
            request_of(&[("aiger_b64", Value::Str("!!!not-base64!!!".into()))]),
            "base64",
        ),
        (
            // Valid base64 wrapping a lying binary header (5 ANDs, no data).
            request_of(&[(
                "aiger_b64",
                Value::Str(deepgate_serve::b64::encode(b"aig 5 0 0 0 5\n")),
            )]),
            "bad request",
        ),
        (
            request_of(&[("aiger", Value::Str("aag 2 1 0 1 1\n2\n4\n4 3 5\n".into()))]),
            "bad request",
        ),
        (
            // Two payload fields at once.
            request_of(&[
                ("bench", Value::Str(FULL_ADDER.into())),
                ("aiger", Value::Str(valid_aag.into())),
            ]),
            "exactly one",
        ),
        (
            // `latch` is an AIGER concept.
            request_of(&[
                ("bench", Value::Str(FULL_ADDER.into())),
                ("latch", Value::Str("cut".into())),
            ]),
            "latch",
        ),
        (
            request_of(&[
                ("aiger", Value::Str(valid_aag.into())),
                ("latch", Value::Str("unroll:0".into())),
            ]),
            "frame",
        ),
        (
            request_of(&[
                ("aiger", Value::Str(valid_aag.into())),
                ("latch", Value::Str("frobnicate".into())),
            ]),
            "latch policy",
        ),
    ];
    for (request, needle) in cases {
        let response = client.roundtrip(&request);
        let Value::Str(message) = field(&response, "error") else {
            panic!("expected error string for {request}, got {response:?}");
        };
        assert!(
            message.contains(needle),
            "error for {request} should mention `{needle}`, got: {message}"
        );
    }

    // The connection and server survive every rejected request.
    let response = client.roundtrip(&request_of(&[("aiger", Value::Str(valid_aag.into()))]));
    assert!(field(&response, "probs").as_array().is_some());
    server.shutdown();
}

#[test]
fn server_rejects_workerless_config() {
    assert!(Server::start(
        quick_engine(),
        ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        },
    )
    .is_err());
}
