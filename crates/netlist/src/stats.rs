//! Structural statistics of netlists.
//!
//! [`NetlistStats`] captures the quantities reported in Table I of the
//! DeepGate paper (node count, logic depth) plus a gate-kind histogram and
//! fan-out statistics that the dataset generators use to match suite
//! characteristics.

use crate::{GateKind, Netlist};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary statistics of a [`Netlist`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetlistStats {
    /// Design name.
    pub name: String,
    /// Total node count (inputs + constants + gates).
    pub num_nodes: usize,
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of primary outputs.
    pub num_outputs: usize,
    /// Number of logic gates.
    pub num_gates: usize,
    /// Circuit depth (maximum logic level).
    pub depth: usize,
    /// Histogram of gate kinds indexed by [`GateKind::one_hot_index`].
    pub kind_histogram: Vec<usize>,
    /// Maximum fan-out over all nodes.
    pub max_fanout: usize,
    /// Average fan-out over all nodes with at least one fan-out.
    pub mean_fanout: f64,
    /// Number of nodes with fan-out ≥ 2 (candidate reconvergence sources).
    pub num_fanout_nodes: usize,
}

impl NetlistStats {
    /// Computes statistics for a netlist.
    pub fn of(netlist: &Netlist) -> Self {
        let levels = netlist.levels();
        let fanouts = netlist.fanout_counts();
        let hist = crate::graph::kind_histogram(netlist);
        let driven: Vec<usize> = fanouts.iter().copied().filter(|&c| c > 0).collect();
        let mean_fanout = if driven.is_empty() {
            0.0
        } else {
            driven.iter().sum::<usize>() as f64 / driven.len() as f64
        };
        NetlistStats {
            name: netlist.name().to_string(),
            num_nodes: netlist.len(),
            num_inputs: netlist.num_inputs(),
            num_outputs: netlist.num_outputs(),
            num_gates: netlist.num_gates(),
            depth: levels.max_level,
            kind_histogram: hist.to_vec(),
            max_fanout: fanouts.iter().copied().max().unwrap_or(0),
            mean_fanout,
            num_fanout_nodes: fanouts.iter().filter(|&&c| c >= 2).count(),
        }
    }

    /// Number of gates of a specific kind.
    pub fn count_of(&self, kind: GateKind) -> usize {
        self.kind_histogram[kind.one_hot_index()]
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} nodes, {} PIs, {} POs, {} gates, depth {}, max fan-out {}",
            self.name,
            self.num_nodes,
            self.num_inputs,
            self.num_outputs,
            self.num_gates,
            self.depth,
            self.max_fanout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    #[test]
    fn stats_of_small_circuit() {
        let mut n = Netlist::new("s");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g1 = n.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = n.add_gate(GateKind::Not, &[g1]).unwrap();
        let g3 = n.add_gate(GateKind::Or, &[g1, g2]).unwrap();
        n.mark_output(g3, "y");
        let stats = n.stats();
        assert_eq!(stats.num_nodes, 5);
        assert_eq!(stats.num_gates, 3);
        assert_eq!(stats.depth, 3);
        assert_eq!(stats.count_of(GateKind::And), 1);
        assert_eq!(stats.count_of(GateKind::Input), 2);
        assert_eq!(stats.max_fanout, 2); // g1 feeds g2 and g3
        assert_eq!(stats.num_fanout_nodes, 1);
        assert!(stats.to_string().contains("5 nodes"));
    }

    #[test]
    fn stats_of_empty_netlist() {
        let n = Netlist::new("empty");
        let stats = n.stats();
        assert_eq!(stats.num_nodes, 0);
        assert_eq!(stats.mean_fanout, 0.0);
        assert_eq!(stats.max_fanout, 0);
    }
}
