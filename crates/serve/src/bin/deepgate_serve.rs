//! `deepgate-serve` — serve a DeepGate checkpoint over TCP.
//!
//! ```bash
//! deepgate-serve --checkpoint model.json --addr 127.0.0.1:7878 \
//!     --max-batch 16 --batch-window-ms 2 --queue-depth 1024
//! ```
//!
//! Without `--checkpoint` a freshly initialised (untrained) model is served —
//! useful for protocol smoke tests and load experiments, since inference
//! cost does not depend on the weight values.
//!
//! The process runs until a client sends the `{"op":"shutdown"}` verb, then
//! drains gracefully and exits.

use deepgate::core::DeepGateConfig;
use deepgate::Engine;
use deepgate_serve::{ServeConfig, Server};
use std::time::Duration;

const USAGE: &str = "\
usage: deepgate-serve [options]
  --checkpoint <path>    checkpoint written by Engine::save_checkpoint
                         (default: fresh untrained model)
  --addr <host:port>     listen address (default 127.0.0.1:7878, port 0 = ephemeral)
  --max-batch <n>        requests fused per batch (default 16)
  --batch-window-ms <n>  batch fill window in milliseconds (default 2)
  --queue-depth <n>      bounded queue depth (default 1024)
  --workers <n>          batching worker threads (default: CPU count)
  --cache <n>            structural cache capacity (default 256)
  --slow-ms <n>          log predict requests slower than n milliseconds,
                         naming the dominant stage (0 logs every request;
                         default: disabled)
  --default-deadline-ms <n>
                         server-side budget applied to every predict request;
                         the tighter of this and the client's `deadline_ms`
                         wins (0 = disabled; default: disabled)
  --idle-timeout-ms <n>  reap connections idle between requests for n ms
                         (0 = never; default 120000)
  --line-timeout-ms <n>  cut connections that stall mid-request-line for n ms
                         (0 = never; default 30000)
  --write-timeout-ms <n> cut connections whose responses stall in the socket
                         for n ms (0 = never; default 30000)
  --max-connections <n>  refuse connections beyond n concurrent clients
                         (0 = unlimited; default 1024)
  --max-request-bytes <n>
                         reject request lines longer than n bytes
                         (default 8388608)
  --poller <backend>     event-loop readiness backend: auto | epoll | poll
                         (default auto: epoll on Linux, poll elsewhere)
  --quantize <mode>      inference scoring mode: f32 (exact, default) | int8
                         (quantized weights, rank-order-preserving)
  --help                 print this help";

fn fail(message: &str) -> ! {
    eprintln!("deepgate-serve: {message}\n{USAGE}");
    std::process::exit(2)
}

fn main() {
    let mut checkpoint: Option<String> = None;
    let mut config = ServeConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServeConfig::default()
    };

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--checkpoint" => checkpoint = Some(value("--checkpoint")),
            "--addr" => config.addr = value("--addr"),
            "--max-batch" => config.max_batch = parse(&value("--max-batch"), "--max-batch"),
            "--batch-window-ms" => {
                config.batch_window = Duration::from_millis(parse(
                    &value("--batch-window-ms"),
                    "--batch-window-ms",
                ) as u64)
            }
            "--queue-depth" => config.queue_depth = parse(&value("--queue-depth"), "--queue-depth"),
            "--workers" => config.workers = parse(&value("--workers"), "--workers"),
            "--cache" => config.cache_capacity = parse(&value("--cache"), "--cache"),
            "--slow-ms" => {
                config.slow_request_threshold =
                    Some(Duration::from_millis(
                        parse(&value("--slow-ms"), "--slow-ms") as u64,
                    ))
            }
            "--default-deadline-ms" => {
                config.default_deadline = optional_ms(parse(
                    &value("--default-deadline-ms"),
                    "--default-deadline-ms",
                ))
            }
            "--idle-timeout-ms" => {
                config.idle_timeout =
                    optional_ms(parse(&value("--idle-timeout-ms"), "--idle-timeout-ms"))
            }
            "--line-timeout-ms" => {
                config.line_timeout =
                    optional_ms(parse(&value("--line-timeout-ms"), "--line-timeout-ms"))
            }
            "--write-timeout-ms" => {
                config.write_timeout =
                    optional_ms(parse(&value("--write-timeout-ms"), "--write-timeout-ms"))
            }
            "--max-connections" => {
                config.max_connections = parse(&value("--max-connections"), "--max-connections")
            }
            "--max-request-bytes" => {
                config.max_request_bytes =
                    parse(&value("--max-request-bytes"), "--max-request-bytes") as u64
            }
            "--poller" => {
                let backend = value("--poller");
                config.poller = backend
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("--poller: {e}")))
            }
            "--quantize" => {
                let mode = value("--quantize");
                config.quantize = mode
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("--quantize: {e}")))
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown flag `{other}`")),
        }
    }

    let engine = match &checkpoint {
        Some(path) => Engine::from_checkpoint_file(path)
            .unwrap_or_else(|e| fail(&format!("loading checkpoint `{path}`: {e}"))),
        None => {
            eprintln!("[deepgate-serve] no --checkpoint: serving a fresh untrained model");
            Engine::builder()
                .model(DeepGateConfig {
                    hidden_dim: 32,
                    num_iterations: 6,
                    ..DeepGateConfig::default()
                })
                .build()
                .unwrap_or_else(|e| fail(&format!("building default model: {e}")))
        }
    };

    let server = Server::start(engine, config.clone())
        .unwrap_or_else(|e| fail(&format!("starting server: {e}")));
    eprintln!(
        "[deepgate-serve] listening on {} via {} event loop (max_batch={}, batch_window={:?}, queue_depth={}, workers={}, cache={}, quantize={})",
        server.local_addr(),
        server.poller_backend(),
        config.max_batch,
        config.batch_window,
        config.queue_depth,
        config.workers,
        config.cache_capacity,
        config.quantize,
    );
    eprintln!(
        "[deepgate-serve] resilience: default_deadline={:?}, idle_timeout={:?}, line_timeout={:?}, write_timeout={:?}, max_connections={}, max_request_bytes={}",
        config.default_deadline,
        config.idle_timeout,
        config.line_timeout,
        config.write_timeout,
        config.max_connections,
        config.max_request_bytes,
    );
    server.wait();
    let stats = server.stats();
    eprintln!(
        "[deepgate-serve] drained: {} completed, {} batches, cache {}/{} hits/misses",
        stats.scheduler.completed, stats.scheduler.batches, stats.cache.hits, stats.cache.misses
    );
}

fn parse(text: &str, flag: &str) -> usize {
    text.parse()
        .unwrap_or_else(|_| fail(&format!("{flag} expects an unsigned integer, got `{text}`")))
}

/// The `0 = disabled` convention for millisecond flags.
fn optional_ms(ms: usize) -> Option<Duration> {
    (ms > 0).then(|| Duration::from_millis(ms as u64))
}
