use serde::{Deserialize, Serialize};
use std::fmt;

/// A literal: a reference to an AIG node together with a complement bit.
///
/// The encoding follows the AIGER convention: `2 * node_index + complement`.
/// Node 0 is the constant-false node, so [`AigLit::FALSE`] is literal `0` and
/// [`AigLit::TRUE`] is literal `1`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct AigLit(u32);

impl AigLit {
    /// The constant-false literal (node 0, not complemented).
    pub const FALSE: AigLit = AigLit(0);
    /// The constant-true literal (node 0, complemented).
    pub const TRUE: AigLit = AigLit(1);

    /// Creates a literal from a node index and a complement flag.
    pub fn new(node: usize, complement: bool) -> Self {
        AigLit(((node as u32) << 1) | complement as u32)
    }

    /// Creates a positive (non-complemented) literal for a node.
    pub fn positive(node: usize) -> Self {
        AigLit::new(node, false)
    }

    /// The index of the referenced node.
    pub fn node(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether the literal is complemented.
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// The same literal with the complement bit flipped.
    #[must_use]
    pub fn complement(self) -> Self {
        AigLit(self.0 ^ 1)
    }

    /// The same literal with the complement bit set to `value`.
    #[must_use]
    pub fn with_complement(self, value: bool) -> Self {
        AigLit((self.0 & !1) | value as u32)
    }

    /// The raw AIGER literal value (`2 * node + complement`).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Builds a literal from a raw AIGER value.
    pub fn from_raw(raw: u32) -> Self {
        AigLit(raw)
    }

    /// Returns `true` if this literal refers to the constant node.
    pub fn is_constant(self) -> bool {
        self.node() == 0
    }
}

impl fmt::Display for AigLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complemented() {
            write!(f, "!{}", self.node())
        } else {
            write!(f, "{}", self.node())
        }
    }
}

impl std::ops::Not for AigLit {
    type Output = AigLit;

    fn not(self) -> AigLit {
        self.complement()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(AigLit::FALSE.node(), 0);
        assert!(!AigLit::FALSE.is_complemented());
        assert_eq!(AigLit::TRUE.node(), 0);
        assert!(AigLit::TRUE.is_complemented());
        assert!(AigLit::TRUE.is_constant());
        assert_eq!(!AigLit::FALSE, AigLit::TRUE);
    }

    #[test]
    fn encode_decode() {
        let l = AigLit::new(17, true);
        assert_eq!(l.node(), 17);
        assert!(l.is_complemented());
        assert_eq!(l.raw(), 35);
        assert_eq!(AigLit::from_raw(35), l);
        assert_eq!(l.complement().complement(), l);
        assert_eq!(l.with_complement(false), AigLit::positive(17));
        assert_eq!(AigLit::positive(17).to_string(), "17");
        assert_eq!(l.to_string(), "!17");
    }

    #[test]
    fn default_is_false() {
        assert_eq!(AigLit::default(), AigLit::FALSE);
    }
}
