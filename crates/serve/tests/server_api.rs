//! Integration tests of the TCP front end: wire protocol round trips,
//! caching across requests, error reporting and graceful shutdown.

use deepgate::core::DeepGateConfig;
use deepgate::prelude::*;
use deepgate_serve::{ServeConfig, Server};
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

const FULL_ADDER: &str = "INPUT(a)\nINPUT(b)\nINPUT(cin)\nOUTPUT(sum)\nOUTPUT(cout)\nx = XOR(a, b)\nsum = XOR(x, cin)\ng1 = AND(a, b)\ng2 = AND(x, cin)\ncout = OR(g1, g2)\n";

fn quick_engine() -> Engine {
    Engine::builder()
        .model(DeepGateConfig {
            hidden_dim: 8,
            num_iterations: 2,
            regressor_hidden: 4,
            ..DeepGateConfig::default()
        })
        .build()
        .expect("valid configuration")
}

fn start_server(config: ServeConfig) -> Server {
    Server::start(quick_engine(), config).expect("server binds an ephemeral port")
}

/// A line-oriented test client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("server is listening");
        let reader = BufReader::new(stream.try_clone().expect("clone socket"));
        Client {
            reader,
            writer: stream,
        }
    }

    fn roundtrip(&mut self, request: &str) -> Value {
        self.writer
            .write_all(format!("{request}\n").as_bytes())
            .expect("request written");
        self.writer.flush().expect("request flushed");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("response arrives");
        serde_json::from_str(&line).expect("response is JSON")
    }
}

fn request_of(pairs: &[(&str, Value)]) -> String {
    serde_json::to_string(&Value::Object(
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    ))
    .expect("request serialises")
}

fn field<'a>(value: &'a Value, name: &str) -> &'a Value {
    value
        .as_object()
        .and_then(|o| o.get(name))
        .unwrap_or_else(|| panic!("response lacks `{name}`: {value:?}"))
}

fn probs_of(value: &Value) -> Vec<f32> {
    field(value, "probs")
        .as_array()
        .expect("probs is an array")
        .iter()
        .map(|v| match v {
            Value::Float(f) => *f as f32,
            Value::UInt(u) => *u as f32,
            other => panic!("non-numeric probability {other:?}"),
        })
        .collect()
}

#[test]
fn predict_roundtrips_and_matches_local_inference() {
    let engine = quick_engine();
    let expected = {
        let circuits = engine
            .prepare_unlabelled(&BenchText::new("full_adder", FULL_ADDER))
            .expect("bench parses");
        engine.session().predict(&circuits[0]).expect("predicts")
    };

    let server = start_server(ServeConfig::default());
    let mut client = Client::connect(&server);
    let request = serde_json::to_string(&Value::Object(
        [
            ("id".to_string(), Value::UInt(7)),
            ("bench".to_string(), Value::Str(FULL_ADDER.to_string())),
        ]
        .into_iter()
        .collect(),
    ))
    .expect("request serialises");
    let response = client.roundtrip(&request);
    assert_eq!(field(&response, "id"), &Value::UInt(7));
    let probs = probs_of(&response);
    assert_eq!(probs.len(), expected.len());
    for (got, want) in probs.iter().zip(&expected) {
        assert_eq!(got, want, "server prediction must match local inference");
    }

    // The same circuit again: served from the structural cache.
    let response = client.roundtrip(&request);
    assert_eq!(probs_of(&response), probs);
    let stats = server.stats();
    assert_eq!(stats.cache.hits, 1);
    assert_eq!(stats.cache.misses, 1);
    assert_eq!(stats.scheduler.completed, 2);
    server.shutdown();
}

#[test]
fn structurally_identical_texts_share_one_cache_entry() {
    let server = start_server(ServeConfig::default());
    let mut client = Client::connect(&server);
    let commented = format!("# same circuit, different text\n{FULL_ADDER}");
    for text in [FULL_ADDER, &commented] {
        let request = serde_json::to_string(&Value::Object(
            [
                ("id".to_string(), Value::UInt(1)),
                ("bench".to_string(), Value::Str(text.to_string())),
            ]
            .into_iter()
            .collect(),
        ))
        .expect("request serialises");
        let response = client.roundtrip(&request);
        assert!(field(&response, "probs").as_array().is_some());
    }
    let stats = server.stats();
    // Text differs, structure does not: the fingerprint level hits, so one
    // prepared entry serves both requests.
    assert_eq!(stats.cache.entries, 1);
    assert_eq!(stats.cache.hits, 1);
    assert_eq!(stats.cache.misses, 1);
    server.shutdown();
}

#[test]
fn malformed_and_invalid_requests_get_error_responses() {
    let server = start_server(ServeConfig::default());
    let mut client = Client::connect(&server);

    let response = client.roundtrip("this is not json");
    assert!(matches!(field(&response, "error"), Value::Str(_)));

    let response = client.roundtrip(r#"{"id": 1}"#);
    assert!(matches!(field(&response, "error"), Value::Str(_)));
    assert_eq!(field(&response, "id"), &Value::UInt(1));

    let response = client.roundtrip(r#"{"id": 2, "bench": "y = AND(a, b)\n"}"#);
    let Value::Str(message) = field(&response, "error") else {
        panic!("expected error string");
    };
    assert!(message.contains("bad request"), "got: {message}");

    let response = client.roundtrip(r#"{"id": 3, "op": "frobnicate"}"#);
    assert!(matches!(field(&response, "error"), Value::Str(_)));

    // The connection survives all of that.
    let response = client.roundtrip(r#"{"id": 4, "op": "stats"}"#);
    assert!(field(&response, "stats").as_object().is_some());
    server.shutdown();
}

#[test]
fn stats_verb_reports_counters() {
    let server = start_server(ServeConfig::default());
    let mut client = Client::connect(&server);
    let request = format!(
        r#"{{"id": "s1", "bench": {}}}"#,
        serde_json::to_string(&FULL_ADDER.to_string()).expect("string serialises")
    );
    client.roundtrip(&request);
    let response = client.roundtrip(r#"{"id": "s2", "op": "stats"}"#);
    let stats = field(&response, "stats");
    let scheduler = field(stats, "scheduler");
    assert_eq!(field(scheduler, "completed"), &Value::UInt(1));
    assert_eq!(field(stats, "connections"), &Value::UInt(1));
    server.shutdown();
}

#[test]
fn shutdown_verb_drains_gracefully_under_load() {
    // Several clients fire requests while one of them asks for shutdown:
    // every in-flight request must complete or get a clean error, the
    // drain must answer the shutdown verb, and every thread must join
    // (the test harness would hang otherwise).
    let server = start_server(ServeConfig {
        max_batch: 4,
        batch_window: Duration::from_millis(1),
        workers: 2,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();

    let clients: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connects");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut writer = stream;
                let request = format!(
                    "{}\n",
                    serde_json::to_string(&Value::Object(
                        [
                            ("id".to_string(), Value::UInt(1)),
                            ("bench".to_string(), Value::Str(FULL_ADDER.to_string())),
                        ]
                        .into_iter()
                        .collect(),
                    ))
                    .expect("request serialises")
                );
                let mut answered = 0usize;
                for _ in 0..16 {
                    if writer.write_all(request.as_bytes()).is_err() {
                        break; // server drained mid-run: acceptable
                    }
                    let mut line = String::new();
                    match reader.read_line(&mut line) {
                        Ok(n) if n > 0 => {
                            let response: Value =
                                serde_json::from_str(&line).expect("well-formed response");
                            let object = response.as_object().expect("object response");
                            assert!(
                                object.contains_key("probs") || object.contains_key("error"),
                                "response is neither a result nor a clean error: {line}"
                            );
                            answered += 1;
                        }
                        _ => break, // force-closed during drain: acceptable
                    }
                }
                answered
            })
        })
        .collect();

    // Let the clients make some progress, then drain via the wire verb.
    std::thread::sleep(Duration::from_millis(30));
    let mut shutter = Client::connect(&server);
    let response = shutter.roundtrip(r#"{"id": "bye", "op": "shutdown"}"#);
    assert_eq!(field(&response, "ok"), &Value::Bool(true));

    // wait() returns only after the listener, workers and connection
    // threads have all joined.
    server.wait();

    let answered: usize = clients
        .into_iter()
        .map(|c| c.join().expect("client thread panicked"))
        .sum();
    assert!(answered > 0, "no request completed before the drain");
}

#[test]
fn oversized_request_lines_are_rejected_not_buffered() {
    let server = start_server(ServeConfig::default());
    let stream = TcpStream::connect(server.local_addr()).expect("connects");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    // 9 MiB without a newline: past the 8 MiB request cap.
    let chunk = vec![b'a'; 1024 * 1024];
    for _ in 0..9 {
        if writer.write_all(&chunk).is_err() {
            break; // server may cut the connection mid-stream: also fine
        }
    }
    let _ = writer.flush();
    let mut line = String::new();
    if reader.read_line(&mut line).is_ok() && !line.is_empty() {
        assert!(line.contains("error"), "expected an error, got: {line}");
    }
    // Either way the connection is closed and the server stays healthy.
    let mut probe = Client::connect(&server);
    let response = probe.roundtrip(r#"{"id": 1, "op": "stats"}"#);
    assert!(field(&response, "stats").as_object().is_some());
    server.shutdown();
}

#[test]
fn aiger_payloads_flow_through_the_wire_in_both_latch_modes() {
    use deepgate::aig::aiger::{random_aig, write_aag, write_aig};

    let aig = random_aig(7, 3, 2, 12);
    let ascii = write_aag(&aig);
    let binary = write_aig(&aig).expect("canonical AIG serialises");
    let server = start_server(ServeConfig::default());
    let mut client = Client::connect(&server);

    // AIGER-ASCII inline, default (cut) latch policy.
    let ascii_request = request_of(&[("id", Value::UInt(1)), ("aiger", Value::Str(ascii.clone()))]);
    let cut_probs = probs_of(&client.roundtrip(&ascii_request));
    assert!(!cut_probs.is_empty());
    assert!(cut_probs.iter().all(|p| (0.0..=1.0).contains(p)));

    // The same circuit as base64-encoded *binary* AIGER: different bytes,
    // same structure — the fingerprint level of the cache shares the one
    // prepared entry, and predictions are bit-identical.
    let binary_request = request_of(&[
        ("id", Value::UInt(2)),
        (
            "aiger_b64",
            Value::Str(deepgate_serve::b64::encode(&binary)),
        ),
        ("latch", Value::Str("cut".to_string())),
    ]);
    let bin_probs = probs_of(&client.roundtrip(&binary_request));
    assert_eq!(bin_probs, cut_probs);
    assert_eq!(server.stats().cache.entries, 1);

    // Unrolling time-frame-expands the latch transition logic (with frame-0
    // reset constants folded in), yielding a structurally different circuit
    // from the cut view of the same bytes. The latch policy is part of the
    // cache key: this is a new prepared entry, not a hit.
    let unrolled_request = request_of(&[
        ("id", Value::UInt(3)),
        (
            "aiger_b64",
            Value::Str(deepgate_serve::b64::encode(&binary)),
        ),
        ("latch", Value::Str("unroll:3".to_string())),
    ]);
    let unrolled_probs = probs_of(&client.roundtrip(&unrolled_request));
    assert!(!unrolled_probs.is_empty());
    assert_ne!(unrolled_probs, cut_probs);
    assert_eq!(server.stats().cache.entries, 2);
    server.shutdown();
}

#[test]
fn malformed_aiger_requests_get_clean_errors() {
    let server = start_server(ServeConfig::default());
    let mut client = Client::connect(&server);
    let valid_aag = "aag 1 1 0 1 0\n2\n2\n";

    let cases: Vec<(String, &str)> = vec![
        (
            request_of(&[("aiger_b64", Value::Str("!!!not-base64!!!".into()))]),
            "base64",
        ),
        (
            // Valid base64 wrapping a lying binary header (5 ANDs, no data).
            request_of(&[(
                "aiger_b64",
                Value::Str(deepgate_serve::b64::encode(b"aig 5 0 0 0 5\n")),
            )]),
            "bad request",
        ),
        (
            request_of(&[("aiger", Value::Str("aag 2 1 0 1 1\n2\n4\n4 3 5\n".into()))]),
            "bad request",
        ),
        (
            // Two payload fields at once.
            request_of(&[
                ("bench", Value::Str(FULL_ADDER.into())),
                ("aiger", Value::Str(valid_aag.into())),
            ]),
            "exactly one",
        ),
        (
            // `latch` is an AIGER concept.
            request_of(&[
                ("bench", Value::Str(FULL_ADDER.into())),
                ("latch", Value::Str("cut".into())),
            ]),
            "latch",
        ),
        (
            request_of(&[
                ("aiger", Value::Str(valid_aag.into())),
                ("latch", Value::Str("unroll:0".into())),
            ]),
            "frame",
        ),
        (
            request_of(&[
                ("aiger", Value::Str(valid_aag.into())),
                ("latch", Value::Str("frobnicate".into())),
            ]),
            "latch policy",
        ),
    ];
    for (request, needle) in cases {
        let response = client.roundtrip(&request);
        let Value::Str(message) = field(&response, "error") else {
            panic!("expected error string for {request}, got {response:?}");
        };
        assert!(
            message.contains(needle),
            "error for {request} should mention `{needle}`, got: {message}"
        );
    }

    // The connection and server survive every rejected request.
    let response = client.roundtrip(&request_of(&[("aiger", Value::Str(valid_aag.into()))]));
    assert!(field(&response, "probs").as_array().is_some());
    server.shutdown();
}

#[test]
fn server_rejects_workerless_config() {
    assert!(Server::start(
        quick_engine(),
        ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        },
    )
    .is_err());
}
