//! Offline stand-in for `serde_json`: renders the shim [`Value`] tree to
//! JSON text and parses JSON text back, with exact `u64`/`i64` round-trips
//! and shortest-representation floats.

pub use serde::DeError as Error;
pub use serde::Value;

use serde::{Deserialize, Serialize};

/// Serialises a value to compact JSON.
///
/// # Errors
///
/// Never fails for the value types in this workspace; the `Result` mirrors
/// the real `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serialises a value to human-readable, two-space-indented JSON.
///
/// # Errors
///
/// Never fails for the value types in this workspace.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax or shape problem.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::deserialize(&value)
}

// ------------------------------------------------------------------ writing

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `Display` for f64 is the shortest round-trip representation.
                let s = f.to_string();
                out.push_str(&s);
                // "1" would parse back as an integer; keep it a float.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (key, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            if !map.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn write_sep(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(&format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::custom(&format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(&format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let c = *rest
                .first()
                .ok_or_else(|| Error::custom("unterminated string"))?;
            match c {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    let esc = *rest.get(1).ok_or_else(|| Error::custom("bad escape"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(Error::custom("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 code point.
                    let text =
                        std::str::from_utf8(rest).map_err(|_| Error::custom("invalid UTF-8"))?;
                    let ch = text.chars().next().expect("non-empty");
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(&format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42usize).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<f64>("0.25").unwrap(), 0.25);
        let f: f32 = from_str(&to_string(&0.1f32).unwrap()).unwrap();
        assert_eq!(f, 0.1f32);
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![(String::from("a"), 1.5f64), (String::from("b"), -2.0)];
        let json = to_string(&v).unwrap();
        let back: Vec<(String, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
        let none: Option<u32> = from_str("null").unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn string_escapes() {
        let s = String::from("line\n\"quoted\"\\x");
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,2").is_err());
        assert!(from_str::<u32>("\"nope\"").is_err());
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let v = Value::Object(
            [
                (String::from("x"), Value::Array(vec![Value::UInt(1)])),
                (String::from("y"), Value::Null),
            ]
            .into_iter()
            .collect(),
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }
}
