use crate::{GateKind, Levels, NetlistError, NetlistStats, TopoOrder};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Index of a node inside a [`Netlist`].
///
/// Node ids are dense, start at zero and are stable for the lifetime of the
/// netlist (nodes are never removed; dead logic is dropped by rebuilding, see
/// [`Netlist::retain_cone`]).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node index as a `usize`, for slice indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

/// One node (primary input, constant or gate) of a [`Netlist`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// The gate kind of this node.
    pub kind: GateKind,
    /// Fan-in node ids, in argument order.
    pub fanins: Vec<NodeId>,
    /// Optional signal name (always present for primary inputs).
    pub name: Option<String>,
}

/// A combinational gate-level netlist represented as a DAG.
///
/// This is the unified circuit representation the rest of the workspace
/// consumes: BENCH files parse into it, synthetic benchmark generators build
/// it, and `deepgate-aig` maps it into And-Inverter-Graph form.
///
/// # Example
///
/// ```rust
/// use deepgate_netlist::{GateKind, Netlist};
///
/// # fn main() -> Result<(), deepgate_netlist::NetlistError> {
/// let mut n = Netlist::new("majority");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let c = n.add_input("c");
/// let ab = n.add_gate(GateKind::And, &[a, b])?;
/// let bc = n.add_gate(GateKind::And, &[b, c])?;
/// let ac = n.add_gate(GateKind::And, &[a, c])?;
/// let maj = n.add_gate(GateKind::Or, &[ab, bc, ac])?;
/// n.mark_output(maj, "maj");
/// assert_eq!(n.num_inputs(), 3);
/// assert_eq!(n.num_gates(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<(NodeId, String)>,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Total number of nodes (inputs, constants and gates).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the netlist has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of logic gates (nodes that are not primary inputs or constants).
    pub fn num_gates(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.is_gate()).count()
    }

    /// Primary input node ids, in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs as `(node, name)` pairs, in declaration order.
    pub fn outputs(&self) -> &[(NodeId, String)] {
        &self.outputs
    }

    /// Access a node by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Access a node by id, returning `None` when out of range.
    pub fn get(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.index())
    }

    /// Iterate over `(id, node)` pairs in id order (which is a valid
    /// topological order because fan-ins must exist before use).
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Adds a primary input with the given name and returns its id.
    pub fn add_input(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind: GateKind::Input,
            fanins: Vec::new(),
            name: Some(name.into()),
        });
        self.inputs.push(id);
        id
    }

    /// Adds a constant node and returns its id.
    pub fn add_const(&mut self, value: bool) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind: if value {
                GateKind::Const1
            } else {
                GateKind::Const0
            },
            fanins: Vec::new(),
            name: None,
        });
        id
    }

    /// Adds a gate of the given kind with the given fan-ins and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] if the fan-in count is illegal
    /// for `kind`, and [`NetlistError::UnknownNode`] if a fan-in id does not
    /// exist yet. Because fan-ins must already exist, insertion order is a
    /// topological order and cycles cannot be constructed through this API.
    pub fn add_gate(&mut self, kind: GateKind, fanins: &[NodeId]) -> Result<NodeId, NetlistError> {
        if !kind.accepts_arity(fanins.len()) {
            return Err(NetlistError::ArityMismatch {
                kind: kind.mnemonic(),
                got: fanins.len(),
            });
        }
        for &f in fanins {
            if f.index() >= self.nodes.len() {
                return Err(NetlistError::UnknownNode(f.index()));
            }
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            fanins: fanins.to_vec(),
            name: None,
        });
        Ok(id)
    }

    /// Adds a gate and assigns a signal name to it.
    ///
    /// # Errors
    ///
    /// Same as [`Netlist::add_gate`].
    pub fn add_named_gate(
        &mut self,
        kind: GateKind,
        fanins: &[NodeId],
        name: impl Into<String>,
    ) -> Result<NodeId, NetlistError> {
        let id = self.add_gate(kind, fanins)?;
        self.nodes[id.index()].name = Some(name.into());
        Ok(id)
    }

    /// Marks `node` as a primary output under `name`. A node may drive
    /// multiple outputs.
    pub fn mark_output(&mut self, node: NodeId, name: impl Into<String>) {
        self.outputs.push((node, name.into()));
    }

    /// Returns the signal name of a node if it has one.
    pub fn node_name(&self, id: NodeId) -> Option<&str> {
        self.nodes[id.index()].name.as_deref()
    }

    /// Looks up a node id by signal name (inputs and named gates).
    pub fn find_by_name(&self, name: &str) -> Option<NodeId> {
        self.iter()
            .find(|(_, n)| n.name.as_deref() == Some(name))
            .map(|(id, _)| id)
    }

    /// Returns node ids in a valid topological order (fan-ins before fan-outs).
    pub fn topo_order(&self) -> TopoOrder {
        crate::graph::topo_order(self)
    }

    /// Computes the logic level of every node (inputs and constants are level
    /// 0, a gate is one more than its deepest fan-in).
    pub fn levels(&self) -> Levels {
        crate::graph::levels(self)
    }

    /// Number of fan-outs of every node (how many gates or outputs consume it).
    pub fn fanout_counts(&self) -> Vec<usize> {
        crate::graph::fanout_counts(self)
    }

    /// Structural statistics of the netlist (gate histogram, depth, fan-out).
    pub fn stats(&self) -> NetlistStats {
        NetlistStats::of(self)
    }

    /// Builds a new netlist containing only the transitive fan-in cone of the
    /// given output nodes (dead logic removed). Output markings referring to
    /// retained nodes are preserved; `roots` that were not already outputs are
    /// added as outputs named after the original node.
    pub fn retain_cone(&self, roots: &[NodeId]) -> Netlist {
        let keep = crate::graph::transitive_fanin(self, roots);
        let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
        let mut out = Netlist::new(self.name.clone());
        for (id, node) in self.iter() {
            if !keep.contains(&id) {
                continue;
            }
            let new_id = match node.kind {
                GateKind::Input => out.add_input(
                    node.name
                        .clone()
                        .unwrap_or_else(|| format!("pi_{}", id.index())),
                ),
                GateKind::Const0 => out.add_const(false),
                GateKind::Const1 => out.add_const(true),
                _ => {
                    let fanins: Vec<NodeId> = node.fanins.iter().map(|f| remap[f]).collect();
                    let new_id = out
                        .add_gate(node.kind, &fanins)
                        .expect("arity preserved by construction");
                    if let Some(name) = &node.name {
                        out.nodes[new_id.index()].name = Some(name.clone());
                    }
                    new_id
                }
            };
            remap.insert(id, new_id);
        }
        for (node, name) in &self.outputs {
            if let Some(new_id) = remap.get(node) {
                out.mark_output(*new_id, name.clone());
            }
        }
        for root in roots {
            if let Some(new_id) = remap.get(root) {
                if !out.outputs.iter().any(|(n, _)| n == new_id) {
                    out.mark_output(*new_id, format!("cone_{}", root.index()));
                }
            }
        }
        out
    }

    /// Checks internal invariants: fan-in ids in range, arities legal, every
    /// output refers to an existing node, primary inputs have no fan-ins.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (id, node) in self.iter() {
            if !node.kind.accepts_arity(node.fanins.len()) {
                return Err(NetlistError::ArityMismatch {
                    kind: node.kind.mnemonic(),
                    got: node.fanins.len(),
                });
            }
            for &f in &node.fanins {
                if f.index() >= self.nodes.len() {
                    return Err(NetlistError::UnknownNode(f.index()));
                }
                if f.index() >= id.index() {
                    return Err(NetlistError::Cycle {
                        from: f.index(),
                        to: id.index(),
                    });
                }
            }
        }
        for (node, _) in &self.outputs {
            if node.index() >= self.nodes.len() {
                return Err(NetlistError::UnknownNode(node.index()));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist `{}`: {} nodes ({} PIs, {} gates, {} POs)",
            self.name,
            self.len(),
            self.num_inputs(),
            self.num_gates(),
            self.num_outputs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder() -> Netlist {
        let mut n = Netlist::new("fa");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let cin = n.add_input("cin");
        let axb = n.add_gate(GateKind::Xor, &[a, b]).unwrap();
        let sum = n.add_gate(GateKind::Xor, &[axb, cin]).unwrap();
        let ab = n.add_gate(GateKind::And, &[a, b]).unwrap();
        let c2 = n.add_gate(GateKind::And, &[axb, cin]).unwrap();
        let cout = n.add_gate(GateKind::Or, &[ab, c2]).unwrap();
        n.mark_output(sum, "sum");
        n.mark_output(cout, "cout");
        n
    }

    #[test]
    fn construction_and_counts() {
        let n = full_adder();
        assert_eq!(n.len(), 8);
        assert_eq!(n.num_inputs(), 3);
        assert_eq!(n.num_gates(), 5);
        assert_eq!(n.num_outputs(), 2);
        assert!(n.validate().is_ok());
        assert!(n.to_string().contains("fa"));
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let mut n = Netlist::new("bad");
        let a = n.add_input("a");
        let err = n.add_gate(GateKind::Not, &[a, a]).unwrap_err();
        assert!(matches!(err, NetlistError::ArityMismatch { got: 2, .. }));
    }

    #[test]
    fn unknown_fanin_is_reported() {
        let mut n = Netlist::new("bad");
        let err = n.add_gate(GateKind::Buf, &[NodeId(7)]).unwrap_err();
        assert_eq!(err, NetlistError::UnknownNode(7));
    }

    #[test]
    fn names_resolve() {
        let n = full_adder();
        let a = n.find_by_name("a").unwrap();
        assert_eq!(n.node(a).kind, GateKind::Input);
        assert!(n.find_by_name("missing").is_none());
        assert_eq!(n.node_name(a), Some("a"));
    }

    #[test]
    fn retain_cone_drops_dead_logic() {
        let mut n = full_adder();
        // Add dead logic not in any output cone.
        let a = n.find_by_name("a").unwrap();
        let dead = n.add_gate(GateKind::Not, &[a]).unwrap();
        let _dead2 = n.add_gate(GateKind::Not, &[dead]).unwrap();
        let sum_node = n.outputs()[0].0;
        let cone = n.retain_cone(&[sum_node]);
        assert!(cone.validate().is_ok());
        // sum cone: a, b, cin, a^b, (a^b)^cin = 5 nodes
        assert_eq!(cone.len(), 5);
        assert_eq!(cone.num_outputs(), 1);
        assert_eq!(cone.outputs()[0].1, "sum");
    }

    #[test]
    fn retain_cone_preserves_all_outputs_when_rooted_at_all() {
        let n = full_adder();
        let roots: Vec<NodeId> = n.outputs().iter().map(|(id, _)| *id).collect();
        let cone = n.retain_cone(&roots);
        assert_eq!(cone.len(), n.len());
        assert_eq!(cone.num_outputs(), n.num_outputs());
    }

    #[test]
    fn constants_are_sources() {
        let mut n = Netlist::new("c");
        let zero = n.add_const(false);
        let one = n.add_const(true);
        assert!(n.node(zero).kind.is_source());
        assert!(n.node(one).kind.is_source());
        assert_eq!(n.num_gates(), 0);
    }

    #[test]
    fn display_of_node_id() {
        assert_eq!(NodeId(4).to_string(), "n4");
        assert_eq!(usize::from(NodeId(4)), 4);
    }

    #[test]
    fn validate_detects_forward_reference_cycle() {
        // Hand-construct a broken netlist through serde to bypass the API.
        let mut n = full_adder();
        // Introduce an illegal forward edge by swapping a fan-in.
        n.nodes[3].fanins[0] = NodeId(7);
        assert!(matches!(n.validate(), Err(NetlistError::Cycle { .. })));
    }
}
