//! Light logic-optimisation passes over [`Aig`].
//!
//! The DeepGate paper relies on a logic-synthesis tool (ABC) to optimise the
//! circuits it trains on; the authors argue the synthesis step injects a
//! strong relational inductive bias into the resulting graphs. This module is
//! the substitute: a `sweep` pass that removes dead nodes and re-strashes, a
//! `balance` pass that reassociates AND trees to reduce depth (ABC's
//! `balance`), and [`optimize`] which runs them to a fixpoint.

use crate::{Aig, AigLit, AigNodeKind};
use std::collections::HashMap;

/// Removes dead AND nodes (not reachable from any primary output or latch
/// next-state function) and rebuilds the AIG with structural hashing applied
/// again. Returns the new AIG and the number of removed AND nodes.
pub fn sweep(aig: &Aig) -> (Aig, usize) {
    let mut reachable = vec![false; aig.len()];
    let mut stack: Vec<usize> = aig.outputs().iter().map(|(l, _)| l.node()).collect();
    stack.extend(aig.latches().iter().map(|l| l.next.node()));
    while let Some(i) = stack.pop() {
        if reachable[i] {
            continue;
        }
        reachable[i] = true;
        let node = aig.node(i);
        if node.kind == AigNodeKind::And {
            stack.push(node.fanin0.node());
            stack.push(node.fanin1.node());
        }
    }
    // Inputs and latches are always kept to preserve the interface.
    let mut out = Aig::new(aig.name());
    let mut map: HashMap<usize, AigLit> = HashMap::new();
    map.insert(0, AigLit::FALSE);
    for (pos, &idx) in aig.inputs().iter().enumerate() {
        let lit = out.add_input(aig.input_name(pos));
        map.insert(idx, lit);
    }
    for (j, latch) in aig.latches().iter().enumerate() {
        let lit = out.add_latch(latch.name.clone());
        out.set_latch_init(j, latch.init);
        map.insert(latch.state, lit);
    }
    let mut removed = 0usize;
    for (i, node) in aig.iter() {
        if node.kind != AigNodeKind::And {
            continue;
        }
        if !reachable[i] {
            removed += 1;
            continue;
        }
        let a = translate(&map, node.fanin0);
        let b = translate(&map, node.fanin1);
        let lit = out.and(a, b);
        map.insert(i, lit);
    }
    for (lit, name) in aig.outputs() {
        let mapped = translate(&map, *lit);
        out.add_output(mapped, name.clone());
    }
    for (j, latch) in aig.latches().iter().enumerate() {
        out.set_latch_next(j, translate(&map, latch.next));
    }
    (out, removed)
}

/// Reassociates chains of AND nodes into balanced trees to reduce logic depth
/// (the ABC `balance` pass). Only single-fan-out internal nodes are collapsed
/// so shared logic is preserved. Returns the rebuilt AIG.
pub fn balance(aig: &Aig) -> Aig {
    let fanout = aig.fanout_counts();
    let mut out = Aig::new(aig.name());
    let mut map: HashMap<usize, AigLit> = HashMap::new();
    map.insert(0, AigLit::FALSE);
    for (pos, &idx) in aig.inputs().iter().enumerate() {
        let lit = out.add_input(aig.input_name(pos));
        map.insert(idx, lit);
    }
    for (j, latch) in aig.latches().iter().enumerate() {
        let lit = out.add_latch(latch.name.clone());
        out.set_latch_init(j, latch.init);
        map.insert(latch.state, lit);
    }

    // Collect the multi-input AND "super-gate" rooted at `root` by expanding
    // single-fan-out, non-complemented AND fan-ins.
    fn collect_leaves(aig: &Aig, fanout: &[usize], root: usize, leaves: &mut Vec<AigLit>) {
        let node = aig.node(root);
        for lit in [node.fanin0, node.fanin1] {
            let child = lit.node();
            let expandable = !lit.is_complemented()
                && aig.node(child).kind == AigNodeKind::And
                && fanout[child] == 1;
            if expandable {
                collect_leaves(aig, fanout, child, leaves);
            } else {
                leaves.push(lit);
            }
        }
    }

    for (i, node) in aig.iter() {
        if node.kind != AigNodeKind::And {
            continue;
        }
        // Skip nodes that are absorbed into a parent super-gate: they are
        // single-fan-out AND nodes referenced positively by another AND.
        let absorbed = fanout[i] == 1
            && aig.iter().any(|(j, n)| {
                n.kind == AigNodeKind::And
                    && j > i
                    && ((n.fanin0 == AigLit::positive(i)) || (n.fanin1 == AigLit::positive(i)))
            });
        if absorbed {
            continue;
        }
        let mut leaves = Vec::new();
        collect_leaves(aig, &fanout, i, &mut leaves);
        let translated: Vec<AigLit> = leaves.iter().map(|&l| translate(&map, l)).collect();
        let lit = out.and_many(&translated);
        map.insert(i, lit);
    }
    for (lit, name) in aig.outputs() {
        let mapped = translate_or_rebuild(aig, &mut out, &mut map, *lit);
        out.add_output(mapped, name.clone());
    }
    for j in 0..aig.num_latches() {
        let next = aig.latches()[j].next;
        let mapped = translate_or_rebuild(aig, &mut out, &mut map, next);
        out.set_latch_next(j, mapped);
    }
    out
}

/// Runs `sweep` and `balance` to a fixpoint (bounded by `max_rounds`), the
/// equivalent of a short ABC optimisation script. Returns the optimised AIG.
pub fn optimize(aig: &Aig, max_rounds: usize) -> Aig {
    let mut current = aig.clone();
    for _ in 0..max_rounds.max(1) {
        let balanced = balance(&current);
        let (swept, removed) = sweep(&balanced);
        let unchanged = removed == 0 && swept.num_ands() == current.num_ands();
        current = swept;
        if unchanged {
            break;
        }
    }
    current
}

fn translate(map: &HashMap<usize, AigLit>, lit: AigLit) -> AigLit {
    let base = map[&lit.node()];
    if lit.is_complemented() {
        base.complement()
    } else {
        base
    }
}

/// Translates a literal, rebuilding the node cone in `out` if the node was
/// absorbed during balancing and therefore has no mapping yet.
fn translate_or_rebuild(
    aig: &Aig,
    out: &mut Aig,
    map: &mut HashMap<usize, AigLit>,
    lit: AigLit,
) -> AigLit {
    if let Some(&base) = map.get(&lit.node()) {
        return if lit.is_complemented() {
            base.complement()
        } else {
            base
        };
    }
    let node = *aig.node(lit.node());
    let a = translate_or_rebuild(aig, out, map, node.fanin0);
    let b = translate_or_rebuild(aig, out, map, node.fanin1);
    let rebuilt = out.and(a, b);
    map.insert(lit.node(), rebuilt);
    if lit.is_complemented() {
        rebuilt.complement()
    } else {
        rebuilt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_aig(n: usize) -> Aig {
        // a0 & a1 & ... & a_{n-1} built as a left-deep chain.
        let mut aig = Aig::new("chain");
        let inputs: Vec<AigLit> = (0..n).map(|i| aig.add_input(format!("a{i}"))).collect();
        let mut acc = inputs[0];
        for &x in &inputs[1..] {
            acc = aig.and(acc, x);
        }
        aig.add_output(acc, "y");
        aig
    }

    #[test]
    fn sweep_removes_dead_nodes() {
        let mut aig = Aig::new("dead");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let used = aig.and(a, b);
        let _dead = aig.and(a, b.complement());
        aig.add_output(used, "y");
        let (swept, removed) = sweep(&aig);
        assert_eq!(removed, 1);
        assert_eq!(swept.num_ands(), 1);
        assert_eq!(swept.num_inputs(), 2);
        assert!(swept.validate().is_ok());
    }

    #[test]
    fn balance_reduces_depth_of_chains() {
        let aig = chain_aig(8);
        let (_, depth_before) = aig.levels();
        assert_eq!(depth_before, 7);
        let balanced = balance(&aig);
        let (_, depth_after) = balanced.levels();
        assert_eq!(depth_after, 3);
        assert_eq!(balanced.num_ands(), 7);
        assert!(balanced.validate().is_ok());
    }

    #[test]
    fn balance_preserves_shared_logic() {
        let mut aig = Aig::new("shared");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, b);
        let abc = aig.and(ab, c);
        aig.add_output(ab, "s"); // ab is shared with an output -> fanout 2
        aig.add_output(abc, "y");
        let balanced = balance(&aig);
        assert!(balanced.validate().is_ok());
        assert_eq!(balanced.num_ands(), 2);
        assert_eq!(balanced.num_outputs(), 2);
    }

    #[test]
    fn optimize_runs_to_fixpoint() {
        let aig = chain_aig(16);
        let opt = optimize(&aig, 4);
        let (_, depth) = opt.levels();
        assert_eq!(depth, 4);
        assert_eq!(opt.num_ands(), 15);
        assert!(opt.validate().is_ok());
    }

    #[test]
    fn sweep_keeps_all_inputs() {
        let mut aig = Aig::new("io");
        let _a = aig.add_input("a");
        let b = aig.add_input("b");
        aig.add_output(b, "y");
        let (swept, _) = sweep(&aig);
        assert_eq!(swept.num_inputs(), 2);
    }
}
