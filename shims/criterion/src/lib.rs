//! Offline stand-in for `criterion`.
//!
//! Provides the `Criterion` / `benchmark_group` / `Bencher` /
//! `criterion_group!` / `criterion_main!` surface the workspace benches use,
//! backed by a simple wall-clock timer: each benchmark runs a warm-up pass,
//! then `sample_size` timed iterations, and prints the mean per-iteration
//! time. No statistics, plots or baselines — just numbers on stdout.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display value.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean per-iteration time of the last `iter` call.
    last_mean: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run a few iterations untimed.
        for _ in 0..2 {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.last_mean = start.elapsed() / self.samples as u32;
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.samples,
            last_mean: Duration::ZERO,
        };
        f(&mut bencher, input);
        self.report(&id.label, bencher.last_mean);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.samples,
            last_mean: Duration::ZERO,
        };
        f(&mut bencher);
        self.report(&id.into().label, bencher.last_mean);
        self
    }

    /// Ends the group (printing already happened per benchmark).
    pub fn finish(self) {}

    fn report(&self, label: &str, mean: Duration) {
        println!(
            "bench {}/{label}: {:.3} ms/iter ({} samples)",
            self.name,
            mean.as_secs_f64() * 1e3,
            self.samples
        );
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
        }
    }
}

/// Declares a group function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
