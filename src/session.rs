//! [`InferenceSession`] — the batched, allocation-reusing serving hot path.

use crate::{DeepGateError, EngineMetrics};
use deepgate_core::DeepGate;
use deepgate_gnn::{CircuitGraph, CompiledKernel, GnnError, InferencePlan, QuantMode};
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// A circuit packaged with its precomputed [`InferencePlan`], ready for
/// repeated low-overhead prediction (see [`InferenceSession::prepare`]).
#[derive(Debug, Clone)]
pub struct PreparedCircuit {
    circuit: CircuitGraph,
    plan: InferencePlan,
}

impl PreparedCircuit {
    /// The wrapped circuit graph.
    pub fn circuit(&self) -> &CircuitGraph {
        &self.circuit
    }

    /// Unwraps the circuit graph, discarding the plan.
    pub fn into_circuit(self) -> CircuitGraph {
        self.circuit
    }
}

/// A batch of circuits fused for serving: disjoint-union graphs (one per
/// worker chunk) with their plans and the bookkeeping to split predictions
/// back out per circuit. Built once via [`InferenceSession::prepare_batch`],
/// reused across every [`InferenceSession::predict_batch_into`] call.
#[derive(Debug, Clone)]
pub struct PreparedBatch {
    chunks: Vec<BatchChunk>,
    num_circuits: usize,
}

#[derive(Debug, Clone)]
struct BatchChunk {
    union: CircuitGraph,
    plan: InferencePlan,
    /// Node count of each member circuit, in order.
    sizes: Vec<usize>,
}

impl PreparedBatch {
    /// Number of circuits in the batch.
    pub fn len(&self) -> usize {
        self.num_circuits
    }

    /// Returns `true` if the batch holds no circuits.
    pub fn is_empty(&self) -> bool {
        self.num_circuits == 0
    }
}

/// A serving session: a model snapshot plus reusable inference state.
///
/// The session owns its weights (cloned from the [`crate::Engine`] or moved
/// out of it), so it is `Send + Sync` and can be shared across serving
/// threads. Three mechanisms keep the hot path fast:
///
/// 1. **Graph fusion** — a batch is merged into per-worker disjoint-union
///    graphs ([`CircuitGraph::disjoint_union`]), so same-level tensor ops of
///    different circuits execute together: `max(levels)` dispatches per
///    recurrence iteration instead of `sum(levels)`. This wins even on a
///    single core.
/// 2. **Parallel fan-out** — union chunks run rayon-parallel, one per
///    worker thread.
/// 3. **Plan, kernel and buffer reuse** — the CSR arena layout
///    ([`InferencePlan`]) is compiled once per circuit/union and reused
///    across all `T` iterations, the model's weights are baked once into a
///    [`CompiledKernel`]; [`InferenceSession::prepare`] /
///    [`InferenceSession::prepare_batch`] pin plans across calls, and the
///    `_into` variants write into caller-owned buffers, so a steady-state
///    serving loop performs no per-request plan or kernel rebuilds.
#[derive(Debug)]
pub struct InferenceSession {
    model: DeepGate,
    iterations: usize,
    metrics: Option<Arc<EngineMetrics>>,
    quantize: QuantMode,
    kernel: CompiledKernel,
}

impl InferenceSession {
    /// Wraps a model in a session, baking the weights into an f32 CSR
    /// kernel.
    pub fn new(model: DeepGate) -> Self {
        let iterations = model.config().num_iterations;
        let kernel = model.compile(QuantMode::F32);
        InferenceSession {
            model,
            iterations,
            metrics: None,
            quantize: QuantMode::F32,
            kernel,
        }
    }

    /// Overrides the recurrence iteration count `T` used at inference time
    /// (the paper's Section IV-D2 sweeps this without retraining).
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations.max(1);
        self
    }

    /// Selects the scoring mode, recompiling the kernel when it changes:
    /// [`QuantMode::F32`] (exact, the default) or [`QuantMode::Int8`]
    /// (quantized weights, rank-order-preserving probabilities).
    pub fn with_quantization(mut self, mode: QuantMode) -> Self {
        if mode != self.quantize {
            self.quantize = mode;
            self.kernel = self.model.compile(mode);
        }
        self
    }

    /// The session's scoring mode.
    pub fn quantization(&self) -> QuantMode {
        self.quantize
    }

    /// Attaches telemetry: plan builds, batch fusion and every planned
    /// prediction record stage timings into the given [`EngineMetrics`]
    /// handles. Sessions opened via [`crate::Engine::session`] inherit the
    /// engine's handles automatically.
    pub fn with_metrics(mut self, metrics: Arc<EngineMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The underlying model.
    pub fn model(&self) -> &DeepGate {
        &self.model
    }

    /// Precomputes a circuit's reusable inference state.
    pub fn prepare(&self, circuit: CircuitGraph) -> PreparedCircuit {
        let plan_start = self.metrics.as_ref().map(|_| Instant::now());
        let plan = self.model.plan(&circuit);
        if let (Some(m), Some(start)) = (self.metrics.as_deref(), plan_start) {
            m.plan_ns.record_duration(start.elapsed());
        }
        PreparedCircuit { circuit, plan }
    }

    /// Fuses a batch into per-worker union graphs with precomputed plans —
    /// the setup step of the steady-state serving loop.
    ///
    /// # Errors
    ///
    /// Returns [`DeepGateError::EmptyBatch`] for an empty batch and
    /// [`DeepGateError::Gnn`] if the circuits do not share one feature
    /// encoding.
    pub fn prepare_batch(&self, circuits: &[CircuitGraph]) -> Result<PreparedBatch, DeepGateError> {
        let refs: Vec<&CircuitGraph> = circuits.iter().collect();
        self.prepare_batch_refs(&refs)
    }

    /// [`InferenceSession::prepare_batch`] over borrowed circuits — the
    /// serving layer batches cached `Arc<CircuitGraph>`s without cloning
    /// them.
    ///
    /// # Errors
    ///
    /// Returns [`DeepGateError::EmptyBatch`] for an empty batch and
    /// [`DeepGateError::Gnn`] if the circuits do not share one feature
    /// encoding.
    pub fn prepare_batch_refs(
        &self,
        circuits: &[&CircuitGraph],
    ) -> Result<PreparedBatch, DeepGateError> {
        if circuits.is_empty() {
            return Err(DeepGateError::EmptyBatch);
        }
        let chunk_size = circuits.len().div_ceil(rayon::current_num_threads());
        let metrics = self.metrics.as_deref();
        let chunks: Result<Vec<BatchChunk>, DeepGateError> = circuits
            .chunks(chunk_size)
            .collect::<Vec<_>>()
            .par_iter()
            .map(|chunk| {
                let fuse_start = metrics.map(|_| Instant::now());
                let (union, _) = CircuitGraph::disjoint_union(chunk)?;
                if let (Some(m), Some(start)) = (metrics, fuse_start) {
                    m.fuse_ns.record_duration(start.elapsed());
                }
                let plan_start = metrics.map(|_| Instant::now());
                let plan = self.model.plan(&union);
                if let (Some(m), Some(start)) = (metrics, plan_start) {
                    m.plan_ns.record_duration(start.elapsed());
                }
                Ok(BatchChunk {
                    plan,
                    union,
                    sizes: chunk.iter().map(|c| c.num_nodes).collect(),
                })
            })
            .collect();
        Ok(PreparedBatch {
            chunks: chunks?,
            num_circuits: circuits.len(),
        })
    }

    /// Predicts per-node signal probabilities for one circuit.
    ///
    /// # Errors
    ///
    /// Returns [`DeepGateError::Gnn`] if the circuit's feature encoding does
    /// not match the model.
    pub fn predict(&self, circuit: &CircuitGraph) -> Result<Vec<f32>, DeepGateError> {
        let plan = self.model.plan(circuit);
        let mut out = Vec::new();
        self.predict_planned_into(circuit, &plan, &mut out)?;
        Ok(out)
    }

    /// Predicts one prepared circuit into a caller-owned buffer (cleared
    /// first) — the minimal-allocation single-request path.
    ///
    /// # Errors
    ///
    /// Returns [`DeepGateError::Gnn`] if the circuit's feature encoding does
    /// not match the model.
    pub fn predict_into(
        &self,
        prepared: &PreparedCircuit,
        out: &mut Vec<f32>,
    ) -> Result<(), DeepGateError> {
        self.predict_planned_into(&prepared.circuit, &prepared.plan, out)
    }

    /// Predicts a batch of circuits: circuits are fused into per-worker
    /// union graphs and the chunks run rayon-parallel. Returns one
    /// probability vector per circuit, in input order.
    ///
    /// # Errors
    ///
    /// Returns [`DeepGateError::EmptyBatch`] for an empty batch and
    /// [`DeepGateError::Gnn`] if any circuit is incompatible with the model.
    pub fn predict_batch(&self, circuits: &[CircuitGraph]) -> Result<Vec<Vec<f32>>, DeepGateError> {
        let prepared = self.prepare_batch(circuits)?;
        let mut out = Vec::new();
        self.predict_batch_into(&prepared, &mut out)?;
        Ok(out)
    }

    /// Predicts a prepared batch into caller-owned buffers — the
    /// steady-state serving hot path: no plan rebuilds, no union rebuilds,
    /// and `out`'s buffers keep their allocations across calls. `out` is
    /// resized to the batch length.
    ///
    /// # Errors
    ///
    /// Returns [`DeepGateError::EmptyBatch`] for an empty batch and
    /// [`DeepGateError::Gnn`] if any circuit is incompatible with the model.
    /// On error the contents of `out` are unspecified but safe to reuse.
    pub fn predict_batch_into(
        &self,
        prepared: &PreparedBatch,
        out: &mut Vec<Vec<f32>>,
    ) -> Result<(), DeepGateError> {
        if prepared.is_empty() {
            return Err(DeepGateError::EmptyBatch);
        }
        // Hand each chunk its slice of reusable output buffers.
        let mut buffers = std::mem::take(out);
        buffers.resize_with(prepared.num_circuits, Vec::new);
        let mut tasks: Vec<(&BatchChunk, Vec<Vec<f32>>)> =
            Vec::with_capacity(prepared.chunks.len());
        let mut rest = buffers;
        for chunk in &prepared.chunks {
            let tail = rest.split_off(chunk.sizes.len());
            tasks.push((chunk, rest));
            rest = tail;
        }
        let results: Result<Vec<Vec<Vec<f32>>>, DeepGateError> = tasks
            .into_par_iter()
            .map(|(chunk, mut outputs)| {
                let mut merged = Vec::new();
                self.predict_planned_into(&chunk.union, &chunk.plan, &mut merged)?;
                let mut offset = 0;
                for (size, buffer) in chunk.sizes.iter().zip(outputs.iter_mut()) {
                    buffer.clear();
                    buffer.extend_from_slice(&merged[offset..offset + size]);
                    offset += size;
                }
                Ok(outputs)
            })
            .collect();
        *out = results?.into_iter().flatten().collect();
        Ok(())
    }

    fn predict_planned_into(
        &self,
        circuit: &CircuitGraph,
        plan: &InferencePlan,
        out: &mut Vec<f32>,
    ) -> Result<(), DeepGateError> {
        // The kernel validates dimensions, not encodings — keep the
        // circuit-level check (and its error) here.
        let expected = self.model.config().feature_dim;
        let got = circuit.encoding.dimension();
        if got != expected {
            return Err(GnnError::EncodingMismatch { expected, got }.into());
        }
        if !plan.matches(circuit, self.model.model().config().edge_attr_dim()) {
            return Err(GnnError::PlanMismatch.into());
        }
        let metrics = self.metrics.as_deref();
        let predict_start = metrics.map(|_| Instant::now());
        self.kernel
            .predict_into(plan, self.iterations, out, metrics.map(|m| &m.gnn))?;
        if let (Some(m), Some(start)) = (metrics, predict_start) {
            m.predict_ns.record_duration(start.elapsed());
        }
        Ok(())
    }
}
