//! Round-trip property: random AIG → write `.aag` → parse → write binary
//! `.aig` → parse → structurally isomorphic to the original.
//!
//! Isomorphism is checked through the canonical serialised form: the writers
//! assign a canonical variable numbering (inputs, latches, ANDs in
//! topological order), so two AIGs are structurally identical iff their
//! canonical `.aag` text is byte-identical.

use deepgate_aig::aiger;

/// Interface shapes exercised by the property: pure-combinational, input-free
/// sequential, wide and deep mixes.
const SHAPES: &[(usize, usize, usize)] = &[
    (2, 0, 4),
    (0, 3, 9),
    (6, 0, 40),
    (4, 4, 32),
    (1, 1, 1),
    (8, 5, 120),
    (3, 7, 64),
];

#[test]
fn ascii_then_binary_roundtrip_is_isomorphic() {
    for seed in 0..20u64 {
        for &(inputs, latches, ands) in SHAPES {
            let original = aiger::random_aig(seed, inputs, latches, ands);
            original
                .validate()
                .expect("generator must produce valid AIGs");
            let canon = aiger::write_aag(&original);

            // original -> .aag text -> parse
            let from_text =
                aiger::parse_aag(&canon, original.name()).expect("canonical aag reparses");
            from_text.validate().expect("parsed aag is valid");

            // -> binary .aig -> parse
            let bytes = aiger::write_aig(&from_text).expect("parsed aag serialises to binary");
            let from_binary =
                aiger::parse_aig(&bytes[..], original.name()).expect("binary output reparses");
            from_binary.validate().expect("parsed aig is valid");

            // Structural isomorphism via canonical-form equality.
            assert_eq!(
                aiger::write_aag(&from_binary),
                canon,
                "seed {seed}, shape ({inputs}, {latches}, {ands})"
            );

            // Interface survives intact through both trips.
            assert_eq!(from_binary.num_inputs(), inputs);
            assert_eq!(from_binary.num_latches(), latches);
            assert_eq!(from_binary.num_ands(), ands);
            assert_eq!(from_binary.num_outputs(), original.num_outputs());
            for (a, b) in original.latches().iter().zip(from_binary.latches()) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.init, b.init);
            }
        }
    }
}

/// The two latch policies must agree between the original AIG and its
/// round-tripped twin: structural equality must survive `cut` and `unroll`.
#[test]
fn latch_policies_commute_with_roundtrip() {
    let original = aiger::random_aig(1234, 3, 4, 24);
    let bytes = aiger::write_aig(&original).expect("serialises");
    let twin = aiger::parse_aig(&bytes[..], original.name()).expect("reparses");
    for policy in [
        aiger::LatchPolicy::Cut,
        aiger::LatchPolicy::Unroll(1),
        aiger::LatchPolicy::Unroll(3),
    ] {
        let a = policy.apply(&original).expect("policy applies to original");
        let b = policy.apply(&twin).expect("policy applies to twin");
        assert_eq!(
            aiger::write_aag(&a),
            aiger::write_aag(&b),
            "policy {policy} diverged after round-trip"
        );
        assert!(a.is_combinational());
    }
}
