//! # DeepGate (reproduction)
//!
//! A from-scratch Rust reproduction of *DeepGate: Learning Neural
//! Representations of Logic Gates* (Li et al., DAC 2022), redesigned around
//! a single serving-oriented API:
//!
//! - [`Engine`] / [`EngineBuilder`] — one coherent surface over circuit
//!   ingestion, AIG transformation, simulation labelling, training,
//!   evaluation and checkpointing.
//! - [`CircuitSource`] — one trait unifying every input format: BENCH
//!   text/files ([`BenchText`], [`BenchFile`]), structural Verilog
//!   ([`VerilogText`], [`VerilogFile`]), AIGER ASCII and binary with
//!   latch-aware ingestion ([`AigerText`], [`AigerBytes`], [`AigerFile`],
//!   [`LatchPolicy`]), in-memory netlists ([`NetlistSource`]) and the
//!   synthetic benchmark generators ([`SuiteSource`], [`LargeDesignSource`]).
//! - [`DeepGateError`] — one crate-spanning error enum; every public entry
//!   point returns `Result`, never panics on user input.
//! - [`InferenceSession`] — the batched serving hot path:
//!   [`InferenceSession::predict_batch`] fans a batch of circuits across
//!   worker threads and reuses per-circuit edge plans and output buffers.
//!
//! ## Quickstart
//!
//! ```rust
//! use deepgate::prelude::*;
//!
//! fn main() -> Result<(), DeepGateError> {
//!     // A full adder in the BENCH interchange format.
//!     let bench = "\
//!         INPUT(a)\nINPUT(b)\nINPUT(cin)\n\
//!         OUTPUT(sum)\nOUTPUT(cout)\n\
//!         x = XOR(a, b)\nsum = XOR(x, cin)\n\
//!         g1 = AND(a, b)\ng2 = AND(x, cin)\ncout = OR(g1, g2)\n";
//!
//!     // Build an engine (small configuration so this doctest is quick) and
//!     // prepare the circuit: AIG mapping + simulated probability labels.
//!     let mut engine = Engine::builder()
//!         .model(DeepGateConfig { hidden_dim: 8, num_iterations: 2,
//!                                 regressor_hidden: 4, ..DeepGateConfig::default() })
//!         .trainer(TrainerConfig { epochs: 2, ..TrainerConfig::default() })
//!         .num_patterns(512)
//!         .build()?;
//!     let circuits = engine.prepare(&BenchText::new("full_adder", bench))?;
//!
//!     // Train briefly, then serve predictions through a batched session.
//!     engine.train(&circuits, &[])?;
//!     let session = engine.session();
//!     let batch = session.predict_batch(&circuits)?;
//!     assert_eq!(batch[0].len(), circuits[0].num_nodes);
//!     Ok(())
//! }
//! ```
//!
//! ## Layering
//!
//! The engine composes the individual workspace crates, all re-exported for
//! direct access:
//!
//! - [`netlist`] — gate-level netlist IR, BENCH/Verilog parsers, generators.
//! - [`aig`] — And-Inverter Graphs, netlist→AIG mapping, optimisation
//!   passes, reconvergence analysis (the logic-synthesis substrate).
//! - [`sim`] — bit-parallel logic simulation and probability labelling.
//! - [`nn`] — minimal tensor / reverse-mode autodiff substrate.
//! - [`gnn`] — DAG-GNN framework and the baseline model zoo.
//! - [`core`] — the DeepGate model, trainer and evaluation metrics.
//! - [`dataset`] — benchmark-suite generators and the dataset pipeline.
//!
//! The `deepgate-serve` crate (`crates/serve`) layers a concurrent
//! inference server on top of this facade: dynamic micro-batching over
//! [`InferenceSession`], a structural circuit cache keyed by
//! [`gnn::CircuitGraph::fingerprint`], and a newline-delimited-JSON TCP
//! front end.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use deepgate_aig as aig;
pub use deepgate_core as core;
pub use deepgate_dataset as dataset;
pub use deepgate_gnn as gnn;
pub use deepgate_netlist as netlist;
pub use deepgate_nn as nn;
pub use deepgate_sim as sim;
pub use deepgate_telemetry as telemetry;

mod engine;
mod error;
mod metrics;
mod session;
mod source;

pub use deepgate_aig::LatchPolicy;
pub use deepgate_gnn::QuantMode;
pub use engine::{Engine, EngineBuilder};
pub use error::DeepGateError;
pub use metrics::EngineMetrics;
pub use session::{InferenceSession, PreparedCircuit};
pub use source::{
    AigerBytes, AigerFile, AigerText, BenchFile, BenchText, CircuitSource, LargeDesignSource,
    NetlistSource, SuiteSource, VerilogFile, VerilogText,
};

/// Commonly used types, re-exported for convenient glob import.
pub mod prelude {
    pub use crate::{
        AigerBytes, AigerFile, AigerText, BenchFile, BenchText, CircuitSource, DeepGateError,
        Engine, EngineBuilder, InferenceSession, LargeDesignSource, NetlistSource, PreparedCircuit,
        SuiteSource, VerilogFile, VerilogText,
    };
    pub use deepgate_aig::{Aig, AigLit, AigNodeKind, LatchPolicy};
    pub use deepgate_core::{DeepGate, DeepGateConfig, Trainer, TrainerConfig};
    pub use deepgate_dataset::{Dataset, DatasetConfig, SuiteKind};
    pub use deepgate_gnn::{Aggregator, CircuitGraph, DagRecGnn, Gcn, GnnError, QuantMode};
    pub use deepgate_netlist::{GateKind, Netlist, NodeId};
    pub use deepgate_nn::{Graph, Tensor};
    pub use deepgate_sim::SignalProbability;
}
