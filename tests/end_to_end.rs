//! Integration tests spanning the whole workspace through the unified
//! facade: netlist front-end → AIG transformation → simulation labelling →
//! circuit-graph encoding → Engine training → InferenceSession serving.

use deepgate::dataset::{generators, Dataset, DatasetConfig, LargeDesign, SuiteKind};
use deepgate::gnn::{CircuitGraph, FeatureEncoding};
use deepgate::netlist::bench;
use deepgate::prelude::*;

/// A small engine configuration every test can afford.
fn quick_engine() -> Engine {
    Engine::builder()
        .model(DeepGateConfig {
            hidden_dim: 16,
            num_iterations: 2,
            regressor_hidden: 8,
            ..DeepGateConfig::default()
        })
        .trainer(TrainerConfig {
            epochs: 10,
            learning_rate: 3e-3,
            ..TrainerConfig::default()
        })
        .num_patterns(2_048)
        .build()
        .expect("valid quick configuration")
}

#[test]
fn bench_roundtrip_preserves_signal_probabilities() {
    // Write a generated circuit to BENCH text, parse it back through the
    // CircuitSource layer and check that the simulated probabilities agree —
    // the parser, writer and simulator must be mutually consistent.
    let original = generators::alu(4);
    let text = bench::write(&original);
    let parsed = BenchText::new("alu4", text)
        .netlists()
        .expect("round-trip parse")
        .remove(0);
    let p_original = SignalProbability::simulate_netlist(&original, 8192, 5).unwrap();
    let p_parsed = SignalProbability::simulate_netlist(&parsed, 8192, 5).unwrap();
    // Compare per-output probabilities by name.
    for (id, name) in original.outputs() {
        let other = parsed
            .outputs()
            .iter()
            .find(|(_, n)| n == name)
            .map(|(i, _)| *i)
            .expect("output preserved");
        let a = p_original.of(id.index());
        let b = p_parsed.of(other.index());
        assert!((a - b).abs() < 0.03, "{name}: {a} vs {b}");
    }
}

#[test]
fn aig_transformation_preserves_output_probabilities() {
    // The logic-synthesis substitute must preserve functionality: output
    // signal probabilities before and after AIG mapping + optimisation agree.
    use deepgate::aig::opt;
    for netlist in [
        generators::comparator(5),
        generators::counter_next_state(6),
        generators::masked_arbiter(6),
    ] {
        let aig = Aig::from_netlist(&netlist).unwrap();
        let optimized = opt::optimize(&aig, 3);
        let p_netlist = SignalProbability::simulate_netlist(&netlist, 16_384, 9).unwrap();
        let p_aig = SignalProbability::simulate(&optimized, 16_384, 9).unwrap();
        for (k, (lit, name)) in optimized.outputs().iter().enumerate() {
            let (orig_id, _) = netlist.outputs()[k];
            let expected = p_netlist.of(orig_id.index());
            let raw = p_aig.of(lit.node());
            let got = if lit.is_complemented() {
                1.0 - raw
            } else {
                raw
            };
            assert!(
                (expected - got).abs() < 0.03,
                "{}: output {name} {expected} vs {got}",
                netlist.name()
            );
        }
    }
}

#[test]
fn engine_overfits_a_single_circuit() {
    // Sanity check of the full learning stack: the engine must be able to
    // fit the probabilities of one small circuit almost exactly.
    let mut engine = Engine::builder()
        .model(DeepGateConfig {
            hidden_dim: 24,
            num_iterations: 3,
            regressor_hidden: 16,
            ..DeepGateConfig::default()
        })
        .trainer(TrainerConfig {
            epochs: 40,
            learning_rate: 5e-3,
            eval_every: 0,
            ..TrainerConfig::default()
        })
        .num_patterns(8_192)
        .label_seed(3)
        .build()
        .unwrap();
    let circuits = engine
        .prepare(&NetlistSource::from(generators::alu(4)))
        .unwrap();
    let before = engine.evaluate(&circuits).unwrap();
    engine.train(&circuits, &[]).unwrap();
    let after = engine.evaluate(&circuits).unwrap();
    assert!(
        after < before * 0.5 && after < 0.1,
        "did not overfit: {before:.4} -> {after:.4}"
    );
}

#[test]
fn dataset_pipeline_feeds_engine_training_end_to_end() {
    let config = DatasetConfig {
        suites: vec![SuiteKind::Epfl, SuiteKind::Itc99],
        designs_per_suite: 4,
        num_patterns: 1_024,
        size_scale: 0.1,
        ..DatasetConfig::default()
    };
    let dataset = Dataset::generate(&config).unwrap();
    assert_eq!(dataset.len(), 8);
    let mut engine = quick_engine();
    let history = engine.train(&dataset.train, &dataset.test).unwrap();
    assert_eq!(history.epochs.len(), 10);
    assert!(history.best_valid_error().is_some());
}

#[test]
fn checkpointed_engine_generalises_to_unseen_design() {
    // Train on tiny circuits, checkpoint through a file, reload into a new
    // engine and serve a reduced large design — Table III's inference path
    // exercised end to end through the facade.
    let mut engine = quick_engine();
    engine
        .fit(&NetlistSource::new(vec![
            generators::ripple_carry_adder(4),
            generators::parity_tree(8),
            generators::priority_arbiter(6),
        ]))
        .unwrap();

    let dir = std::env::temp_dir().join("deepgate_engine_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("checkpoint.json");
    engine.save_checkpoint(&path).unwrap();
    let restored = Engine::builder()
        .from_checkpoint_file(&path)
        .unwrap()
        .build()
        .unwrap();

    let large = engine
        .prepare(&LargeDesignSource::new(LargeDesign::Arbiter, 0.05))
        .unwrap();
    let original_error = engine.evaluate(&large).unwrap();
    let restored_error = restored.evaluate(&large).unwrap();
    assert!((original_error - restored_error).abs() < 1e-6);
    // An error of 0.5 would mean the model is no better than predicting the
    // complement; even a briefly trained model should do clearly better.
    assert!(restored_error < 0.45, "error {restored_error}");

    // The restored engine serves the same predictions through a session.
    let session = restored.into_session();
    let batch = session.predict_batch(&large).unwrap();
    assert_eq!(batch.len(), large.len());
    assert_eq!(batch[0].len(), large[0].num_nodes);
}

#[test]
fn untransformed_and_transformed_graphs_share_the_pipeline() {
    // The Table IV ablation uses both encodings; both must flow through the
    // same engine pipeline, selected by one builder switch.
    let raw_engine = Engine::builder()
        .model(DeepGateConfig {
            hidden_dim: 8,
            num_iterations: 1,
            regressor_hidden: 4,
            feature_dim: FeatureEncoding::AllGates.dimension(),
            ..DeepGateConfig::default()
        })
        .transform_to_aig(false)
        .num_patterns(4_096)
        .label_seed(3)
        .build()
        .unwrap();
    let source = NetlistSource::from(generators::counter_next_state(5));
    let raw: Vec<CircuitGraph> = raw_engine.prepare(&source).unwrap();
    assert_eq!(
        raw[0].features.cols(),
        FeatureEncoding::AllGates.dimension()
    );

    let aig_engine = quick_engine();
    let transformed = aig_engine.prepare(&source).unwrap();
    assert_eq!(transformed[0].features.cols(), 3);
    // Both prepared variants carry simulated probabilities for every node.
    for graph in [&raw[0], &transformed[0]] {
        assert!(graph
            .labels
            .as_ref()
            .unwrap()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }
}
