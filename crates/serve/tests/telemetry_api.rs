//! Integration tests of the telemetry surface: the `metrics` /
//! `metrics_text` wire verbs, consistency of the counters and histograms
//! under concurrent load, and the slow-request log counter.

use deepgate::core::DeepGateConfig;
use deepgate::prelude::*;
use deepgate_serve::{ServeConfig, Server};
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

const FULL_ADDER: &str = "INPUT(a)\nINPUT(b)\nINPUT(cin)\nOUTPUT(sum)\nOUTPUT(cout)\nx = XOR(a, b)\nsum = XOR(x, cin)\ng1 = AND(a, b)\ng2 = AND(x, cin)\ncout = OR(g1, g2)\n";

fn quick_engine() -> Engine {
    Engine::builder()
        .model(DeepGateConfig {
            hidden_dim: 8,
            num_iterations: 2,
            regressor_hidden: 4,
            ..DeepGateConfig::default()
        })
        .build()
        .expect("valid configuration")
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("server is listening");
        let reader = BufReader::new(stream.try_clone().expect("clone socket"));
        Client {
            reader,
            writer: stream,
        }
    }

    fn roundtrip(&mut self, request: &str) -> Value {
        self.writer
            .write_all(format!("{request}\n").as_bytes())
            .expect("request written");
        self.writer.flush().expect("request flushed");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("response arrives");
        serde_json::from_str(&line).expect("response is JSON")
    }

    /// Scrapes the `metrics` verb and returns the metrics object.
    fn scrape(&mut self) -> Value {
        let response = self.roundtrip(r#"{"id": "m", "op": "metrics"}"#);
        response
            .as_object()
            .and_then(|o| o.get("metrics"))
            .cloned()
            .expect("metrics response carries a `metrics` object")
    }
}

/// A distinct `width`-input AND-tree circuit per width, so the hammer
/// traffic exercises caching, deduplication and multi-circuit batches at
/// once. Distinct input counts guarantee distinct structural fingerprints —
/// the AIG transform simplifies away repeated-literal and inverter-chain
/// tricks, so gate-level variations of the same inputs can collapse.
fn chain_bench(width: usize) -> String {
    let mut bench = String::new();
    for i in 0..width {
        bench.push_str(&format!("INPUT(x{i})\n"));
    }
    bench.push_str("OUTPUT(y)\nw1 = AND(x0, x1)\n");
    for i in 2..width {
        bench.push_str(&format!("w{i} = AND(w{}, x{i})\n", i - 1));
    }
    bench.push_str(&format!("y = NOT(w{})\n", width - 1));
    bench
}

fn counter(metrics: &Value, name: &str) -> u64 {
    let counters = metrics.as_object().expect("metrics object")["counters"]
        .as_object()
        .expect("counters object");
    match counters.get(name) {
        Some(Value::UInt(v)) => *v,
        None => 0,
        other => panic!("counter `{name}` is not an unsigned integer: {other:?}"),
    }
}

fn histogram<'a>(metrics: &'a Value, name: &str) -> &'a std::collections::BTreeMap<String, Value> {
    metrics.as_object().expect("metrics object")["histograms"]
        .as_object()
        .expect("histograms object")[name]
        .as_object()
        .unwrap_or_else(|| panic!("histogram `{name}` missing"))
}

fn uint(fields: &std::collections::BTreeMap<String, Value>, key: &str) -> u64 {
    match &fields[key] {
        Value::UInt(v) => *v,
        other => panic!("`{key}` is not an unsigned integer: {other:?}"),
    }
}

/// Asserts the invariants every histogram must satisfy within ONE snapshot:
/// the bucket counts sum to `count`, and the percentiles are monotone up to
/// the exact maximum.
fn assert_histogram_consistent(metrics: &Value, name: &str) {
    let h = histogram(metrics, name);
    let count = uint(h, "count");
    let bucket_total: u64 = h["buckets"]
        .as_array()
        .expect("buckets array")
        .iter()
        .map(|pair| {
            let pair = pair.as_array().expect("bucket pair");
            match &pair[1] {
                Value::UInt(n) => *n,
                other => panic!("bucket count is not an unsigned integer: {other:?}"),
            }
        })
        .sum();
    assert_eq!(
        bucket_total, count,
        "`{name}`: bucket counts must sum to the snapshot count"
    );
    let (p50, p90, p99, max) = (
        uint(h, "p50"),
        uint(h, "p90"),
        uint(h, "p99"),
        uint(h, "max"),
    );
    assert!(
        p50 <= p90 && p90 <= p99 && p99 <= max,
        "`{name}`: percentiles must be monotone, got p50={p50} p90={p90} p99={p99} max={max}"
    );
}

#[test]
fn hammer_metrics_stay_consistent_under_concurrent_load() {
    const CLIENTS: usize = 4;
    const REQUESTS_PER_CLIENT: usize = 12;
    let server = Server::start(
        quick_engine(),
        ServeConfig {
            max_batch: 4,
            batch_window: Duration::from_millis(1),
            workers: 2,
            ..ServeConfig::default()
        },
    )
    .expect("server binds");
    let addr = server.local_addr();

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connects");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut writer = stream;
                for r in 0..REQUESTS_PER_CLIENT {
                    // Three distinct circuits cycled across all clients:
                    // plenty of cache hits and within-batch duplicates.
                    let bench = chain_bench(2 + (c + r) % 3);
                    let request = serde_json::to_string(&Value::Object(
                        [
                            ("id".to_string(), Value::UInt(r as u64)),
                            ("bench".to_string(), Value::Str(bench)),
                        ]
                        .into_iter()
                        .collect(),
                    ))
                    .expect("request serialises");
                    writer
                        .write_all(format!("{request}\n").as_bytes())
                        .expect("request written");
                    let mut line = String::new();
                    reader.read_line(&mut line).expect("response arrives");
                    let response: Value = serde_json::from_str(&line).expect("JSON response");
                    assert!(
                        response
                            .as_object()
                            .is_some_and(|o| o.contains_key("probs")),
                        "predict failed mid-hammer: {line}"
                    );
                }
            })
        })
        .collect();

    // Scrape while the hammer runs: every snapshot must be internally
    // consistent, and counters must be monotone across snapshots.
    let mut observer = Client::connect(&server);
    let mut last_predicts = 0u64;
    for _ in 0..5 {
        let metrics = observer.scrape();
        for name in ["request_latency_ns", "batch_size", "batch_latency_ns"] {
            assert_histogram_consistent(&metrics, name);
        }
        let predicts = counter(&metrics, "requests_predict_total");
        assert!(
            predicts >= last_predicts,
            "counter went backwards: {last_predicts} -> {predicts}"
        );
        last_predicts = predicts;
        std::thread::sleep(Duration::from_millis(2));
    }

    for client in clients {
        client.join().expect("client thread panicked");
    }

    // Quiescent: exact accounting. Every series below comes from ONE
    // `metrics` response.
    let total = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
    let metrics = observer.scrape();

    assert_eq!(counter(&metrics, "requests_predict_total"), total);
    assert_eq!(counter(&metrics, "scheduler_submitted_total"), total);
    assert_eq!(counter(&metrics, "scheduler_completed_total"), total);
    assert_eq!(counter(&metrics, "scheduler_failed_total"), 0);
    assert_eq!(counter(&metrics, "request_errors_total"), 0);

    // The resilience series are on the surface from the first scrape, and a
    // healthy, deadline-free run trips none of them.
    let counters = metrics.as_object().expect("metrics object")["counters"]
        .as_object()
        .expect("counters object");
    for name in [
        "scheduler_deadline_shed_total",
        "worker_panics_recovered_total",
        "worker_respawns_total",
        "request_panics_recovered_total",
        "connections_reaped_total",
        "connections_rejected_total",
        "write_timeouts_total",
    ] {
        assert_eq!(
            counters.get(name),
            Some(&Value::UInt(0)),
            "`{name}` must exist and be zero in a fault-free run"
        );
    }

    // The request-latency histogram counts exactly the predict requests,
    // and every stage that runs on every predict matches it.
    for name in [
        "request_latency_ns",
        "stage_parse_ns",
        "stage_infer_ns",
        "stage_respond_ns",
    ] {
        assert_histogram_consistent(&metrics, name);
        assert_eq!(
            uint(histogram(&metrics, name), "count"),
            total,
            "`{name}` must record once per predict request"
        );
    }

    // Cache accounting: every predict resolves through exactly one of the
    // three outcomes, and the stage histograms agree — `Encode` runs unless
    // the text memo hit, `Plan` only on a full miss.
    let text_hits = counter(&metrics, "cache_text_hits_total");
    let fingerprint_hits = counter(&metrics, "cache_fingerprint_hits_total");
    let misses = counter(&metrics, "cache_misses_total");
    assert_eq!(text_hits + fingerprint_hits + misses, total);
    // At least one miss per distinct circuit; concurrent first requests of
    // the same circuit may each count a legitimate miss before the first
    // insert lands.
    assert!(
        (3..=total).contains(&misses),
        "three distinct circuits were served, got {misses} misses"
    );
    assert_eq!(
        uint(histogram(&metrics, "stage_encode_ns"), "count"),
        fingerprint_hits + misses
    );
    assert_eq!(uint(histogram(&metrics, "stage_plan_ns"), "count"), misses);

    // Batch accounting: one `batch_size` record per executed batch, whose
    // sum is every batched request; one `batch_latency_ns` record too.
    let batches = counter(&metrics, "scheduler_batches_total");
    let batch_size = histogram(&metrics, "batch_size");
    assert_eq!(uint(batch_size, "count"), batches);
    assert_eq!(
        uint(batch_size, "sum"),
        counter(&metrics, "scheduler_batched_requests_total")
    );
    assert_eq!(uint(batch_size, "sum"), total);
    assert_eq!(
        uint(histogram(&metrics, "batch_latency_ns"), "count"),
        batches
    );

    // Nothing is queued once the hammer has drained.
    let gauges = metrics.as_object().expect("metrics object")["gauges"]
        .as_object()
        .expect("gauges object");
    assert_eq!(gauges["queue_depth"], Value::UInt(0));
    assert!(counter(&metrics, "connections_accepted_total") >= (CLIENTS + 1) as u64);

    // The direct API view agrees with the wire view at quiescence.
    let snapshot = server.metrics().snapshot();
    assert_eq!(snapshot.counter("requests_predict_total"), total);
    let stats = server.stats();
    assert_eq!(stats.scheduler.completed, total);
    assert_eq!(stats.cache.hits, text_hits + fingerprint_hits);
    server.shutdown();
}

#[test]
fn metrics_text_verb_renders_prometheus_exposition() {
    let server = Server::start(quick_engine(), ServeConfig::default()).expect("server binds");
    let mut client = Client::connect(&server);
    let request = serde_json::to_string(&Value::Object(
        [
            ("id".to_string(), Value::UInt(1)),
            ("bench".to_string(), Value::Str(FULL_ADDER.to_string())),
        ]
        .into_iter()
        .collect(),
    ))
    .expect("request serialises");
    client.roundtrip(&request);

    let response = client.roundtrip(r#"{"id": 2, "op": "metrics_text"}"#);
    let Some(Value::Str(text)) = response.as_object().and_then(|o| o.get("metrics_text")) else {
        panic!("expected a `metrics_text` string, got {response:?}");
    };
    assert!(text.contains("# TYPE deepgate_requests_predict_total counter"));
    assert!(text.contains("deepgate_requests_predict_total 1"));
    assert!(text.contains("# TYPE deepgate_request_latency_ns histogram"));
    assert!(text.contains("deepgate_request_latency_ns_count 1"));
    assert!(text.contains("deepgate_request_latency_ns_bucket{le=\"+Inf\"} 1"));
    assert!(text.contains("# TYPE deepgate_queue_depth gauge"));
    assert!(text.contains("deepgate_batch_size_sum 1"));
    assert!(text.contains("deepgate_gnn_levels_total"));
    server.shutdown();
}

#[test]
fn zero_slow_threshold_counts_every_predict() {
    let server = Server::start(
        quick_engine(),
        ServeConfig {
            slow_request_threshold: Some(Duration::ZERO),
            ..ServeConfig::default()
        },
    )
    .expect("server binds");
    let mut client = Client::connect(&server);
    let request = serde_json::to_string(&Value::Object(
        [("bench".to_string(), Value::Str(FULL_ADDER.to_string()))]
            .into_iter()
            .collect(),
    ))
    .expect("request serialises");
    for _ in 0..3 {
        client.roundtrip(&request);
    }
    // Non-predict verbs never hit the slow log.
    client.roundtrip(r#"{"op": "stats"}"#);
    let metrics = client.scrape();
    assert_eq!(counter(&metrics, "slow_requests_total"), 3);
    server.shutdown();
}

#[test]
fn quantized_server_records_kernel_series() {
    let server = Server::start(
        quick_engine(),
        ServeConfig {
            quantize: QuantMode::Int8,
            ..ServeConfig::default()
        },
    )
    .expect("server binds");
    let mut client = Client::connect(&server);
    let request = serde_json::to_string(&Value::Object(
        [
            ("id".to_string(), Value::UInt(1)),
            ("bench".to_string(), Value::Str(FULL_ADDER.to_string())),
        ]
        .into_iter()
        .collect(),
    ))
    .expect("request serialises");
    let response = client.roundtrip(&request);
    assert!(
        response
            .as_object()
            .is_some_and(|o| o.contains_key("probs")),
        "quantized predict failed: {response:?}"
    );

    let metrics = client.scrape();
    // The quantized kernel counts itself once per predict...
    assert!(
        counter(&metrics, "gnn_quantized_predicts_total") >= 1,
        "a quantized predict must bump gnn_quantized_predicts_total"
    );
    // ...and records each CSR level's width along the way.
    let widths = histogram(&metrics, "gnn_csr_level_width");
    assert!(
        uint(widths, "count") > 0,
        "gnn_csr_level_width must record per processed level"
    );
    assert_histogram_consistent(&metrics, "gnn_csr_level_width");
    server.shutdown();
}

#[test]
fn per_verb_counters_split_the_traffic() {
    let server = Server::start(quick_engine(), ServeConfig::default()).expect("server binds");
    let mut client = Client::connect(&server);
    client.roundtrip(r#"{"op": "stats"}"#);
    client.roundtrip(r#"{"op": "metrics_text"}"#);
    client.roundtrip(r#"{"op": "frobnicate"}"#);
    client.roundtrip("not json at all");
    let metrics = client.scrape();
    assert_eq!(counter(&metrics, "requests_stats_total"), 1);
    assert_eq!(counter(&metrics, "requests_metrics_text_total"), 1);
    assert_eq!(counter(&metrics, "requests_metrics_total"), 1);
    assert_eq!(counter(&metrics, "requests_unknown_total"), 2);
    assert_eq!(counter(&metrics, "request_errors_total"), 2);
    assert_eq!(counter(&metrics, "requests_predict_total"), 0);
    // No predicts: the stage histograms stay empty.
    assert_eq!(uint(histogram(&metrics, "request_latency_ns"), "count"), 0);
    server.shutdown();
}
