//! Tests of the unified Engine facade: CircuitSource ingestion, Result-based
//! error reporting (no panics on user input) and the batched
//! InferenceSession serving path.

use deepgate::dataset::generators;
use deepgate::gnn::FeatureEncoding;
use deepgate::prelude::*;

const FULL_ADDER: &str = "\
INPUT(a)
INPUT(b)
INPUT(cin)
OUTPUT(sum)
OUTPUT(cout)
x = XOR(a, b)
sum = XOR(x, cin)
g1 = AND(a, b)
g2 = AND(x, cin)
cout = OR(g1, g2)
";

/// A tiny netlist inside the PI/AND/NOT alphabet the AIG encoding accepts.
fn and_only_netlist() -> Netlist {
    let mut n = Netlist::new("and_chain");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let c = n.add_input("c");
    let g1 = n.add_gate(GateKind::And, &[a, b]).unwrap();
    let g2 = n.add_gate(GateKind::And, &[g1, c]).unwrap();
    n.mark_output(g2, "y");
    n
}

fn quick_engine() -> Engine {
    Engine::builder()
        .model(DeepGateConfig {
            hidden_dim: 12,
            num_iterations: 2,
            regressor_hidden: 8,
            ..DeepGateConfig::default()
        })
        .trainer(TrainerConfig {
            epochs: 5,
            learning_rate: 3e-3,
            ..TrainerConfig::default()
        })
        .num_patterns(1_024)
        .build()
        .expect("valid configuration")
}

#[test]
fn bench_text_to_predict_batch_end_to_end() {
    // BENCH string → Engine::prepare → train → InferenceSession::predict_batch.
    let mut engine = quick_engine();
    let circuits = engine
        .prepare(&BenchText::new("full_adder", FULL_ADDER))
        .unwrap();
    assert_eq!(circuits.len(), 1);
    assert!(circuits[0].labels.is_some());
    engine.train(&circuits, &[]).unwrap();

    let session = engine.session();
    let batch = session.predict_batch(&circuits).unwrap();
    assert_eq!(batch.len(), 1);
    assert_eq!(batch[0].len(), circuits[0].num_nodes);
    assert!(batch[0].iter().all(|&p| (0.0..=1.0).contains(&p)));

    // Batched predictions agree with the single-circuit path.
    let single = session.predict(&circuits[0]).unwrap();
    for (a, b) in single.iter().zip(&batch[0]) {
        assert!((a - b).abs() < 1e-6);
    }
}

#[test]
fn verilog_source_flows_through_the_same_pipeline() {
    let netlist = generators::comparator(3);
    let verilog = deepgate::netlist::verilog::write(&netlist);
    let engine = quick_engine();
    let circuits = engine.prepare(&VerilogText::new(verilog)).unwrap();
    assert_eq!(circuits.len(), 1);
    assert_eq!(circuits[0].encoding, FeatureEncoding::AigGates);
    assert!(circuits[0].labels.is_some());
}

#[test]
fn aiger_binary_flows_through_the_engine_in_both_latch_modes() {
    // A random sequential AIG serialised to binary AIGER must prepare,
    // train and predict end-to-end under both latch treatments.
    let aig = deepgate::aig::aiger::random_aig(21, 3, 2, 16);
    let bytes = deepgate::aig::aiger::write_aig(&aig).expect("valid aig serialises");

    let mut engine = quick_engine();
    let cut = engine
        .prepare(&AigerBytes::new("seq", bytes.clone()).latch_policy(LatchPolicy::Cut))
        .unwrap();
    let unrolled = engine
        .prepare(&AigerBytes::new("seq", bytes).latch_policy(LatchPolicy::Unroll(2)))
        .unwrap();
    assert_eq!(cut.len(), 1);
    assert_eq!(unrolled.len(), 1);
    assert_ne!(
        cut[0].fingerprint(),
        unrolled[0].fingerprint(),
        "latch policies must yield structurally distinct graphs"
    );
    engine.train(&cut, &[]).unwrap();
    let probs = engine.session().predict(&unrolled[0]).unwrap();
    assert_eq!(probs.len(), unrolled[0].num_nodes);
    assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
}

#[test]
fn malformed_aiger_is_an_error_not_a_panic() {
    let engine = quick_engine();
    let err = engine
        .prepare(&AigerBytes::new("bad", b"aig 1 0 0 0 1\n".to_vec()))
        .unwrap_err();
    assert!(matches!(err, DeepGateError::Aig(_)));
}

#[test]
fn suite_source_feeds_fit() {
    let mut engine = quick_engine();
    let history = engine
        .fit(&SuiteSource::new(SuiteKind::Epfl, 2).seed(5).size_scale(0.1))
        .unwrap();
    assert_eq!(history.epochs.len(), 5);
}

#[test]
fn training_on_unlabelled_circuits_is_an_error_not_a_panic() {
    let netlist = and_only_netlist();
    let unlabelled = CircuitGraph::from_netlist(&netlist, FeatureEncoding::AigGates, None);
    let mut engine = quick_engine();
    let err = engine
        .train(std::slice::from_ref(&unlabelled), &[])
        .unwrap_err();
    assert!(matches!(
        err,
        DeepGateError::Gnn(GnnError::UnlabelledCircuit { .. })
    ));
    let err = engine.evaluate(&[unlabelled]).unwrap_err();
    assert!(matches!(
        err,
        DeepGateError::Gnn(GnnError::UnlabelledCircuit { .. })
    ));
}

#[test]
fn prediction_label_length_mismatch_is_an_error_not_a_panic() {
    use deepgate::gnn::evaluate_prediction_error;
    let engine = quick_engine();
    let circuits = engine
        .prepare(&BenchText::new("full_adder", FULL_ADDER))
        .unwrap();
    let too_short = vec![0.5f32; 2];
    let err = evaluate_prediction_error(&too_short, &circuits[0]).unwrap_err();
    assert!(matches!(err, GnnError::LengthMismatch { got: 2, .. }));
}

#[test]
fn encoding_mismatch_is_an_error_not_a_panic() {
    // An AIG-configured engine fed a 12-feature raw-netlist graph must
    // refuse politely.
    let netlist = generators::parity_tree(4);
    let mut wrong = CircuitGraph::from_netlist(&netlist, FeatureEncoding::AllGates, None);
    wrong.set_labels(vec![0.5; wrong.num_nodes]);
    let mut engine = quick_engine();
    assert!(matches!(
        engine.predict(&wrong).unwrap_err(),
        DeepGateError::Gnn(GnnError::EncodingMismatch { .. })
    ));
    assert!(matches!(
        engine.embeddings(&wrong).unwrap_err(),
        DeepGateError::Gnn(GnnError::EncodingMismatch { .. })
    ));
    assert!(matches!(
        engine.train(&[wrong.clone()], &[]).unwrap_err(),
        DeepGateError::Gnn(GnnError::EncodingMismatch { .. })
    ));
    let session = engine.session();
    assert!(matches!(
        session.predict_batch(&[wrong]).unwrap_err(),
        DeepGateError::Gnn(GnnError::EncodingMismatch { .. })
    ));
}

#[test]
fn builder_rejects_inconsistent_configuration() {
    assert!(matches!(
        Engine::builder().num_patterns(0).build().unwrap_err(),
        DeepGateError::Config(_)
    ));
    assert!(matches!(
        Engine::builder()
            .model(DeepGateConfig {
                hidden_dim: 0,
                ..DeepGateConfig::default()
            })
            .build()
            .unwrap_err(),
        DeepGateError::Config(_)
    ));
    assert!(matches!(
        Engine::builder()
            .transform_to_aig(false) // needs feature_dim 12, default is 3
            .build()
            .unwrap_err(),
        DeepGateError::Config(_)
    ));
    assert!(matches!(
        Engine::builder()
            .from_checkpoint_json("not json")
            .build()
            .unwrap_err(),
        DeepGateError::Nn(_)
    ));
    // A checkpoint carries its own feature_dim; restoring an AIG-trained
    // model into a raw-netlist pipeline must fail at build time.
    let aig_checkpoint = quick_engine().checkpoint_json().unwrap();
    assert!(matches!(
        Engine::builder()
            .from_checkpoint_json(aig_checkpoint)
            .transform_to_aig(false)
            .build()
            .unwrap_err(),
        DeepGateError::Config(_)
    ));
}

#[test]
fn plan_from_differently_configured_model_is_rejected() {
    // Prepare under a model without skip connections, predict under one
    // with them: the plan's edge lists would be wrong, so this must error.
    let engine = quick_engine();
    let circuits = engine
        .prepare(&BenchText::new("full_adder", FULL_ADDER))
        .unwrap();
    let no_skip = Engine::builder()
        .model(DeepGateConfig {
            hidden_dim: 12,
            num_iterations: 2,
            regressor_hidden: 8,
            use_skip_connections: false,
            ..DeepGateConfig::default()
        })
        .build()
        .unwrap()
        .into_session();
    let prepared = no_skip.prepare(circuits[0].clone());
    let with_skip = engine.into_session();
    let mut out = Vec::new();
    assert!(matches!(
        with_skip.predict_into(&prepared, &mut out).unwrap_err(),
        DeepGateError::Gnn(GnnError::PlanMismatch)
    ));
}

#[test]
fn train_error_leaves_weights_untouched() {
    // An encoding mismatch anywhere in the batch must be caught before any
    // optimiser step mutates the model.
    let mut engine = quick_engine();
    let good = engine
        .prepare(&BenchText::new("full_adder", FULL_ADDER))
        .unwrap();
    let mut wrong =
        CircuitGraph::from_netlist(&generators::parity_tree(4), FeatureEncoding::AllGates, None);
    wrong.set_labels(vec![0.5; wrong.num_nodes]);
    let before = engine.predict(&good[0]).unwrap();
    let err = engine.train(&[good[0].clone(), wrong], &[]).unwrap_err();
    assert!(matches!(
        err,
        DeepGateError::Gnn(GnnError::EncodingMismatch { .. })
    ));
    let after = engine.predict(&good[0]).unwrap();
    assert_eq!(before, after, "weights changed despite train() erroring");
}

#[test]
fn empty_batch_is_reported() {
    let engine = quick_engine();
    let session = engine.into_session();
    assert!(matches!(
        session.predict_batch(&[]).unwrap_err(),
        DeepGateError::EmptyBatch
    ));
    assert!(matches!(
        session.prepare_batch(&[]).unwrap_err(),
        DeepGateError::EmptyBatch
    ));
}

#[test]
fn batched_predictions_agree_with_single_circuit_predictions() {
    // The fused-union batch path must reproduce per-circuit results.
    let engine = quick_engine();
    let circuits = engine
        .prepare(
            &SuiteSource::new(SuiteKind::Iwls, 3)
                .seed(11)
                .size_scale(0.1),
        )
        .unwrap();
    let session = engine.into_session();
    let batch = session.predict_batch(&circuits).unwrap();
    assert_eq!(batch.len(), circuits.len());
    for (circuit, predictions) in circuits.iter().zip(&batch) {
        let single = session.predict(circuit).unwrap();
        assert_eq!(single.len(), predictions.len());
        for (x, y) in single.iter().zip(predictions) {
            assert!((x - y).abs() < 1e-6);
        }
    }
}

#[test]
fn predict_batch_results_are_index_aligned_with_inputs() {
    // The batch is split into per-worker union chunks that finish in
    // arbitrary order; results must nevertheless come back index-aligned
    // with the inputs. Circuits of distinct sizes make any permutation
    // detectable by length alone, and values are checked against the
    // single-circuit path for exact identity.
    let engine = quick_engine();
    let mut circuits = Vec::new();
    for (i, count) in [(0u64, 4usize), (1, 2), (2, 5), (3, 1), (4, 3)] {
        circuits.extend(
            engine
                .prepare(
                    &SuiteSource::new(SuiteKind::Epfl, count)
                        .seed(100 + i)
                        .size_scale(0.08),
                )
                .unwrap(),
        );
    }
    // Distinct node counts guarantee misrouting would change lengths.
    let sizes: Vec<usize> = circuits.iter().map(|c| c.num_nodes).collect();
    assert!(sizes.iter().any(|&s| s != sizes[0]), "sizes must vary");

    let session = engine.into_session();
    let batch = session.predict_batch(&circuits).unwrap();
    assert_eq!(batch.len(), circuits.len());
    for (index, (circuit, predictions)) in circuits.iter().zip(&batch).enumerate() {
        assert_eq!(
            predictions.len(),
            circuit.num_nodes,
            "result {index} is not aligned with input {index}"
        );
        let single = session.predict(circuit).unwrap();
        assert_eq!(
            &single, predictions,
            "result {index} differs from the single-circuit path"
        );
    }

    // The prepared/steady-state path preserves the same order across
    // repeated calls into reused buffers.
    let prepared = session.prepare_batch(&circuits).unwrap();
    let mut out = Vec::new();
    for _ in 0..2 {
        session.predict_batch_into(&prepared, &mut out).unwrap();
        assert_eq!(out, batch);
    }
}

#[test]
fn prepared_batches_reuse_buffers_and_agree_with_fresh_predictions() {
    let engine = quick_engine();
    let circuits = engine
        .prepare(
            &SuiteSource::new(SuiteKind::Iwls, 3)
                .seed(11)
                .size_scale(0.1),
        )
        .unwrap();
    let session = engine.into_session();
    let fresh = session.predict_batch(&circuits).unwrap();

    let prepared = session.prepare_batch(&circuits).unwrap();
    assert_eq!(prepared.len(), circuits.len());
    assert!(!prepared.is_empty());
    let mut out = Vec::new();
    // Two rounds through the same buffers: steady-state serving.
    for _ in 0..2 {
        session.predict_batch_into(&prepared, &mut out).unwrap();
        assert_eq!(out.len(), fresh.len());
        for (a, b) in fresh.iter().zip(&out) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }

    // The single-circuit prepared path agrees too.
    let single = session.prepare(circuits[0].clone());
    assert_eq!(single.circuit().num_nodes, circuits[0].num_nodes);
    let mut buf = Vec::new();
    session.predict_into(&single, &mut buf).unwrap();
    for (x, y) in buf.iter().zip(&fresh[0]) {
        assert!((x - y).abs() < 1e-6);
    }
}

#[test]
fn session_iteration_override_changes_predictions() {
    let engine = quick_engine();
    let circuits = engine
        .prepare(&BenchText::new("full_adder", FULL_ADDER))
        .unwrap();
    let base = engine.session().predict(&circuits[0]).unwrap();
    let deeper = engine
        .session()
        .with_iterations(6)
        .predict(&circuits[0])
        .unwrap();
    assert!(base.iter().zip(&deeper).any(|(a, b)| (a - b).abs() > 1e-7));
}

#[test]
fn checkpoint_roundtrips_through_builder_json() {
    let engine = quick_engine();
    let json = engine.checkpoint_json().unwrap();
    let restored = Engine::builder()
        .from_checkpoint_json(json)
        .build()
        .unwrap();
    assert_eq!(restored.model_config(), engine.model_config());
    let circuits = engine
        .prepare(&BenchText::new("full_adder", FULL_ADDER))
        .unwrap();
    let a = engine.predict(&circuits[0]).unwrap();
    let b = restored.predict(&circuits[0]).unwrap();
    for (x, y) in a.iter().zip(&b) {
        assert!((x - y).abs() < 1e-6);
    }
}

#[test]
fn engine_metrics_record_every_pipeline_stage() {
    use deepgate::telemetry::Registry;
    use deepgate::EngineMetrics;
    use std::sync::Arc;

    let registry = Registry::new();
    let metrics = Arc::new(EngineMetrics::registered(&registry));
    let engine = Engine::builder()
        .model(DeepGateConfig {
            hidden_dim: 12,
            num_iterations: 2,
            regressor_hidden: 8,
            ..DeepGateConfig::default()
        })
        .metrics(Arc::clone(&metrics))
        .build()
        .unwrap();

    // Instrumented inference must be bit-identical to the plain path.
    let plain = quick_engine();
    let circuits = engine
        .prepare(&BenchText::new("full_adder", FULL_ADDER))
        .unwrap();
    let expected = {
        let c = plain
            .prepare(&BenchText::new("full_adder", FULL_ADDER))
            .unwrap();
        plain.predict(&c[0]).unwrap()
    };
    let session = engine.session();
    let prepared = session.prepare(circuits[0].clone());
    let mut out = Vec::new();
    session.predict_into(&prepared, &mut out).unwrap();
    assert_eq!(out, expected);

    // Batched path exercises fusion too.
    let batch = session
        .prepare_batch(&[circuits[0].clone(), circuits[0].clone()])
        .unwrap();
    let mut outs = Vec::new();
    session.predict_batch_into(&batch, &mut outs).unwrap();

    let snap = registry.snapshot();
    // One circuit ingested, plans built for the single and batched paths,
    // at least one union fused, and every prediction timed.
    assert_eq!(snap.histogram("engine_ingest_ns").unwrap().count, 1);
    assert!(snap.histogram("engine_plan_ns").unwrap().count >= 2);
    assert!(snap.histogram("engine_fuse_ns").unwrap().count >= 1);
    let predicts = snap.histogram("engine_predict_ns").unwrap().count;
    assert!(predicts >= 2);

    // The GNN kernel series follow the predictions: one circuit-size record
    // per prediction, one regression pass per prediction, and level
    // aggregations accumulate across recurrence iterations.
    assert_eq!(snap.histogram("gnn_circuit_nodes").unwrap().count, predicts);
    assert_eq!(snap.histogram("gnn_regress_ns").unwrap().count, predicts);
    assert!(snap.histogram("gnn_level_agg_ns").unwrap().count > 0);
    assert!(snap.counter("gnn_levels_total") > 0);

    // The engine hands its handles to every session it opens.
    assert!(engine.engine_metrics().is_some());
}
