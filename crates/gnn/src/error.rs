use std::fmt;

/// Errors produced by the GNN layer: label bookkeeping and model/circuit
/// compatibility problems that used to panic in earlier revisions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GnnError {
    /// A labelled operation (loss, evaluation) was given a circuit graph
    /// without labels attached.
    UnlabelledCircuit {
        /// Design name of the offending circuit.
        name: String,
    },
    /// Predictions and labels have different lengths.
    LengthMismatch {
        /// Design name of the offending circuit.
        name: String,
        /// Label count of the circuit.
        expected: usize,
        /// Prediction count supplied.
        got: usize,
    },
    /// A circuit's feature encoding does not match the model configuration
    /// (e.g. a 12-feature untransformed netlist fed to a 3-feature AIG
    /// model).
    EncodingMismatch {
        /// Feature dimensionality the model was built for.
        expected: usize,
        /// Feature dimensionality of the circuit graph.
        got: usize,
    },
    /// A precomputed inference plan does not belong to the circuit/model
    /// pair it was used with (e.g. prepared under a different
    /// skip-connection configuration).
    PlanMismatch,
}

impl fmt::Display for GnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GnnError::UnlabelledCircuit { name } => {
                write!(f, "circuit `{name}` has no labels attached")
            }
            GnnError::LengthMismatch {
                name,
                expected,
                got,
            } => write!(
                f,
                "circuit `{name}`: {got} predictions for {expected} labels"
            ),
            GnnError::EncodingMismatch { expected, got } => write!(
                f,
                "circuit feature dimension {got} does not match the model's {expected}"
            ),
            GnnError::PlanMismatch => write!(
                f,
                "inference plan does not belong to this circuit/model pair"
            ),
        }
    }
}

impl std::error::Error for GnnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_traits() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GnnError>();
        assert!(GnnError::UnlabelledCircuit { name: "c17".into() }
            .to_string()
            .contains("c17"));
        assert!(GnnError::LengthMismatch {
            name: "x".into(),
            expected: 5,
            got: 2
        }
        .to_string()
        .contains('5'));
        assert!(GnnError::EncodingMismatch {
            expected: 3,
            got: 12
        }
        .to_string()
        .contains("12"));
    }
}
