//! The CSR level-packed inference kernel.
//!
//! The tape-free prediction path used to walk the pointer-shaped
//! [`CircuitGraph`] directly: every level batch gathered scattered node rows
//! into fresh tensors, ran the aggregator and GRU on them, and scattered the
//! results back — one allocation per step, one cache miss per row. Following
//! the DLGN line (flat, cache-dense gate arrays), this module compiles a
//! circuit once into an arena layout and a model once into flat weight
//! arrays, then fuses each level's gather + GEMM + combine into a single
//! dense slice walk:
//!
//! * [`InferencePlan`] permutes the nodes into **level-contiguous order**
//!   (reverse-propagation targets first within each level, so both the
//!   forward and the reverse GRU update become dense in-place sub-slice
//!   writes) and stores each level's fan-in adjacency as **CSR**: one
//!   `offsets` array and one flat `edge_src` array per level, skip edges
//!   appended to their target's row with the positional-encoding attribute
//!   rows precomputed.
//! * [`CompiledKernel`] copies the model's weights out of the parameter
//!   store into row-major flat arrays ([`QuantMode::F32`]) or additionally
//!   into per-tensor symmetric int8 with f32 accumulation
//!   ([`QuantMode::Int8`]), and runs the whole recurrence over the packed
//!   arrays without touching the store or allocating per level.
//!
//! **Exactness contract:** in `F32` mode the kernel reproduces the legacy
//! tensor path ([`crate::DagRecGnn::predict_reference_into`]) *bit-exactly* —
//! every accumulation runs in the same order over the same values. The
//! property suite `tests/csr_parity.rs` asserts this across random circuits
//! and model shapes; `Int8` mode is gated on rank-order preservation of the
//! gate probabilities plus bounded max-abs drift.

use crate::aggregator::AggregatorParams;
use crate::{Aggregator, CircuitGraph, GnnError, GnnMetrics};
use deepgate_aig::recon::positional_encoding;
use deepgate_nn::{Activation, GruCell, Linear, Mlp, ParamStore, Tensor};
use std::fmt;
use std::str::FromStr;
use std::time::Instant;

/// Numeric mode of a [`CompiledKernel`]'s scoring pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QuantMode {
    /// Full-precision f32 kernel; bit-exact with the legacy tensor path.
    #[default]
    F32,
    /// Per-tensor symmetric int8 weights with per-row activation scales and
    /// i32 accumulation (dequantised to f32 between layers). Smaller and
    /// cache-friendlier weights at a bounded, rank-preserving drift in the
    /// output probabilities.
    Int8,
}

impl QuantMode {
    /// Stable lowercase label (used in cache keys, flags and logs).
    pub fn label(self) -> &'static str {
        match self {
            QuantMode::F32 => "f32",
            QuantMode::Int8 => "int8",
        }
    }
}

impl fmt::Display for QuantMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for QuantMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "f32" | "off" | "none" | "exact" => Ok(QuantMode::F32),
            "int8" | "i8" | "q8" => Ok(QuantMode::Int8),
            other => Err(format!(
                "unknown quantization mode `{other}` (expected `f32` or `int8`)"
            )),
        }
    }
}

/// One level's packed state: a contiguous target range and its fan-in
/// adjacency in CSR form.
#[derive(Debug, Clone)]
struct CsrLevel {
    /// First packed node index updated by this level.
    start: usize,
    /// One past the last packed node index updated by this level.
    end: usize,
    /// CSR row offsets into `edge_src` / `attr`; `offsets[i]..offsets[i+1]`
    /// are the edges of packed target `start + i`, ordinary fan-ins first
    /// (in circuit order) with the skip edge, if any, appended last — the
    /// same per-target order the legacy scatter walks.
    offsets: Vec<u32>,
    /// Packed source node index of every edge.
    edge_src: Vec<u32>,
    /// Flat `[num_edges, attr_dim]` edge attributes (positional encodings on
    /// skip edges, zeros elsewhere); empty when the plan has no attributes.
    attr: Vec<f32>,
}

/// A circuit compiled into the CSR arena layout consumed by
/// [`CompiledKernel::predict_into`].
///
/// Nodes are permuted into level-contiguous order so every level's update is
/// one dense sub-slice of the hidden-state arena; the permutation is undone
/// when results are written out, so callers see original node order.
#[derive(Debug, Clone)]
pub struct InferencePlan {
    num_nodes: usize,
    feature_dim: usize,
    attr_dim: usize,
    /// Original node index → packed index.
    perm: Vec<u32>,
    /// `[num_nodes, feature_dim]` one-hot features in packed order.
    features: Vec<f32>,
    /// Forward levels in ascending level order; each target range spans its
    /// whole level.
    forward: Vec<CsrLevel>,
    /// Reverse levels in descending level order; each target range is the
    /// fan-out-bearing prefix of its level.
    reverse: Vec<CsrLevel>,
}

impl InferencePlan {
    /// Compiles a circuit into the packed layout. `attr_dim` and
    /// `frequencies` come from the model configuration (0 attributes when
    /// skip connections are disabled).
    pub(crate) fn compile(circuit: &CircuitGraph, attr_dim: usize, frequencies: usize) -> Self {
        let n = circuit.num_nodes;
        assert!(n < u32::MAX as usize, "circuit too large for CSR plan");
        let f = circuit.encoding.dimension();

        // Reverse-propagation targets go first within their level so both
        // propagation directions update contiguous packed ranges.
        let mut is_rev = vec![false; n];
        for batch in &circuit.reverse_batches {
            for &t in &batch.targets {
                is_rev[t] = true;
            }
        }
        let mut by_level: Vec<Vec<u32>> = vec![Vec::new(); circuit.max_level + 1];
        for (id, &level) in circuit.levels.iter().enumerate() {
            by_level[level].push(id as u32);
        }
        let mut level_start = Vec::with_capacity(by_level.len() + 1);
        let mut inv: Vec<u32> = Vec::with_capacity(n);
        for nodes in &by_level {
            level_start.push(inv.len());
            inv.extend(nodes.iter().filter(|&&id| is_rev[id as usize]));
            inv.extend(nodes.iter().filter(|&&id| !is_rev[id as usize]));
        }
        level_start.push(n);
        let mut perm = vec![0u32; n];
        for (packed, &old) in inv.iter().enumerate() {
            perm[old as usize] = packed as u32;
        }

        let mut features = vec![0.0f32; n * f];
        for (packed, &old) in inv.iter().enumerate() {
            features[packed * f..(packed + 1) * f]
                .copy_from_slice(circuit.features.row(old as usize));
        }

        // Scratch reused across batches: target node → its segment index in
        // the current batch (stale entries are never read because each
        // batch's targets are rewritten before use).
        let mut seg_of = vec![u32::MAX; n];
        let mut per_seg: Vec<Vec<u32>> = Vec::new();

        let mut forward = Vec::with_capacity(circuit.forward_batches.len());
        for batch in &circuit.forward_batches {
            let start = level_start[batch.level];
            let end = level_start[batch.level + 1];
            assert_eq!(
                end - start,
                batch.targets.len(),
                "forward batch must cover every node of its level"
            );
            for (seg, &t) in batch.targets.iter().enumerate() {
                seg_of[t] = seg as u32;
            }
            per_seg.clear();
            per_seg.resize(batch.targets.len(), Vec::new());
            for (&src, &seg) in batch.edge_src.iter().zip(&batch.edge_seg) {
                per_seg[seg].push(perm[src]);
            }
            let mut offsets = Vec::with_capacity(end - start + 1);
            offsets.push(0u32);
            let mut edge_src = Vec::new();
            let mut attr = Vec::new();
            for &orig in &inv[start..end] {
                let old = orig as usize;
                let seg = seg_of[old] as usize;
                edge_src.extend_from_slice(&per_seg[seg]);
                if attr_dim > 0 {
                    for _ in 0..per_seg[seg].len() {
                        attr.extend(std::iter::repeat_n(0.0, attr_dim));
                    }
                    if let Some(skip) = circuit.skip_edge_for(old) {
                        edge_src.push(perm[skip.source]);
                        attr.extend(positional_encoding(skip.level_difference, frequencies));
                    }
                }
                offsets.push(edge_src.len() as u32);
            }
            forward.push(CsrLevel {
                start,
                end,
                offsets,
                edge_src,
                attr,
            });
        }

        let mut reverse = Vec::with_capacity(circuit.reverse_batches.len());
        for batch in &circuit.reverse_batches {
            let start = level_start[batch.level];
            // Reverse targets are the packed prefix of their level, in batch
            // order — guaranteed by the rev-first packing above.
            for (i, &t) in batch.targets.iter().enumerate() {
                assert_eq!(
                    perm[t] as usize,
                    start + i,
                    "reverse batch must be the packed prefix of its level"
                );
            }
            per_seg.clear();
            per_seg.resize(batch.targets.len(), Vec::new());
            for (&src, &seg) in batch.edge_src.iter().zip(&batch.edge_seg) {
                per_seg[seg].push(perm[src]);
            }
            let mut offsets = Vec::with_capacity(batch.targets.len() + 1);
            offsets.push(0u32);
            let mut edge_src = Vec::new();
            for seg_edges in &per_seg {
                edge_src.extend_from_slice(seg_edges);
                offsets.push(edge_src.len() as u32);
            }
            reverse.push(CsrLevel {
                start,
                end: start + batch.targets.len(),
                offsets,
                edge_src,
                attr: Vec::new(),
            });
        }

        InferencePlan {
            num_nodes: n,
            feature_dim: f,
            attr_dim,
            perm,
            features,
            forward,
            reverse,
        }
    }

    /// Number of forward level batches the plan covers.
    pub fn num_batches(&self) -> usize {
        self.forward.len()
    }

    /// Number of reverse level batches the plan covers.
    pub fn num_reverse_batches(&self) -> usize {
        self.reverse.len()
    }

    /// Number of circuit nodes the plan was built for.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Edge-attribute dimensionality the plan was built with.
    pub fn attr_dim(&self) -> usize {
        self.attr_dim
    }

    /// Whether this plan matches a circuit and a model's attribute width —
    /// the reuse guard of the serving layer.
    pub fn matches(&self, circuit: &CircuitGraph, attr_dim: usize) -> bool {
        self.num_nodes == circuit.num_nodes
            && self.feature_dim == circuit.encoding.dimension()
            && self.forward.len() == circuit.forward_batches.len()
            && self.reverse.len() == circuit.reverse_batches.len()
            && self.attr_dim == attr_dim
    }
}

/// Widest output dimension accumulated in a stack buffer. Accumulating into
/// a local array instead of the output slice keeps the partial sums out of
/// the `out`/weights alias analysis, which is worth >2x on the matvec loop;
/// wider layers fall back to heap scratch.
const ACC_WIDTH: usize = 128;

/// Reusable int8-mode row buffers: quantised activations (stored as exact
/// integer-valued f32, so the accumulation loop vectorises like the f32
/// path) and a heap accumulator for layers wider than [`ACC_WIDTH`].
#[derive(Debug, Default)]
struct QBuf {
    qf: Vec<f32>,
    acc: Vec<f32>,
}

/// A dense affine layer baked into flat row-major arrays, optionally with a
/// per-tensor symmetric int8 shadow copy.
#[derive(Debug, Clone)]
struct LinW {
    /// Row-major `[in_dim, out_dim]` weights.
    w: Vec<f32>,
    /// `[out_dim]` bias, empty for bias-free layers.
    b: Vec<f32>,
    in_dim: usize,
    out_dim: usize,
    /// Int8 weights + their per-tensor scale, present in `Int8` mode.
    q: Option<QuantW>,
}

#[derive(Debug, Clone)]
struct QuantW {
    /// Symmetric int8 weights (every value passes through an `i8` cast),
    /// widened to f32 once at compile time: products and sums of these
    /// integers (≤ 127·127 each) are exactly representable, so f32
    /// accumulation over them is exact integer arithmetic — and vectorises
    /// as wide as the f32 path.
    wf: Vec<f32>,
    scale: f32,
}

impl LinW {
    fn from_linear(store: &ParamStore, layer: &Linear, mode: QuantMode) -> Self {
        let wt: &Tensor = layer.weight_tensor(store);
        let w = wt.as_slice().to_vec();
        let b = layer
            .bias_tensor(store)
            .map(|t| t.as_slice().to_vec())
            .unwrap_or_default();
        let q = (mode == QuantMode::Int8).then(|| {
            let maxabs = w.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let scale = if maxabs == 0.0 { 0.0 } else { maxabs / 127.0 };
            let wf = w
                .iter()
                .map(|&v| {
                    if scale == 0.0 {
                        0
                    } else {
                        (v / scale).round().clamp(-127.0, 127.0) as i8
                    }
                })
                .map(|q| q as f32)
                .collect();
            QuantW { wf, scale }
        });
        LinW {
            w,
            b,
            in_dim: layer.in_features(),
            out_dim: layer.out_features(),
            q,
        }
    }

    /// `out = row @ W (+ b)`. The f32 path accumulates over `k` in ascending
    /// order with the zero-skip of `Tensor::matmul` and adds the bias in a
    /// separate pass — bit-exact with `Linear::forward_tensor`.
    fn apply_row(&self, row: &[f32], out: &mut [f32], qbuf: &mut QBuf) {
        debug_assert_eq!(row.len(), self.in_dim);
        debug_assert_eq!(out.len(), self.out_dim);
        // Common widths go through register-resident fixed-width banks (see
        // [`accum1`]); anything else falls through to the runtime-width loop.
        match self.out_dim {
            8 => return self.apply_row_fixed::<8>(row, out, qbuf),
            16 => return self.apply_row_fixed::<16>(row, out, qbuf),
            32 => return self.apply_row_fixed::<32>(row, out, qbuf),
            64 => return self.apply_row_fixed::<64>(row, out, qbuf),
            _ => {}
        }
        match &self.q {
            None if self.out_dim == 1 => {
                // Scalar fast path for projection-to-score layers (attention
                // key/query, regressor output): same k-ascending zero-skip
                // chain, no wide accumulator to zero.
                let mut acc = 0.0f32;
                for (k, &a) in row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    acc += a * self.w[k];
                }
                out[0] = if self.b.is_empty() {
                    acc
                } else {
                    acc + self.b[0]
                };
            }
            None => {
                let mut stack = [0.0f32; ACC_WIDTH];
                let acc: &mut [f32] = if self.out_dim <= ACC_WIDTH {
                    &mut stack[..self.out_dim]
                } else {
                    qbuf.acc.clear();
                    qbuf.acc.resize(self.out_dim, 0.0);
                    &mut qbuf.acc
                };
                for (k, &a) in row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let wrow = &self.w[k * self.out_dim..(k + 1) * self.out_dim];
                    for (o, &wv) in acc.iter_mut().zip(wrow) {
                        *o += a * wv;
                    }
                }
                if self.b.is_empty() {
                    out.copy_from_slice(acc);
                } else {
                    for ((o, &s), &bv) in out.iter_mut().zip(acc.iter()).zip(&self.b) {
                        *o = s + bv;
                    }
                }
            }
            Some(q) => {
                let maxabs = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                if maxabs == 0.0 || q.scale == 0.0 {
                    if self.b.is_empty() {
                        out.fill(0.0);
                    } else {
                        out.copy_from_slice(&self.b);
                    }
                    return;
                }
                // Quantise the activation row per call (symmetric, per-row
                // scale) into integer-valued f32, then accumulate the exact
                // integer products in f32.
                let inv = 127.0 / maxabs;
                qbuf.qf.clear();
                qbuf.qf
                    .extend(row.iter().map(|&v| (v * inv).round().clamp(-127.0, 127.0)));
                let mut stack = [0.0f32; ACC_WIDTH];
                let acc: &mut [f32] = if self.out_dim <= ACC_WIDTH {
                    &mut stack[..self.out_dim]
                } else {
                    qbuf.acc.clear();
                    qbuf.acc.resize(self.out_dim, 0.0);
                    &mut qbuf.acc
                };
                for (k, &a) in qbuf.qf.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let wrow = &q.wf[k * self.out_dim..(k + 1) * self.out_dim];
                    for (o, &wv) in acc.iter_mut().zip(wrow) {
                        *o += a * wv;
                    }
                }
                let s = (maxabs / 127.0) * q.scale;
                if self.b.is_empty() {
                    for (o, &av) in out.iter_mut().zip(acc.iter()) {
                        *o = av * s;
                    }
                } else {
                    for ((o, &av), &bv) in out.iter_mut().zip(acc.iter()).zip(&self.b) {
                        *o = bv + av * s;
                    }
                }
            }
        }
    }

    /// Fixed-width row application: identical chains to the runtime-width
    /// path, with the accumulator bank held in registers.
    #[inline(never)]
    fn apply_row_fixed<const D: usize>(&self, row: &[f32], out: &mut [f32], qbuf: &mut QBuf) {
        let mut acc = [0.0f32; D];
        match &self.q {
            None => {
                accum1::<D>(row, &self.w, &mut acc);
                write_f32::<D>(&self.b, &acc, out);
            }
            Some(q) => {
                let rs = quantize_row(row, &mut qbuf.qf);
                if rs == 0.0 || q.scale == 0.0 {
                    if self.b.is_empty() {
                        out.fill(0.0);
                    } else {
                        out.copy_from_slice(&self.b);
                    }
                    return;
                }
                accum1::<D>(&qbuf.qf, &q.wf, &mut acc);
                write_q::<D>(&self.b, &acc, rs * q.scale, out);
            }
        }
    }

    /// Applies the layer to `rows` contiguous input rows.
    fn apply(&self, input: &[f32], rows: usize, out: &mut [f32], qbuf: &mut QBuf) {
        if self.out_dim == 1 && self.q.is_none() {
            self.scores_blocked(|r| &input[r * self.in_dim..][..self.in_dim], rows, out);
            return;
        }
        // Dispatch to a fixed width once per call, not once per row: the
        // monomorphic loop keeps the row walk and the accumulator bank in
        // one compact hot function.
        match self.out_dim {
            8 => return fused1_fixed::<8>(self, input, rows, out, qbuf),
            16 => return fused1_fixed::<16>(self, input, rows, out, qbuf),
            32 => return fused1_fixed::<32>(self, input, rows, out, qbuf),
            64 => return fused1_fixed::<64>(self, input, rows, out, qbuf),
            _ => {}
        }
        for r in 0..rows {
            self.apply_row(
                &input[r * self.in_dim..(r + 1) * self.in_dim],
                &mut out[r * self.out_dim..(r + 1) * self.out_dim],
                qbuf,
            );
        }
    }

    /// Applies the layer to rows of `arena` selected by `idx` — the fused
    /// gather + GEMM walk of the CSR kernel.
    fn apply_gathered(&self, arena: &[f32], idx: &[u32], out: &mut [f32], qbuf: &mut QBuf) {
        if self.out_dim == 1 && self.q.is_none() {
            self.scores_blocked(
                |r| &arena[idx[r] as usize * self.in_dim..][..self.in_dim],
                idx.len(),
                out,
            );
            return;
        }
        match self.out_dim {
            8 => return gathered1_fixed::<8>(self, arena, idx, out, qbuf),
            16 => return gathered1_fixed::<16>(self, arena, idx, out, qbuf),
            32 => return gathered1_fixed::<32>(self, arena, idx, out, qbuf),
            64 => return gathered1_fixed::<64>(self, arena, idx, out, qbuf),
            _ => {}
        }
        for (r, &i) in idx.iter().enumerate() {
            let i = i as usize;
            self.apply_row(
                &arena[i * self.in_dim..(i + 1) * self.in_dim],
                &mut out[r * self.out_dim..(r + 1) * self.out_dim],
                qbuf,
            );
        }
    }

    /// Projection-to-score layers (`out_dim == 1`) walk one k-ascending
    /// zero-skip chain per row — inherently sequential, so one-at-a-time
    /// evaluation is add-latency bound. Interleaving four independent rows
    /// fills the latency bubbles without touching any single chain's order,
    /// keeping every score bit-exact.
    #[inline(never)]
    fn scores_blocked<'a>(
        &self,
        row_of: impl Fn(usize) -> &'a [f32],
        rows: usize,
        out: &mut [f32],
    ) {
        let din = self.in_dim;
        let w = &self.w[..din];
        let bias = self.b.first().copied();
        let mut r = 0;
        while r + 4 <= rows {
            let (r0, r1, r2, r3) = (row_of(r), row_of(r + 1), row_of(r + 2), row_of(r + 3));
            let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for (k, &wv) in w.iter().enumerate() {
                if r0[k] != 0.0 {
                    a0 += r0[k] * wv;
                }
                if r1[k] != 0.0 {
                    a1 += r1[k] * wv;
                }
                if r2[k] != 0.0 {
                    a2 += r2[k] * wv;
                }
                if r3[k] != 0.0 {
                    a3 += r3[k] * wv;
                }
            }
            if let Some(bv) = bias {
                a0 += bv;
                a1 += bv;
                a2 += bv;
                a3 += bv;
            }
            out[r] = a0;
            out[r + 1] = a1;
            out[r + 2] = a2;
            out[r + 3] = a3;
            r += 4;
        }
        while r < rows {
            let row = row_of(r);
            let mut acc = 0.0f32;
            for (k, &wv) in w.iter().enumerate() {
                if row[k] != 0.0 {
                    acc += row[k] * wv;
                }
            }
            out[r] = if let Some(bv) = bias { acc + bv } else { acc };
            r += 1;
        }
    }
}

/// An MLP baked into flat layers.
#[derive(Debug, Clone)]
struct MlpW {
    layers: Vec<LinW>,
    activation: Activation,
    sigmoid_output: bool,
}

impl MlpW {
    fn from_mlp(store: &ParamStore, mlp: &Mlp, mode: QuantMode) -> Self {
        MlpW {
            layers: mlp
                .layers()
                .iter()
                .map(|l| LinW::from_linear(store, l, mode))
                .collect(),
            activation: mlp.activation(),
            sigmoid_output: mlp.has_sigmoid_output(),
        }
    }
}

/// Applies `mlp` to one row, ping-ponging hidden activations through `a`/`b`.
fn mlp_apply_row(
    mlp: &MlpW,
    row: &[f32],
    out: &mut [f32],
    a: &mut Vec<f32>,
    b: &mut Vec<f32>,
    qbuf: &mut QBuf,
) {
    let last = mlp.layers.len() - 1;
    a.clear();
    a.extend_from_slice(row);
    for (i, layer) in mlp.layers.iter().enumerate() {
        if i == last {
            layer.apply_row(a, out, qbuf);
        } else {
            b.clear();
            b.resize(layer.out_dim, 0.0);
            layer.apply_row(a, b, qbuf);
            for v in b.iter_mut() {
                *v = match mlp.activation {
                    Activation::Relu => v.max(0.0),
                    Activation::Tanh => v.tanh(),
                    Activation::Sigmoid => sigmoid(*v),
                };
            }
            std::mem::swap(a, b);
        }
    }
    if mlp.sigmoid_output {
        for v in out.iter_mut() {
            *v = sigmoid(*v);
        }
    }
}

/// The six GRU gate projections in flat form.
#[derive(Debug, Clone)]
struct GruW {
    xr: LinW,
    hr: LinW,
    xz: LinW,
    hz: LinW,
    xn: LinW,
    hn: LinW,
}

impl GruW {
    fn from_gru(store: &ParamStore, gru: &GruCell, mode: QuantMode) -> Self {
        let [xr, hr, xz, hz, xn, hn] = gru.gates();
        GruW {
            xr: LinW::from_linear(store, xr, mode),
            hr: LinW::from_linear(store, hr, mode),
            xz: LinW::from_linear(store, xz, mode),
            hz: LinW::from_linear(store, hz, mode),
            xn: LinW::from_linear(store, xn, mode),
            hn: LinW::from_linear(store, hn, mode),
        }
    }
}

/// The aggregator weights in flat form, one variant per
/// [`crate::AggregatorKind`].
#[derive(Debug, Clone)]
enum AggW {
    ConvSum {
        project: LinW,
    },
    Attention {
        query: LinW,
        key: LinW,
        edge_attr: Option<LinW>,
    },
    DeepSet {
        phi: MlpW,
        rho: LinW,
    },
    GatedSum {
        gate: LinW,
        value: LinW,
    },
}

impl AggW {
    fn from_aggregator(store: &ParamStore, agg: &Aggregator, mode: QuantMode) -> Self {
        match agg.params() {
            AggregatorParams::ConvSum { project } => AggW::ConvSum {
                project: LinW::from_linear(store, project, mode),
            },
            AggregatorParams::Attention {
                query,
                key,
                edge_attr,
            } => AggW::Attention {
                query: LinW::from_linear(store, query, mode),
                key: LinW::from_linear(store, key, mode),
                edge_attr: edge_attr
                    .as_ref()
                    .map(|l| LinW::from_linear(store, l, mode)),
            },
            AggregatorParams::DeepSet { phi, rho } => AggW::DeepSet {
                phi: MlpW::from_mlp(store, phi, mode),
                rho: LinW::from_linear(store, rho, mode),
            },
            AggregatorParams::GatedSum { gate, value } => AggW::GatedSum {
                gate: LinW::from_linear(store, gate, mode),
                value: LinW::from_linear(store, value, mode),
            },
        }
    }
}

/// Per-predict scratch arenas, reused across levels and iterations so the
/// hot loop never allocates.
#[derive(Debug, Default)]
struct Scratch {
    qbuf: QBuf,
    /// Per-target attention query scores.
    tq: Vec<f32>,
    /// Per-edge attention scores / softmax weights.
    score: Vec<f32>,
    /// Per-edge projection arenas.
    e1: Vec<f32>,
    e2: Vec<f32>,
    /// Per-target message arena.
    msg: Vec<f32>,
    /// GRU input arena (`[msg | one-hot]` when the gate input is fixed).
    gin: Vec<f32>,
    /// GRU gate arenas.
    g1: Vec<f32>,
    g2: Vec<f32>,
    g3: Vec<f32>,
    g4: Vec<f32>,
    g5: Vec<f32>,
    /// MLP ping-pong rows.
    ha: Vec<f32>,
    hb: Vec<f32>,
}

impl Scratch {
    /// Sizes every arena for the widest level of `plan` once per predict,
    /// so the per-level hot path only slices (and zeroes the arenas that
    /// are accumulated into) instead of re-zeroing every buffer on every
    /// pass.
    fn reserve(&mut self, plan: &InferencePlan, d: usize, gi: usize) {
        fn grow(v: &mut Vec<f32>, len: usize) {
            if v.len() < len {
                v.resize(len, 0.0);
            }
        }
        let levels = plan.forward.iter().chain(&plan.reverse);
        let (mut max_m, mut max_e) = (0usize, 0usize);
        for lvl in levels {
            max_m = max_m.max(lvl.end - lvl.start);
            max_e = max_e.max(lvl.edge_src.len());
        }
        grow(&mut self.tq, max_m);
        grow(&mut self.score, max_e);
        grow(&mut self.e1, max_e * d);
        grow(&mut self.e2, max_e * d);
        grow(&mut self.msg, max_m * d);
        grow(&mut self.gin, max_m * gi);
        grow(&mut self.g1, max_m * d);
        grow(&mut self.g2, max_m * d);
        grow(&mut self.g3, max_m * d);
        grow(&mut self.g4, max_m * d);
        grow(&mut self.g5, max_m * d);
    }
}

#[inline]
fn sigmoid(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

/// A [`crate::DagRecGnn`] compiled for the CSR arena layout: flat weight
/// copies plus the fused per-level kernels, independent of the parameter
/// store. Build one per session via `DagRecGnn::compile` (or
/// `deepgate::core::DeepGate::compile`) and reuse it across predictions.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    mode: QuantMode,
    feature_dim: usize,
    hidden_dim: usize,
    attr_dim: usize,
    fix_gate_input: bool,
    per_type_regressor: bool,
    embed: LinW,
    forward_agg: AggW,
    forward_gru: GruW,
    reverse: Option<(AggW, GruW)>,
    heads: Vec<MlpW>,
}

impl CompiledKernel {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn build(
        store: &ParamStore,
        config: &crate::DagRecConfig,
        embed: &Linear,
        forward_agg: &Aggregator,
        forward_gru: &GruCell,
        reverse_agg: Option<&Aggregator>,
        reverse_gru: Option<&GruCell>,
        regressors: &[Mlp],
        mode: QuantMode,
    ) -> Self {
        let reverse = match (reverse_agg, reverse_gru) {
            (Some(a), Some(g)) => Some((
                AggW::from_aggregator(store, a, mode),
                GruW::from_gru(store, g, mode),
            )),
            _ => None,
        };
        CompiledKernel {
            mode,
            feature_dim: config.feature_dim,
            hidden_dim: config.hidden_dim,
            attr_dim: config.edge_attr_dim(),
            fix_gate_input: config.fix_gate_input,
            per_type_regressor: config.per_type_regressor,
            embed: LinW::from_linear(store, embed, mode),
            forward_agg: AggW::from_aggregator(store, forward_agg, mode),
            forward_gru: GruW::from_gru(store, forward_gru, mode),
            reverse,
            heads: regressors
                .iter()
                .map(|m| MlpW::from_mlp(store, m, mode))
                .collect(),
        }
    }

    /// The kernel's scoring mode.
    pub fn mode(&self) -> QuantMode {
        self.mode
    }

    /// Runs the full recurrence over a packed plan, writing per-node
    /// probabilities (original node order) into `out`.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::PlanMismatch`] if the plan's feature or
    /// edge-attribute width does not match the compiled model.
    pub fn predict_into(
        &self,
        plan: &InferencePlan,
        num_iterations: usize,
        out: &mut Vec<f32>,
        metrics: Option<&GnnMetrics>,
    ) -> Result<(), GnnError> {
        if plan.feature_dim != self.feature_dim || plan.attr_dim != self.attr_dim {
            return Err(GnnError::PlanMismatch);
        }
        if let Some(m) = metrics {
            m.circuit_nodes.record(plan.num_nodes as u64);
            if self.mode == QuantMode::Int8 {
                m.quantized_predicts.inc();
            }
        }
        let n = plan.num_nodes;
        let d = self.hidden_dim;
        let mut s = Scratch::default();
        let gi = if self.fix_gate_input {
            d + self.feature_dim
        } else {
            d
        };
        s.reserve(plan, d, gi);

        // Initial embedding of the packed one-hot features.
        let mut h = vec![0.0f32; n * d];
        self.embed.apply(&plan.features, n, &mut h, &mut s.qbuf);

        // Attention attribute biases are constant across iterations:
        // project each forward level's attribute rows once.
        let attr_bias = self.precompute_attr_bias(plan, &mut s);

        for _ in 0..num_iterations {
            for (li, lvl) in plan.forward.iter().enumerate() {
                let t0 = metrics.map(|_| Instant::now());
                self.level_pass(
                    lvl,
                    attr_bias.get(li).and_then(|b| b.as_deref()),
                    plan,
                    false,
                    &mut h,
                    &mut s,
                );
                if let (Some(m), Some(start)) = (metrics, t0) {
                    m.level_agg_ns.record_duration(start.elapsed());
                    m.levels_total.inc();
                    m.csr_level_width.record((lvl.end - lvl.start) as u64);
                }
            }
            if self.reverse.is_some() {
                for lvl in &plan.reverse {
                    let t0 = metrics.map(|_| Instant::now());
                    self.level_pass(lvl, None, plan, true, &mut h, &mut s);
                    if let (Some(m), Some(start)) = (metrics, t0) {
                        m.level_agg_ns.record_duration(start.elapsed());
                        m.levels_total.inc();
                        m.csr_level_width.record((lvl.end - lvl.start) as u64);
                    }
                }
            }
        }

        let regress_start = metrics.map(|_| Instant::now());
        let mut pred = vec![0.0f32; n];
        self.regress(plan, &h, &mut pred, &mut s);
        if let (Some(m), Some(start)) = (metrics, regress_start) {
            m.regress_ns.record_duration(start.elapsed());
        }

        out.clear();
        out.reserve(n);
        for old in 0..n {
            out.push(pred[plan.perm[old] as usize]);
        }
        Ok(())
    }

    /// Projects each forward level's edge-attribute rows through the
    /// attention attribute head. Returns one bias-per-edge vector per level
    /// (`None` for levels without attributes or non-attention kernels).
    fn precompute_attr_bias(&self, plan: &InferencePlan, s: &mut Scratch) -> Vec<Option<Vec<f32>>> {
        let proj = match &self.forward_agg {
            AggW::Attention {
                edge_attr: Some(p), ..
            } if plan.attr_dim > 0 => p,
            _ => return Vec::new(),
        };
        plan.forward
            .iter()
            .map(|lvl| {
                let edges = lvl.edge_src.len();
                let mut bias = vec![0.0f32; edges];
                proj.apply(&lvl.attr, edges, &mut bias, &mut s.qbuf);
                Some(bias)
            })
            .collect()
    }

    /// One level's fused aggregation + GRU update over the packed arena.
    fn level_pass(
        &self,
        lvl: &CsrLevel,
        attr_bias: Option<&[f32]>,
        plan: &InferencePlan,
        reverse: bool,
        h: &mut [f32],
        s: &mut Scratch,
    ) {
        let d = self.hidden_dim;
        let m = lvl.end - lvl.start;
        let edges = lvl.edge_src.len();
        let (agg, gru) = if reverse {
            let (a, g) = self.reverse.as_ref().expect("reverse layer configured");
            (a, g)
        } else {
            (&self.forward_agg, &self.forward_gru)
        };

        // Arenas are pre-sized by `Scratch::reserve`; only `msg` (and the
        // DeepSet segment sum) accumulate, so only they need zeroing here —
        // every other arena is fully overwritten before it is read.
        let msg = &mut s.msg[..m * d];
        msg.fill(0.0);
        match agg {
            AggW::ConvSum { project } => {
                let e1 = &mut s.e1[..edges * d];
                project.apply_gathered(h, &lvl.edge_src, e1, &mut s.qbuf);
                segment_sum(e1, &lvl.offsets, d, msg);
            }
            AggW::Attention { query, key, .. } => {
                // Per-edge key scores, fused gather + dot.
                let score = &mut s.score[..edges];
                key.apply_gathered(h, &lvl.edge_src, score, &mut s.qbuf);
                // Per-target query scores (shared by all of a target's
                // edges — same value the legacy per-edge gather computed).
                let tq = &mut s.tq[..m];
                query.apply(&h[lvl.start * d..lvl.end * d], m, tq, &mut s.qbuf);
                for (i, &tqi) in tq.iter().enumerate() {
                    let (a, b) = (lvl.offsets[i] as usize, lvl.offsets[i + 1] as usize);
                    for sc in &mut score[a..b] {
                        *sc += tqi;
                    }
                }
                if let Some(bias) = attr_bias {
                    for (sc, &bv) in score.iter_mut().zip(bias) {
                        *sc += bv;
                    }
                }
                // Segment softmax in place, mirroring the legacy edge order.
                for i in 0..m {
                    let (a, b) = (lvl.offsets[i] as usize, lvl.offsets[i + 1] as usize);
                    let seg = &mut score[a..b];
                    let max = seg.iter().fold(f32::NEG_INFINITY, |acc, &v| acc.max(v));
                    let mut sum = 0.0f32;
                    for v in seg.iter_mut() {
                        *v = (*v - max).exp();
                        sum += *v;
                    }
                    for v in seg.iter_mut() {
                        *v /= sum;
                    }
                }
                // Weighted accumulation of source rows.
                for i in 0..m {
                    let (a, b) = (lvl.offsets[i] as usize, lvl.offsets[i + 1] as usize);
                    let mrow = &mut msg[i * d..(i + 1) * d];
                    for e in a..b {
                        let alpha = score[e];
                        let src = &h[lvl.edge_src[e] as usize * d..][..d];
                        for (o, &sv) in mrow.iter_mut().zip(src) {
                            *o += alpha * sv;
                        }
                    }
                }
            }
            AggW::DeepSet { phi, rho } => {
                let e1 = &mut s.e1[..edges * d];
                for (r, &src) in lvl.edge_src.iter().enumerate() {
                    let row = &h[src as usize * d..(src as usize + 1) * d];
                    mlp_apply_row(
                        phi,
                        row,
                        &mut e1[r * d..(r + 1) * d],
                        &mut s.ha,
                        &mut s.hb,
                        &mut s.qbuf,
                    );
                }
                let e2 = &mut s.e2[..m * d];
                e2.fill(0.0);
                segment_sum(e1, &lvl.offsets, d, e2);
                rho.apply(e2, m, msg, &mut s.qbuf);
            }
            AggW::GatedSum { gate, value } => {
                let e1 = &mut s.e1[..edges * d];
                gate.apply_gathered(h, &lvl.edge_src, e1, &mut s.qbuf);
                for v in e1.iter_mut() {
                    *v = sigmoid(*v);
                }
                let e2 = &mut s.e2[..edges * d];
                value.apply_gathered(h, &lvl.edge_src, e2, &mut s.qbuf);
                for (g, &v) in e1.iter_mut().zip(e2.iter()) {
                    *g *= v;
                }
                segment_sum(e1, &lvl.offsets, d, msg);
            }
        }

        // GRU input: the message, with the gate one-hot appended when the
        // gate input is fixed (DeepGate's Eq. 6).
        let f = self.feature_dim;
        let input: &[f32] = if self.fix_gate_input {
            let gi = d + f;
            let gin = &mut s.gin[..m * gi];
            for i in 0..m {
                gin[i * gi..i * gi + d].copy_from_slice(&msg[i * d..(i + 1) * d]);
                gin[i * gi + d..(i + 1) * gi]
                    .copy_from_slice(&plan.features[(lvl.start + i) * f..(lvl.start + i + 1) * f]);
            }
            gin
        } else {
            msg
        };
        gru_step(
            gru,
            input,
            h,
            lvl.start,
            lvl.end,
            d,
            &mut s.g1[..m * d],
            &mut s.g2[..m * d],
            &mut s.g3[..m * d],
            &mut s.g4[..m * d],
            &mut s.g5[..m * d],
            &mut s.qbuf,
        );
    }

    /// The regressor heads over the packed final embeddings. The per-type
    /// path evaluates only the head selected by each node's one-hot — the
    /// legacy path ran every head over every node and masked after.
    fn regress(&self, plan: &InferencePlan, h: &[f32], pred: &mut [f32], s: &mut Scratch) {
        let d = self.hidden_dim;
        let f = self.feature_dim;
        if !self.per_type_regressor {
            let head = &self.heads[0];
            for i in 0..plan.num_nodes {
                mlp_apply_row(
                    head,
                    &h[i * d..(i + 1) * d],
                    &mut pred[i..i + 1],
                    &mut s.ha,
                    &mut s.hb,
                    &mut s.qbuf,
                );
            }
            return;
        }
        for i in 0..plan.num_nodes {
            let mut acc = 0.0f32;
            let mut one = [0.0f32];
            for (head_idx, head) in self.heads.iter().enumerate() {
                let mask = plan.features[i * f + head_idx];
                if mask > 0.0 {
                    mlp_apply_row(
                        head,
                        &h[i * d..(i + 1) * d],
                        &mut one,
                        &mut s.ha,
                        &mut s.hb,
                        &mut s.qbuf,
                    );
                    acc += mask * one[0];
                }
            }
            pred[i] = acc;
        }
    }
}

/// Adds each CSR row's edge rows into its target row, in edge order — the
/// dense form of the legacy scatter-add.
fn segment_sum(edge_rows: &[f32], offsets: &[u32], d: usize, out: &mut [f32]) {
    for i in 0..offsets.len() - 1 {
        let (a, b) = (offsets[i] as usize, offsets[i + 1] as usize);
        let orow = &mut out[i * d..(i + 1) * d];
        for e in a..b {
            let erow = &edge_rows[e * d..(e + 1) * d];
            for (o, &v) in orow.iter_mut().zip(erow) {
                *o += v;
            }
        }
    }
}

/// Accumulates `row @ W` into a compile-time-width accumulator bank. The
/// monomorphic width lets LLVM keep the whole bank in SIMD registers across
/// the `k` walk instead of round-tripping every partial sum through the
/// stack — the chains and their order are identical to the runtime-width
/// loop, only the register allocation changes.
#[inline(always)]
fn accum1<const D: usize>(row: &[f32], w: &[f32], acc: &mut [f32; D]) {
    for (k, &a) in row.iter().enumerate() {
        if a == 0.0 {
            continue;
        }
        let wr = &w[k * D..k * D + D];
        // Indexed, not iterator-zip: the zip form of this loop gets
        // SLP-scalarized at `D = 32` (an order-of-magnitude regression);
        // the indexed form reliably takes the loop vectorizer.
        for j in 0..D {
            acc[j] += a * wr[j];
        }
    }
}

/// Three-bank variant of [`accum1`]: the shared input element is loaded and
/// tested once, then feeds three independent accumulator banks.
#[inline(always)]
fn accum3<const D: usize>(
    row: &[f32],
    wa: &[f32],
    wb: &[f32],
    wc: &[f32],
    aa: &mut [f32; D],
    ab: &mut [f32; D],
    ac: &mut [f32; D],
) {
    for (k, &a) in row.iter().enumerate() {
        if a == 0.0 {
            continue;
        }
        let ra = &wa[k * D..k * D + D];
        let rb = &wb[k * D..k * D + D];
        let rc = &wc[k * D..k * D + D];
        for j in 0..D {
            aa[j] += a * ra[j];
            ab[j] += a * rb[j];
            ac[j] += a * rc[j];
        }
    }
}

/// Two-bank variant of [`accum1`] for the h-side GRU gate pair.
#[inline(always)]
fn accum2<const D: usize>(
    row: &[f32],
    wa: &[f32],
    wb: &[f32],
    aa: &mut [f32; D],
    ab: &mut [f32; D],
) {
    for (k, &a) in row.iter().enumerate() {
        if a == 0.0 {
            continue;
        }
        let ra = &wa[k * D..k * D + D];
        let rb = &wb[k * D..k * D + D];
        for j in 0..D {
            aa[j] += a * ra[j];
            ab[j] += a * rb[j];
        }
    }
}

/// Writes an f32 accumulator bank out, adding the bias after accumulation
/// exactly like [`LinW::apply_row`].
#[inline(always)]
fn write_f32<const D: usize>(b: &[f32], acc: &[f32; D], out: &mut [f32]) {
    if b.is_empty() {
        out.copy_from_slice(acc);
    } else {
        for ((o, &av), &bv) in out.iter_mut().zip(acc).zip(b) {
            *o = av + bv;
        }
    }
}

/// Writes a quantized accumulator bank out: dequantise with the combined
/// activation × weight scale, then add the bias.
#[inline(always)]
fn write_q<const D: usize>(b: &[f32], acc: &[f32; D], s: f32, out: &mut [f32]) {
    if b.is_empty() {
        for (o, &av) in out.iter_mut().zip(acc) {
            *o = av * s;
        }
    } else {
        for ((o, &av), &bv) in out.iter_mut().zip(acc).zip(b) {
            *o = bv + av * s;
        }
    }
}

/// Quantises one activation row into `qf` (symmetric per-row scale, round
/// to nearest, clamp to ±127) and returns the row scale `maxabs / 127`.
#[inline(always)]
fn quantize_row(row: &[f32], qf: &mut Vec<f32>) -> f32 {
    let maxabs = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    qf.clear();
    if maxabs == 0.0 {
        qf.resize(row.len(), 0.0);
        return 0.0;
    }
    let inv = 127.0 / maxabs;
    qf.extend(row.iter().map(|&v| (v * inv).round().clamp(-127.0, 127.0)));
    maxabs / 127.0
}

/// Applies three layers that share the same input rows (the x-side GRU
/// gates) in a single pass: each input element is loaded and zero-tested
/// once and feeds three register-resident accumulator banks. Every output
/// element keeps the exact k-ascending zero-skip accumulation chain of
/// [`LinW::apply_row`], so the fusion is bit-exact — it only changes how
/// many partial sums are alive at once, not the order within any one of
/// them. In `Int8` mode the per-row activation quantisation is computed
/// once and shared (each gate previously recomputed the identical values).
#[allow(clippy::too_many_arguments)]
fn apply_fused3(
    la: &LinW,
    lb: &LinW,
    lc: &LinW,
    input: &[f32],
    rows: usize,
    oa: &mut [f32],
    ob: &mut [f32],
    oc: &mut [f32],
    qbuf: &mut QBuf,
) {
    debug_assert!(lb.in_dim == la.in_dim && lc.in_dim == la.in_dim);
    debug_assert!(lb.out_dim == la.out_dim && lc.out_dim == la.out_dim);
    match la.out_dim {
        8 => fused3_fixed::<8>(la, lb, lc, input, rows, oa, ob, oc, qbuf),
        16 => fused3_fixed::<16>(la, lb, lc, input, rows, oa, ob, oc, qbuf),
        32 => fused3_fixed::<32>(la, lb, lc, input, rows, oa, ob, oc, qbuf),
        64 => fused3_fixed::<64>(la, lb, lc, input, rows, oa, ob, oc, qbuf),
        _ => {
            la.apply(input, rows, oa, qbuf);
            lb.apply(input, rows, ob, qbuf);
            lc.apply(input, rows, oc, qbuf);
        }
    }
}

#[inline(never)]
#[allow(clippy::too_many_arguments)]
fn fused3_fixed<const D: usize>(
    la: &LinW,
    lb: &LinW,
    lc: &LinW,
    input: &[f32],
    rows: usize,
    oa: &mut [f32],
    ob: &mut [f32],
    oc: &mut [f32],
    qbuf: &mut QBuf,
) {
    let din = la.in_dim;
    match (&la.q, &lb.q, &lc.q) {
        (Some(qa), Some(qb), Some(qc)) => {
            for r in 0..rows {
                let row = &input[r * din..(r + 1) * din];
                let (mut aa, mut ab, mut ac) = ([0.0f32; D], [0.0f32; D], [0.0f32; D]);
                let rs = quantize_row(row, &mut qbuf.qf);
                accum3::<D>(&qbuf.qf, &qa.wf, &qb.wf, &qc.wf, &mut aa, &mut ab, &mut ac);
                write_q::<D>(&la.b, &aa, rs * qa.scale, &mut oa[r * D..(r + 1) * D]);
                write_q::<D>(&lb.b, &ab, rs * qb.scale, &mut ob[r * D..(r + 1) * D]);
                write_q::<D>(&lc.b, &ac, rs * qc.scale, &mut oc[r * D..(r + 1) * D]);
            }
        }
        _ => {
            for r in 0..rows {
                let row = &input[r * din..(r + 1) * din];
                let (mut aa, mut ab, mut ac) = ([0.0f32; D], [0.0f32; D], [0.0f32; D]);
                accum3::<D>(row, &la.w, &lb.w, &lc.w, &mut aa, &mut ab, &mut ac);
                write_f32::<D>(&la.b, &aa, &mut oa[r * D..(r + 1) * D]);
                write_f32::<D>(&lb.b, &ab, &mut ob[r * D..(r + 1) * D]);
                write_f32::<D>(&lc.b, &ac, &mut oc[r * D..(r + 1) * D]);
            }
        }
    }
}

/// Two-layer variant of [`apply_fused3`] for the h-side GRU gate pair.
fn apply_fused2(
    la: &LinW,
    lb: &LinW,
    input: &[f32],
    rows: usize,
    oa: &mut [f32],
    ob: &mut [f32],
    qbuf: &mut QBuf,
) {
    debug_assert!(lb.in_dim == la.in_dim && lb.out_dim == la.out_dim);
    match la.out_dim {
        8 => fused2_fixed::<8>(la, lb, input, rows, oa, ob, qbuf),
        16 => fused2_fixed::<16>(la, lb, input, rows, oa, ob, qbuf),
        32 => fused2_fixed::<32>(la, lb, input, rows, oa, ob, qbuf),
        64 => fused2_fixed::<64>(la, lb, input, rows, oa, ob, qbuf),
        _ => {
            la.apply(input, rows, oa, qbuf);
            lb.apply(input, rows, ob, qbuf);
        }
    }
}

/// Single-layer fixed-width batch: one matrix over `rows` contiguous input
/// rows. A free function like [`fused2_fixed`] rather than a method — the
/// method-shaped monomorphization of this loop came out scalarized at
/// `D = 32` (LLVM's SLP vectorizer won the cost-model coin flip over the
/// loop vectorizer), an order-of-magnitude regression on the GRU candidate
/// matvec. The free-function shape compiles to the register-resident
/// vector loop shared by the two- and three-bank variants.
#[inline(never)]
fn fused1_fixed<const D: usize>(
    l: &LinW,
    input: &[f32],
    rows: usize,
    out: &mut [f32],
    qbuf: &mut QBuf,
) {
    let din = l.in_dim;
    match &l.q {
        None => {
            for r in 0..rows {
                let row = &input[r * din..(r + 1) * din];
                let mut acc = [0.0f32; D];
                accum1::<D>(row, &l.w, &mut acc);
                write_f32::<D>(&l.b, &acc, &mut out[r * D..(r + 1) * D]);
            }
        }
        Some(q) => {
            for r in 0..rows {
                let row = &input[r * din..(r + 1) * din];
                let o = &mut out[r * D..(r + 1) * D];
                let rs = quantize_row(row, &mut qbuf.qf);
                if rs == 0.0 || q.scale == 0.0 {
                    if l.b.is_empty() {
                        o.fill(0.0);
                    } else {
                        o.copy_from_slice(&l.b);
                    }
                    continue;
                }
                let mut acc = [0.0f32; D];
                accum1::<D>(&qbuf.qf, &q.wf, &mut acc);
                write_q::<D>(&l.b, &acc, rs * q.scale, o);
            }
        }
    }
}

/// Gathered variant of [`fused1_fixed`]: rows selected by `idx`.
#[inline(never)]
fn gathered1_fixed<const D: usize>(
    l: &LinW,
    arena: &[f32],
    idx: &[u32],
    out: &mut [f32],
    qbuf: &mut QBuf,
) {
    let din = l.in_dim;
    match &l.q {
        None => {
            for (r, &i) in idx.iter().enumerate() {
                let row = &arena[i as usize * din..][..din];
                let mut acc = [0.0f32; D];
                accum1::<D>(row, &l.w, &mut acc);
                write_f32::<D>(&l.b, &acc, &mut out[r * D..(r + 1) * D]);
            }
        }
        Some(q) => {
            for (r, &i) in idx.iter().enumerate() {
                let row = &arena[i as usize * din..][..din];
                let o = &mut out[r * D..(r + 1) * D];
                let rs = quantize_row(row, &mut qbuf.qf);
                if rs == 0.0 || q.scale == 0.0 {
                    if l.b.is_empty() {
                        o.fill(0.0);
                    } else {
                        o.copy_from_slice(&l.b);
                    }
                    continue;
                }
                let mut acc = [0.0f32; D];
                accum1::<D>(&qbuf.qf, &q.wf, &mut acc);
                write_q::<D>(&l.b, &acc, rs * q.scale, o);
            }
        }
    }
}

#[inline(never)]
fn fused2_fixed<const D: usize>(
    la: &LinW,
    lb: &LinW,
    input: &[f32],
    rows: usize,
    oa: &mut [f32],
    ob: &mut [f32],
    qbuf: &mut QBuf,
) {
    let din = la.in_dim;
    match (&la.q, &lb.q) {
        (Some(qa), Some(qb)) => {
            for r in 0..rows {
                let row = &input[r * din..(r + 1) * din];
                let (mut aa, mut ab) = ([0.0f32; D], [0.0f32; D]);
                let rs = quantize_row(row, &mut qbuf.qf);
                accum2::<D>(&qbuf.qf, &qa.wf, &qb.wf, &mut aa, &mut ab);
                write_q::<D>(&la.b, &aa, rs * qa.scale, &mut oa[r * D..(r + 1) * D]);
                write_q::<D>(&lb.b, &ab, rs * qb.scale, &mut ob[r * D..(r + 1) * D]);
            }
        }
        _ => {
            for r in 0..rows {
                let row = &input[r * din..(r + 1) * din];
                let (mut aa, mut ab) = ([0.0f32; D], [0.0f32; D]);
                accum2::<D>(row, &la.w, &lb.w, &mut aa, &mut ab);
                write_f32::<D>(&la.b, &aa, &mut oa[r * D..(r + 1) * D]);
                write_f32::<D>(&lb.b, &ab, &mut ob[r * D..(r + 1) * D]);
            }
        }
    }
}

/// One GRU update over the contiguous packed range `[start, end)` of the
/// hidden arena, computed in the exact operation order of
/// `GruCell::forward_tensor` (separate x-side and h-side sums, then
/// elementwise combines) so the f32 kernel stays bit-exact.
#[allow(clippy::too_many_arguments)]
fn gru_step(
    gru: &GruW,
    input: &[f32],
    h: &mut [f32],
    start: usize,
    end: usize,
    d: usize,
    g1: &mut [f32],
    g2: &mut [f32],
    g3: &mut [f32],
    g4: &mut [f32],
    g5: &mut [f32],
    qbuf: &mut QBuf,
) {
    let m = end - start;
    let len = m * d;
    // The three x-side gate sums share `input`; the two h-side sums share
    // the packed hidden rows. Fused multi-accumulator passes compute them
    // with one walk over each shared operand.
    apply_fused3(&gru.xr, &gru.xz, &gru.xn, input, m, g1, g3, g4, qbuf);
    apply_fused2(&gru.hr, &gru.hz, &h[start * d..end * d], m, g2, g5, qbuf);
    // r = σ(x W_xr + h W_hr)  → g1
    for (r, &hv) in g1.iter_mut().zip(g2.iter()) {
        *r = sigmoid(*r + hv);
    }
    // z = σ(x W_xz + h W_hz)  → g3
    for (z, &hv) in g3.iter_mut().zip(g5.iter()) {
        *z = sigmoid(*z + hv);
    }
    // gated = r ⊙ h  → g2
    for (i, g) in g2.iter_mut().enumerate() {
        *g = g1[i] * h[start * d + i];
    }
    // n = tanh(x W_xn + gated W_hn)  → g4 (g5 is free once z is built)
    gru.hn.apply(g2, m, g5, qbuf);
    for (n, &hv) in g4.iter_mut().zip(g5.iter()) {
        *n = (*n + hv).tanh();
    }
    // h' = (1 - z) ⊙ n + z ⊙ h, written straight into the arena.
    for i in 0..len {
        let hv = h[start * d + i];
        let z = g3[i];
        h[start * d + i] = (1.0 - z) * g4[i] + z * hv;
    }
}
