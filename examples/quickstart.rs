//! Quickstart: build a circuit, normalise it to AIG form, label it with
//! logic-simulated signal probabilities and run DeepGate over it.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use deepgate::aig::Aig;
use deepgate::core::{DeepGate, DeepGateConfig, Trainer, TrainerConfig};
use deepgate::dataset::{generators, labelled_circuit_from_aig};
use deepgate::gnn::evaluate_prediction_error;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a gate-level circuit (an 8-bit ALU) and map it to an AIG —
    //    the circuit transformation step of the DeepGate flow.
    let netlist = generators::alu(8);
    let aig = Aig::from_netlist(&netlist)?;
    println!(
        "circuit `{}`: {} gates -> AIG with {} AND nodes, depth {}",
        netlist.name(),
        netlist.num_gates(),
        aig.num_ands(),
        aig.levels().1
    );

    // 2. Label every node with its signal probability via logic simulation
    //    and build the learning representation (one-hot gate features,
    //    level-batched edges, reconvergence skip edges).
    let circuit = labelled_circuit_from_aig(&aig, 8_192, 7)?;
    println!(
        "circuit graph: {} nodes, {} levels, {} reconvergence skip edges",
        circuit.num_nodes,
        circuit.max_level,
        circuit.skip_edges.len()
    );

    // 3. Create a DeepGate model and fine-tune it briefly on this single
    //    circuit (a real workflow trains on thousands of sub-circuits; see
    //    the `table2` experiment binary).
    let mut model = DeepGate::new(DeepGateConfig {
        hidden_dim: 32,
        num_iterations: 4,
        ..DeepGateConfig::default()
    });
    let before = evaluate_prediction_error(&model.predict(&circuit), &circuit);

    let mut trainer = Trainer::new(TrainerConfig {
        epochs: 20,
        learning_rate: 3e-3,
        ..TrainerConfig::default()
    });
    let inner = model.model().clone();
    let history = trainer.train(&inner, model.store_mut(), &[circuit.clone()], &[circuit.clone()]);
    let after = evaluate_prediction_error(&model.predict(&circuit), &circuit);
    println!(
        "avg prediction error: {before:.4} before training -> {after:.4} after {} epochs",
        history.epochs.len()
    );

    // 4. The per-gate embeddings are the representations downstream EDA
    //    tasks would consume.
    let embeddings = model.embeddings(&circuit);
    println!(
        "learned {}-dimensional embeddings for {} gates",
        embeddings.cols(),
        embeddings.rows()
    );
    Ok(())
}
