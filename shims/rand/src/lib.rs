//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset of the `rand` API the workspace uses — a seeded
//! [`rngs::SmallRng`] (xoshiro256++ behind a SplitMix64 seeder), the
//! [`Rng`]/[`SeedableRng`] traits with `gen`, `gen_range`, `gen_bool`, and
//! [`seq::SliceRandom`] with `shuffle`/`choose`. The generated streams are
//! high quality but deliberately *not* bit-compatible with the real crate;
//! all workspace tests assert structural properties, not exact draws.

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Uniform sampling of a type from raw generator bits (the stand-in for
/// rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Samples a uniformly random value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Sampling a value out of a range (the stand-in for rand's
/// `SampleRange`/`UniformSampler` machinery).
pub trait SampleRange<T> {
    /// Samples a uniformly random value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level generator interface; blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniformly random value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples a uniformly random value from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Converts 64 random bits into a float in `[0, 1)` with 53-bit resolution.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Converts 64 random bits into a float in `[0, 1)` with 24-bit resolution.
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seeded generator: xoshiro256++ with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut s = seed;
            let mut next = || {
                s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let state = [next(), next(), next(), next()];
            SmallRng { state }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

// --------------------------------------------------------- Standard impls

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng.next_u64())
    }
}

// ------------------------------------------------------ SampleRange impls

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                ((self.start as i64).wrapping_add((rng.next_u64() % span) as i64)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                ((lo as i64).wrapping_add((rng.next_u64() % (span + 1)) as i64)) as $t
            }
        }
    )*};
}
impl_signed_range!(i8, i16, i32, i64, isize);

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * unit_f32(rng.next_u64());
        // Guard against floating-point rounding landing exactly on `end`.
        if v < self.end {
            v
        } else {
            f32::from_bits(self.end.to_bits().wrapping_sub(1)).max(self.start)
        }
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 / ((1u32 << 24) - 1) as f32;
        lo + (hi - lo) * unit
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        if v < self.end {
            v
        } else {
            f64::from_bits(self.end.to_bits().wrapping_sub(1)).max(self.start)
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + (hi - lo) * unit
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions: in-place shuffling and random element choice.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let v = rng.gen_range(0usize..=5);
            assert!(v <= 5);
            let f = rng.gen_range(f32::EPSILON..1.0);
            assert!((f32::EPSILON..1.0).contains(&f));
            let g = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&g));
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let ratio = hits as f64 / 20_000.0;
        assert!((0.22..0.28).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
