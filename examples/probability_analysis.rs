//! Signal-probability analysis of a reconvergence-heavy arbiter: compares
//! exhaustive enumeration, Monte-Carlo simulation and a briefly-trained
//! DeepGate engine on the same circuit.
//!
//! This is the workload the paper motivates: signal probabilities feed
//! testability analysis, power estimation and X-propagation, and
//! reconvergent fan-out is what makes them hard to compute structurally.
//!
//! ```bash
//! cargo run --release --example probability_analysis
//! ```

use deepgate::aig::ReconvergenceAnalysis;
use deepgate::dataset::generators;
use deepgate::prelude::*;

fn main() -> Result<(), DeepGateError> {
    // A masked arbiter: every grant output reconverges on the request and
    // mask inputs through two priority chains.
    let netlist = generators::masked_arbiter(8);
    let aig = Aig::from_netlist(&netlist)?;
    let recon = ReconvergenceAnalysis::of(&aig);
    println!(
        "arbiter AIG: {} AND nodes, {} fan-out stems, {} reconvergence nodes",
        aig.num_ands(),
        recon.num_stems(),
        recon.num_reconvergence_nodes()
    );

    // Exact signal probabilities by exhaustive enumeration (16 inputs).
    let exact = SignalProbability::exact(&aig)?;
    // Monte-Carlo estimates at two pattern budgets.
    let coarse = SignalProbability::simulate(&aig, 256, 1)?;
    let fine = SignalProbability::simulate(&aig, 65_536, 1)?;
    println!(
        "Monte-Carlo error vs exact: {:.5} with 256 patterns, {:.5} with 65k patterns",
        exact.mean_absolute_difference(coarse.values()),
        exact.mean_absolute_difference(fine.values()),
    );

    // A neural third opinion: fine-tune an engine on the arbiter and compare
    // its per-gate predictions against the simulated labels.
    let mut engine = Engine::builder()
        .model(DeepGateConfig {
            hidden_dim: 24,
            num_iterations: 3,
            regressor_hidden: 16,
            ..DeepGateConfig::default()
        })
        .trainer(TrainerConfig {
            epochs: 15,
            learning_rate: 3e-3,
            ..TrainerConfig::default()
        })
        .num_patterns(8_192)
        .build()?;
    let circuits = engine.prepare(&NetlistSource::from(netlist))?;
    let untrained = engine.evaluate(&circuits)?;
    engine.train(&circuits, &[])?;
    let trained = engine.evaluate(&circuits)?;
    println!(
        "DeepGate avg gate error vs simulation: {untrained:.4} untrained -> {trained:.4} trained"
    );

    // Show the five nodes with the most skewed probabilities — the ones
    // random-pattern testability analysis cares about.
    let mut skewed: Vec<(usize, f64)> = exact
        .values()
        .iter()
        .enumerate()
        .skip(1 + aig.num_inputs())
        .map(|(i, &p)| (i, p))
        .collect();
    skewed.sort_by(|a, b| {
        (a.1 - 0.5)
            .abs()
            .partial_cmp(&(b.1 - 0.5).abs())
            .expect("probabilities are finite")
            .reverse()
    });
    println!("most skewed internal signals (hard to control with random patterns):");
    for (node, p) in skewed.iter().take(5) {
        let info = recon
            .info(*node)
            .map(|i| {
                format!(
                    "reconverges on node {} ({} levels up)",
                    i.source, i.level_difference
                )
            })
            .unwrap_or_else(|| "no reconvergence".to_string());
        println!("  node {node}: P(1) = {p:.4} — {info}");
    }
    Ok(())
}
