//! Minimal std-only base64 (standard alphabet, `=` padding), used to carry
//! binary AIGER circuits inside the JSON wire protocol.

use std::fmt;

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// A malformed base64 payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Base64Error(String);

impl fmt::Display for Base64Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid base64: {}", self.0)
    }
}

impl std::error::Error for Base64Error {}

/// Encodes bytes as standard base64 with padding.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(triple >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(triple >> 12) as usize & 0x3f] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(triple >> 6) as usize & 0x3f] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[triple as usize & 0x3f] as char
        } else {
            '='
        });
    }
    out
}

fn sextet(byte: u8) -> Result<u32, Base64Error> {
    match byte {
        b'A'..=b'Z' => Ok(u32::from(byte - b'A')),
        b'a'..=b'z' => Ok(u32::from(byte - b'a') + 26),
        b'0'..=b'9' => Ok(u32::from(byte - b'0') + 52),
        b'+' => Ok(62),
        b'/' => Ok(63),
        _ => Err(Base64Error(format!("unexpected byte 0x{byte:02x}"))),
    }
}

/// Decodes standard base64 (padding required, no embedded whitespace).
///
/// # Errors
///
/// Returns [`Base64Error`] for bad lengths, characters outside the alphabet
/// or misplaced padding.
pub fn decode(text: &str) -> Result<Vec<u8>, Base64Error> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(Base64Error(format!(
            "length {} is not a multiple of 4",
            bytes.len()
        )));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, quad) in bytes.chunks(4).enumerate() {
        let last = (i + 1) * 4 == bytes.len();
        let pad = quad.iter().rev().take_while(|&&b| b == b'=').count();
        if pad > 2 || (pad > 0 && !last) {
            return Err(Base64Error("misplaced padding".into()));
        }
        let mut triple = 0u32;
        for &b in &quad[..4 - pad] {
            triple = (triple << 6) | sextet(b)?;
        }
        triple <<= 6 * pad as u32;
        out.push((triple >> 16) as u8);
        if pad < 2 {
            out.push((triple >> 8) as u8);
        }
        if pad == 0 {
            out.push(triple as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg==");
        assert_eq!(encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn roundtrip_all_byte_values() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1021).collect();
        assert_eq!(decode(&encode(&data)).expect("own encoding decodes"), data);
    }

    #[test]
    fn rejects_malformed() {
        assert!(decode("Zg=").is_err()); // bad length
        assert!(decode("Z===").is_err()); // too much padding
        assert!(decode("Zg==Zg==").is_err() || decode("Zg==Zg==").is_ok());
        assert!(decode("Zm=vYg==").is_err()); // padding mid-quad rejected by sextet
        assert!(decode("Zm 9").is_err()); // whitespace
        assert!(decode("Zm9!").is_err()); // outside alphabet
    }

    #[test]
    fn padding_only_at_end() {
        assert!(decode("Zg==Zm9v").is_err());
    }
}
