//! [`EngineMetrics`] — telemetry handles for the engine facade's
//! preparation and inference stages.

use deepgate_gnn::GnnMetrics;
use deepgate_telemetry::{Histogram, Registry};
use std::sync::Arc;

/// Shared handles to the engine-stage metric series.
///
/// Attach a set to an [`crate::Engine`] (builder
/// [`crate::EngineBuilder::metrics`] or [`crate::Engine::set_metrics`]) and
/// every circuit it ingests and every planned prediction its sessions run
/// records stage timings; without one the facade records nothing. All series
/// live in the [`Registry`] the set was registered in, so a serving layer
/// reads engine and scheduler telemetry from one snapshot.
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    /// Per-circuit ingestion wall time in nanoseconds (`engine_ingest_ns`):
    /// AIG transformation, optimisation and graph encoding — and, on the
    /// labelled path, simulation labelling.
    pub ingest_ns: Arc<Histogram>,
    /// Per-graph inference-plan build wall time in nanoseconds
    /// (`engine_plan_ns`).
    pub plan_ns: Arc<Histogram>,
    /// Per-chunk disjoint-union (batch fusion) wall time in nanoseconds
    /// (`engine_fuse_ns`).
    pub fuse_ns: Arc<Histogram>,
    /// Per-graph planned-prediction wall time in nanoseconds
    /// (`engine_predict_ns`) — one record per circuit or fused union chunk.
    pub predict_ns: Arc<Histogram>,
    /// The inference-kernel series (per-level aggregation time, regressor
    /// time, circuit size buckets) recorded beneath every prediction.
    pub gnn: GnnMetrics,
}

impl EngineMetrics {
    /// Registers the engine's series in `registry` (get-or-create).
    pub fn registered(registry: &Registry) -> Self {
        EngineMetrics {
            ingest_ns: registry.histogram("engine_ingest_ns"),
            plan_ns: registry.histogram("engine_plan_ns"),
            fuse_ns: registry.histogram("engine_fuse_ns"),
            predict_ns: registry.histogram("engine_predict_ns"),
            gnn: GnnMetrics::registered(registry),
        }
    }
}
