//! Synthetic stand-ins for the four benchmark suites of Table I.
//!
//! The paper extracts 10,824 sub-circuits from ITC'99, IWLS'05, EPFL and
//! OpenCores. The original files are not redistributable, so each suite is
//! emulated with a seeded mix of generator calls whose sizes and depths are
//! tuned to land inside the ranges reported in Table I:
//!
//! | suite | #sub-circuits | nodes | levels |
//! |---|---|---|---|
//! | EPFL | 828 | 52–341 | 4–17 |
//! | ITC99 | 7,560 | 36–1,947 | 3–23 |
//! | IWLS | 1,281 | 41–2,268 | 5–24 |
//! | OpenCores | 1,155 | 51–3,214 | 4–18 |

use crate::generators;
use deepgate_netlist::Netlist;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four benchmark suites the training circuits are drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SuiteKind {
    /// EPFL combinational benchmark suite (arithmetic-dominated).
    Epfl,
    /// ITC'99 (control-dominated next-state logic).
    Itc99,
    /// IWLS 2005 (mixed control and datapath).
    Iwls,
    /// OpenCores designs (datapath blocks: ALUs, decoders, bus logic).
    Opencores,
}

impl SuiteKind {
    /// All suites, in the order of Table I.
    pub const ALL: [SuiteKind; 4] = [
        SuiteKind::Epfl,
        SuiteKind::Itc99,
        SuiteKind::Iwls,
        SuiteKind::Opencores,
    ];

    /// Display name matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            SuiteKind::Epfl => "EPFL",
            SuiteKind::Itc99 => "ITC99",
            SuiteKind::Iwls => "IWLS",
            SuiteKind::Opencores => "Opencores",
        }
    }

    /// Number of sub-circuits the paper extracts from this suite (Table I);
    /// used to scale `--full` dataset generation proportionally.
    pub fn paper_subcircuit_count(self) -> usize {
        match self {
            SuiteKind::Epfl => 828,
            SuiteKind::Itc99 => 7_560,
            SuiteKind::Iwls => 1_281,
            SuiteKind::Opencores => 1_155,
        }
    }

    /// Generates the `index`-th design of this suite, deterministically in
    /// `(self, index, seed)`. `size_scale` in `(0, 1]` shrinks the designs
    /// for quick runs; 1.0 targets the paper's size ranges.
    pub fn generate_design(self, index: usize, seed: u64, size_scale: f64) -> Netlist {
        let mut rng = SmallRng::seed_from_u64(seed ^ (index as u64).wrapping_mul(0x9E37_79B9));
        let scale = size_scale.clamp(0.05, 1.0);
        let scaled = |base: usize, spread: usize, rng: &mut SmallRng| -> usize {
            let raw = base + rng.gen_range(0..=spread);
            ((raw as f64 * scale).round() as usize).max(2)
        };
        match self {
            SuiteKind::Epfl => match index % 5 {
                0 => generators::ripple_carry_adder(scaled(16, 32, &mut rng)),
                1 => generators::array_multiplier(scaled(5, 4, &mut rng)),
                2 => generators::comparator(scaled(16, 24, &mut rng)),
                3 => generators::parity_tree(scaled(32, 64, &mut rng)),
                _ => generators::squarer(scaled(5, 3, &mut rng)),
            },
            SuiteKind::Itc99 => match index % 4 {
                0 => generators::counter_next_state(scaled(12, 24, &mut rng)),
                1 => generators::priority_arbiter(scaled(16, 32, &mut rng)),
                2 => generators::random_logic(
                    scaled(10, 10, &mut rng),
                    scaled(120, 600, &mut rng),
                    rng.gen(),
                ),
                _ => generators::decoder(scaled(4, 2, &mut rng).min(7)),
            },
            SuiteKind::Iwls => match index % 4 {
                0 => generators::alu(scaled(8, 16, &mut rng)),
                1 => generators::masked_arbiter(scaled(10, 14, &mut rng)),
                2 => generators::random_logic(
                    scaled(12, 12, &mut rng),
                    scaled(200, 800, &mut rng),
                    rng.gen(),
                ),
                _ => generators::ripple_carry_adder(scaled(24, 40, &mut rng)),
            },
            SuiteKind::Opencores => match index % 4 {
                0 => generators::processor_datapath(((2.0 * scale).round() as usize).max(1)),
                1 => generators::alu(scaled(12, 20, &mut rng)),
                2 => generators::decoder(scaled(4, 3, &mut rng).min(8)),
                _ => generators::array_multiplier(scaled(6, 6, &mut rng)),
            },
        }
    }
}

impl fmt::Display for SuiteKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepgate_aig::Aig;

    #[test]
    fn suite_labels_and_counts_match_table_one() {
        assert_eq!(SuiteKind::Epfl.label(), "EPFL");
        assert_eq!(SuiteKind::Itc99.paper_subcircuit_count(), 7_560);
        let total: usize = SuiteKind::ALL
            .iter()
            .map(|s| s.paper_subcircuit_count())
            .sum();
        assert_eq!(total, 10_824);
    }

    #[test]
    fn designs_are_deterministic_and_valid() {
        for suite in SuiteKind::ALL {
            for index in 0..6 {
                let a = suite.generate_design(index, 11, 0.3);
                let b = suite.generate_design(index, 11, 0.3);
                assert!(a.validate().is_ok(), "{suite} design {index}");
                assert_eq!(
                    deepgate_netlist::bench::write(&a),
                    deepgate_netlist::bench::write(&b),
                    "{suite} design {index} not deterministic"
                );
                // Every design maps cleanly to an AIG.
                let aig = Aig::from_netlist(&a).unwrap();
                assert!(aig.validate().is_ok());
                assert!(aig.num_ands() > 0, "{suite} design {index} has no logic");
            }
        }
    }

    #[test]
    fn size_scale_changes_design_size() {
        let small = SuiteKind::Epfl.generate_design(0, 3, 0.1);
        let large = SuiteKind::Epfl.generate_design(0, 3, 1.0);
        assert!(large.num_gates() > small.num_gates());
    }
}
