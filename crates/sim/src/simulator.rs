//! Bit-parallel evaluation of circuits: one `u64` word per node holds 64
//! simulation patterns.

use crate::SimError;
use deepgate_aig::{Aig, AigNodeKind};
use deepgate_netlist::{GateKind, Netlist};

/// Evaluates an [`Aig`] for one row of input pattern words.
///
/// `input_words[i]` holds 64 patterns for the `i`-th primary input (in
/// [`Aig::inputs`] order). Returns one word per AIG node (index-aligned with
/// the AIG), where bit `k` of word `n` is the value of node `n` under
/// pattern `k`.
///
/// # Errors
///
/// Returns [`SimError::InputCountMismatch`] if the number of input words does
/// not match the number of primary inputs.
pub fn simulate_aig_words(aig: &Aig, input_words: &[u64]) -> Result<Vec<u64>, SimError> {
    if input_words.len() != aig.num_inputs() {
        return Err(SimError::InputCountMismatch {
            expected: aig.num_inputs(),
            got: input_words.len(),
        });
    }
    let mut values = vec![0u64; aig.len()];
    for (pos, &node_idx) in aig.inputs().iter().enumerate() {
        values[node_idx] = input_words[pos];
    }
    for (i, node) in aig.iter() {
        if node.kind != AigNodeKind::And {
            continue;
        }
        let a = values[node.fanin0.node()];
        let a = if node.fanin0.is_complemented() { !a } else { a };
        let b = values[node.fanin1.node()];
        let b = if node.fanin1.is_complemented() { !b } else { b };
        values[i] = a & b;
    }
    Ok(values)
}

/// Evaluates a [`Netlist`] for one row of input pattern words.
///
/// `input_words[i]` holds 64 patterns for the `i`-th primary input (in
/// [`Netlist::inputs`] order). Returns one word per netlist node.
///
/// # Errors
///
/// Returns [`SimError::InputCountMismatch`] if the number of input words does
/// not match the number of primary inputs.
pub fn simulate_netlist_words(
    netlist: &Netlist,
    input_words: &[u64],
) -> Result<Vec<u64>, SimError> {
    if input_words.len() != netlist.num_inputs() {
        return Err(SimError::InputCountMismatch {
            expected: netlist.num_inputs(),
            got: input_words.len(),
        });
    }
    let mut values = vec![0u64; netlist.len()];
    let mut input_pos = 0usize;
    let mut fanin_buf: Vec<u64> = Vec::new();
    for (id, node) in netlist.iter() {
        match node.kind {
            GateKind::Input => {
                values[id.index()] = input_words[input_pos];
                input_pos += 1;
            }
            GateKind::Const0 => values[id.index()] = 0,
            GateKind::Const1 => values[id.index()] = u64::MAX,
            kind => {
                fanin_buf.clear();
                fanin_buf.extend(node.fanins.iter().map(|f| values[f.index()]));
                values[id.index()] = kind.eval_words(&fanin_buf);
            }
        }
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepgate_netlist::GateKind;

    #[test]
    fn aig_simulation_matches_truth_table() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let and = aig.and(a, b);
        let or = aig.or(a, b);
        let xor = aig.xor(a, b);
        aig.add_output(and, "and");
        aig.add_output(or, "or");
        aig.add_output(xor, "xor");
        // Patterns: a = 0101..., b = 0011...
        let a_w = 0xAAAA_AAAA_AAAA_AAAAu64;
        let b_w = 0xCCCC_CCCC_CCCC_CCCCu64;
        let values = simulate_aig_words(&aig, &[a_w, b_w]).unwrap();
        let lit_value = |lit: deepgate_aig::AigLit| {
            let v = values[lit.node()];
            if lit.is_complemented() {
                !v
            } else {
                v
            }
        };
        assert_eq!(lit_value(and), a_w & b_w);
        assert_eq!(lit_value(or), a_w | b_w);
        assert_eq!(lit_value(xor), a_w ^ b_w);
    }

    #[test]
    fn aig_complemented_outputs_resolve_via_lit() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let nand = aig.and(a, b).complement();
        aig.add_output(nand, "nand");
        let values = simulate_aig_words(&aig, &[0xF0F0, 0xFF00]).unwrap();
        let node_val = values[nand.node()];
        let lit_val = if nand.is_complemented() {
            !node_val
        } else {
            node_val
        };
        assert_eq!(lit_val, !(0xF0F0u64 & 0xFF00u64));
    }

    #[test]
    fn netlist_and_aig_agree() {
        let mut n = Netlist::new("agree");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g1 = n.add_gate(GateKind::Xor, &[a, b]).unwrap();
        let g2 = n.add_gate(GateKind::Nand, &[g1, c]).unwrap();
        let g3 = n.add_gate(GateKind::Mux, &[c, g1, g2]).unwrap();
        n.mark_output(g3, "y");
        let aig = Aig::from_netlist(&n).unwrap();

        let words = [
            0x1234_5678_9ABC_DEF0u64,
            0x0F0F_F0F0_00FF_FF00,
            0xAAAA_5555_CCCC_3333,
        ];
        let nv = simulate_netlist_words(&n, &words).unwrap();
        let av = simulate_aig_words(&aig, &words).unwrap();
        // Compare the primary output value.
        let n_out = nv[n.outputs()[0].0.index()];
        let (lit, _) = aig.outputs()[0];
        let a_out_raw = av[lit.node()];
        let a_out = if lit.is_complemented() {
            !a_out_raw
        } else {
            a_out_raw
        };
        assert_eq!(n_out, a_out);
    }

    #[test]
    fn input_count_mismatch_detected() {
        let mut aig = Aig::new("t");
        let _ = aig.add_input("a");
        let err = simulate_aig_words(&aig, &[]).unwrap_err();
        assert!(matches!(
            err,
            SimError::InputCountMismatch {
                expected: 1,
                got: 0
            }
        ));

        let mut n = Netlist::new("t");
        let _ = n.add_input("a");
        let err = simulate_netlist_words(&n, &[1, 2]).unwrap_err();
        assert!(matches!(
            err,
            SimError::InputCountMismatch {
                expected: 1,
                got: 2
            }
        ));
    }

    #[test]
    fn constants_simulate_correctly() {
        let mut n = Netlist::new("c");
        let zero = n.add_const(false);
        let one = n.add_const(true);
        let g = n.add_gate(GateKind::Or, &[zero, one]).unwrap();
        n.mark_output(g, "y");
        let values = simulate_netlist_words(&n, &[]).unwrap();
        assert_eq!(values[g.index()], u64::MAX);
    }
}
