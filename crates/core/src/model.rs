//! The DeepGate model: configuration, construction, inference and
//! checkpointing.

use deepgate_gnn::{
    evaluate_prediction_error, AggregatorKind, CircuitGraph, CompiledKernel, DagRecConfig,
    DagRecGnn, GnnError, InferencePlan, ProbabilityModel, QuantMode,
};
use deepgate_nn::{Graph, NnError, ParamStore, Tensor, Var};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the [`DeepGate`] model.
///
/// The defaults follow the paper: hidden dimension 64, `T = 10` recurrence
/// iterations, attention aggregation, reversed propagation, fixed gate-type
/// input, skip connections with `L = 8` positional-encoding frequencies and a
/// per-gate-type regressor head.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeepGateConfig {
    /// Hidden-state dimensionality `d`.
    pub hidden_dim: usize,
    /// Number of recurrence iterations `T`.
    pub num_iterations: usize,
    /// Whether the reconvergence skip connections are used (the "w/ SC"
    /// configuration of Table II).
    pub use_skip_connections: bool,
    /// Number of frequency pairs `L` in the positional encoding (Eq. 7).
    pub skip_encoding_frequencies: usize,
    /// Whether reversed propagation layers are used.
    pub reverse_layer: bool,
    /// Node-feature dimensionality (3 for AIG circuits, 12 when training on
    /// untransformed netlists for the Table IV ablation).
    pub feature_dim: usize,
    /// Hidden width of the regressor MLP.
    pub regressor_hidden: usize,
    /// Whether a separate regressor head is used per gate type.
    pub per_type_regressor: bool,
    /// Seed for weight initialisation.
    pub seed: u64,
}

impl Default for DeepGateConfig {
    fn default() -> Self {
        DeepGateConfig {
            hidden_dim: 64,
            num_iterations: 10,
            use_skip_connections: true,
            skip_encoding_frequencies: 8,
            reverse_layer: true,
            feature_dim: 3,
            regressor_hidden: 32,
            per_type_regressor: true,
            seed: 0,
        }
    }
}

impl DeepGateConfig {
    /// The equivalent [`DagRecConfig`] used to instantiate the underlying
    /// recurrent DAG-GNN.
    pub fn to_dag_rec_config(self) -> DagRecConfig {
        DagRecConfig {
            feature_dim: self.feature_dim,
            hidden_dim: self.hidden_dim,
            num_iterations: self.num_iterations,
            aggregator: AggregatorKind::Attention,
            reverse_layer: self.reverse_layer,
            fix_gate_input: true,
            use_skip_connections: self.use_skip_connections,
            skip_encoding_frequencies: self.skip_encoding_frequencies,
            regressor_hidden: self.regressor_hidden,
            per_type_regressor: self.per_type_regressor,
            seed: self.seed,
        }
    }
}

/// Checkpoint format: configuration plus serialised weights.
#[derive(Debug, Serialize, Deserialize)]
struct Checkpoint {
    config: DeepGateConfig,
    weights: serde_json::Value,
}

/// The DeepGate model together with its trainable parameters.
///
/// The struct owns a [`ParamStore`]; training goes through
/// [`crate::Trainer`], which borrows the store mutably while treating the
/// model through the [`ProbabilityModel`] interface shared with the
/// baselines.
#[derive(Debug, Clone)]
pub struct DeepGate {
    config: DeepGateConfig,
    store: ParamStore,
    model: DagRecGnn,
}

impl DeepGate {
    /// Creates a DeepGate model with freshly initialised weights.
    pub fn new(config: DeepGateConfig) -> Self {
        let mut store = ParamStore::new();
        let model = DagRecGnn::new(&mut store, config.to_dag_rec_config());
        DeepGate {
            config,
            store,
            model,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> DeepGateConfig {
        self.config
    }

    /// The underlying recurrent DAG-GNN (useful for composing with the
    /// generic [`crate::Trainer`]).
    pub fn model(&self) -> &DagRecGnn {
        &self.model
    }

    /// The parameter store.
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable access to the parameter store (used by the trainer).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Number of trainable scalar weights.
    pub fn num_weights(&self) -> usize {
        self.store.num_weights()
    }

    /// Predicts the signal probability of every node of a circuit.
    pub fn predict(&self, circuit: &CircuitGraph) -> Vec<f32> {
        self.model.predict(&self.store, circuit)
    }

    /// Fallible prediction: validates the circuit's feature encoding against
    /// the model configuration instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::EncodingMismatch`] for incompatible circuits.
    pub fn try_predict(&self, circuit: &CircuitGraph) -> Result<Vec<f32>, GnnError> {
        self.model.try_predict(&self.store, circuit)
    }

    /// Precomputes the reusable inference state of a circuit (see
    /// [`InferencePlan`]).
    pub fn plan(&self, circuit: &CircuitGraph) -> InferencePlan {
        self.model.plan(circuit)
    }

    /// Bakes the current weights into a [`CompiledKernel`] for the given
    /// scoring mode. The kernel snapshots the weights, so recompile after
    /// training updates the store.
    pub fn compile(&self, mode: QuantMode) -> CompiledKernel {
        self.model.compile(&self.store, mode)
    }

    /// Plan-based prediction into a caller-owned buffer — the allocation
    /// -reusing serving hot path behind `deepgate::InferenceSession`.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::EncodingMismatch`] for incompatible circuits.
    pub fn try_predict_into(
        &self,
        circuit: &CircuitGraph,
        plan: &InferencePlan,
        out: &mut Vec<f32>,
    ) -> Result<(), GnnError> {
        self.model
            .try_predict_into(&self.store, circuit, plan, self.config.num_iterations, out)
    }

    /// [`DeepGate::try_predict_into`] with optional kernel telemetry — see
    /// [`DagRecGnn::try_predict_into_metered`].
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::EncodingMismatch`] for incompatible circuits.
    pub fn try_predict_into_metered(
        &self,
        circuit: &CircuitGraph,
        plan: &InferencePlan,
        out: &mut Vec<f32>,
        metrics: Option<&deepgate_gnn::GnnMetrics>,
    ) -> Result<(), GnnError> {
        self.model.try_predict_into_metered(
            &self.store,
            circuit,
            plan,
            self.config.num_iterations,
            out,
            metrics,
        )
    }

    /// Predicts with an explicit recurrence iteration count (the paper's
    /// Section IV-D2 sweeps `T` from 1 to 50 at inference time).
    pub fn predict_with_iterations(&self, circuit: &CircuitGraph, iterations: usize) -> Vec<f32> {
        self.model
            .predict_with_iterations(&self.store, circuit, iterations)
    }

    /// Returns the final node embeddings `h_v^T` — the learned neural
    /// representations of the logic gates.
    pub fn embeddings(&self, circuit: &CircuitGraph) -> Tensor {
        self.model
            .embed_with_iterations(&self.store, circuit, self.config.num_iterations)
    }

    /// Fallible [`DeepGate::embeddings`]: validates the circuit's feature
    /// encoding against the model configuration instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::EncodingMismatch`] for incompatible circuits.
    pub fn try_embeddings(&self, circuit: &CircuitGraph) -> Result<Tensor, GnnError> {
        self.model
            .try_embed_with_iterations(&self.store, circuit, self.config.num_iterations)
    }

    /// Average prediction error (Eq. 8) of the model over a set of labelled
    /// circuits.
    ///
    /// # Errors
    ///
    /// Returns a [`GnnError`] if any circuit has no labels attached or is
    /// incompatible with the model.
    pub fn evaluate(&self, circuits: &[CircuitGraph]) -> Result<f64, GnnError> {
        if circuits.is_empty() {
            return Ok(0.0);
        }
        let mut total = 0.0f64;
        for circuit in circuits {
            total += evaluate_prediction_error(&self.try_predict(circuit)?, circuit)?;
        }
        Ok(total / circuits.len() as f64)
    }

    /// Serialises the configuration and weights to a JSON checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Serde`] if serialisation fails.
    pub fn to_checkpoint(&self) -> Result<String, NnError> {
        let weights: serde_json::Value = serde_json::from_str(&self.store.to_json()?)
            .map_err(|e| NnError::Serde(e.to_string()))?;
        let checkpoint = Checkpoint {
            config: self.config,
            weights,
        };
        serde_json::to_string(&checkpoint).map_err(|e| NnError::Serde(e.to_string()))
    }

    /// Restores a model from a checkpoint produced by
    /// [`DeepGate::to_checkpoint`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Serde`] for malformed checkpoints and
    /// [`NnError::MissingParameter`] / [`NnError::ShapeMismatch`] when the
    /// weights do not match the stored configuration.
    pub fn from_checkpoint(json: &str) -> Result<Self, NnError> {
        let checkpoint: Checkpoint =
            serde_json::from_str(json).map_err(|e| NnError::Serde(e.to_string()))?;
        let mut model = DeepGate::new(checkpoint.config);
        let weights_json = serde_json::to_string(&checkpoint.weights)
            .map_err(|e| NnError::Serde(e.to_string()))?;
        model.store.load_json(&weights_json)?;
        Ok(model)
    }
}

impl ProbabilityModel for DeepGate {
    fn forward(&self, g: &mut Graph, store: &ParamStore, circuit: &CircuitGraph) -> Var {
        self.model.forward(g, store, circuit)
    }

    fn try_forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        circuit: &CircuitGraph,
    ) -> Result<Var, GnnError> {
        self.model.try_forward(g, store, circuit)
    }

    fn predict(&self, store: &ParamStore, circuit: &CircuitGraph) -> Vec<f32> {
        self.model.predict(store, circuit)
    }

    fn try_predict(
        &self,
        store: &ParamStore,
        circuit: &CircuitGraph,
    ) -> Result<Vec<f32>, GnnError> {
        self.model.try_predict(store, circuit)
    }

    fn name(&self) -> String {
        self.model.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepgate_gnn::FeatureEncoding;
    use deepgate_netlist::{GateKind, Netlist};

    fn circuit() -> CircuitGraph {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g1 = n.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = n.add_gate(GateKind::Not, &[g1]).unwrap();
        let g3 = n.add_gate(GateKind::And, &[g1, c]).unwrap();
        let g4 = n.add_gate(GateKind::And, &[g2, g3]).unwrap();
        n.mark_output(g4, "y");
        CircuitGraph::from_netlist(&n, FeatureEncoding::AigGates, None)
    }

    fn small_config() -> DeepGateConfig {
        DeepGateConfig {
            hidden_dim: 12,
            num_iterations: 2,
            regressor_hidden: 8,
            ..DeepGateConfig::default()
        }
    }

    #[test]
    fn prediction_and_embedding_shapes() {
        let c = circuit();
        let model = DeepGate::new(small_config());
        let pred = model.predict(&c);
        assert_eq!(pred.len(), c.num_nodes);
        assert!(pred.iter().all(|&p| (0.0..=1.0).contains(&p)));
        let emb = model.embeddings(&c);
        assert_eq!(emb.shape(), [c.num_nodes, 12]);
        assert!(model.num_weights() > 0);
        assert!(ProbabilityModel::name(&model).contains("DeepGate"));
    }

    #[test]
    fn checkpoint_roundtrip_preserves_predictions() {
        let c = circuit();
        let model = DeepGate::new(small_config());
        let json = model.to_checkpoint().unwrap();
        let restored = DeepGate::from_checkpoint(&json).unwrap();
        assert_eq!(restored.config(), model.config());
        let a = model.predict(&c);
        let b = restored.predict(&c);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn from_checkpoint_rejects_garbage() {
        assert!(DeepGate::from_checkpoint("not json").is_err());
        assert!(DeepGate::from_checkpoint("{}").is_err());
    }

    #[test]
    fn evaluate_averages_over_circuits() {
        let mut c1 = circuit();
        let mut c2 = circuit();
        let n = c1.num_nodes;
        c1.set_labels(vec![0.5; n]);
        c2.set_labels(vec![0.5; n]);
        let model = DeepGate::new(small_config());
        let err = model.evaluate(&[c1, c2]).unwrap();
        assert!((0.0..=0.5).contains(&err));
        assert_eq!(model.evaluate(&[]).unwrap(), 0.0);
    }

    #[test]
    fn evaluate_rejects_unlabelled_circuits() {
        let model = DeepGate::new(small_config());
        let err = model.evaluate(&[circuit()]).unwrap_err();
        assert!(matches!(err, GnnError::UnlabelledCircuit { .. }));
    }

    #[test]
    fn plan_based_prediction_matches_direct_prediction() {
        let c = circuit();
        let model = DeepGate::new(small_config());
        let direct = model.predict(&c);
        let plan = model.plan(&c);
        let mut out = Vec::new();
        model.try_predict_into(&c, &plan, &mut out).unwrap();
        assert_eq!(out.len(), direct.len());
        for (a, b) in direct.iter().zip(&out) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn config_maps_to_dag_rec_config() {
        let config = small_config();
        let dag = config.to_dag_rec_config();
        assert_eq!(dag.hidden_dim, 12);
        assert_eq!(dag.aggregator, AggregatorKind::Attention);
        assert!(dag.fix_gate_input);
        assert!(dag.use_skip_connections);
    }

    #[test]
    fn iteration_count_changes_prediction() {
        let c = circuit();
        let model = DeepGate::new(small_config());
        let p1 = model.predict_with_iterations(&c, 1);
        let p5 = model.predict_with_iterations(&c, 5);
        assert!(p1.iter().zip(&p5).any(|(a, b)| (a - b).abs() > 1e-7));
    }
}
