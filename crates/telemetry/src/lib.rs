//! Std-only observability primitives for the DeepGate serving stack.
//!
//! Every layer of the request path — the TCP front end, the scheduler, the
//! structural cache, the engine facade and the GNN inference kernel — records
//! into the primitives of this crate; the `metrics` and `metrics_text` wire
//! verbs of `deepgate-serve` read them back out. Three design rules keep the
//! overhead negligible on the hot path:
//!
//! - **Lock-free recording.** [`Counter`], [`Gauge`] and [`Histogram`] are
//!   plain atomics (a histogram is a fixed array of them); recording is a
//!   handful of relaxed atomic ops, never a lock, never an allocation.
//! - **Fixed log-bucket histograms.** [`Histogram`] buckets values on a
//!   log-linear scale (8 sub-buckets per power of two, ≤ ~12% relative
//!   error), covering the full `u64` range in 496 buckets — nanosecond
//!   latencies and million-node circuit sizes share one implementation.
//!   p50/p90/p99 come from the bucket counts; the maximum is tracked exactly.
//! - **One registry, one snapshot.** Metrics register by name in a
//!   [`Registry`]; [`Registry::snapshot`] walks every series in a single
//!   pass, so consumers (the `stats`/`metrics` verbs) assemble their view
//!   from one read instead of polling subsystems at different instants.
//!
//! The span layer ([`Stage`], [`RequestTrace`], [`StageTimer`]) gives each
//! request a per-stage latency breakdown from TCP read to response write;
//! [`StageSet`] folds completed traces into per-stage histograms and
//! [`SlowLog`] renders structured one-line records for requests over a
//! threshold, naming the dominant stage.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metric;
mod registry;
mod span;

pub use metric::{Bucket, Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{Registry, Snapshot};
pub use span::{RequestTrace, SlowLog, Stage, StageSet, StageTimer};
