//! Full AIGER subsystem: binary (`aig`) and ASCII (`aag`) readers and
//! writers, plus the latch-aware ingestion policies.
//!
//! AIGER is the de-facto interchange format of the hardware model-checking
//! and logic-synthesis communities; the circuit suites the DeepGate paper
//! evaluates on (EPFL / ISCAS / HWMCC) ship in it. This module implements
//! the format end-to-end, std-only:
//!
//! - [`parse_aag`] / [`parse_aig`] / [`parse_auto`] — readers for the ASCII
//!   and binary encodings. The binary reader streams over any
//!   [`std::io::Read`], decoding the delta-compressed AND section without
//!   buffering the whole file. Malformed input of either flavour always
//!   yields a typed [`AigerError`], never a panic.
//! - [`write_aag`] / [`write_aig`] — writers emitting a *canonical* variable
//!   numbering (inputs, then latches, then ANDs in topological order), so
//!   two structurally identical AIGs serialise to identical bytes — the
//!   property the round-trip tests and the serving cache rely on.
//! - [`LatchPolicy`] — how sequential circuits enter the (combinational)
//!   DeepGate pipeline: cut latch boundaries into pseudo-PI/PO, or unroll a
//!   fixed number of time frames.
//! - [`random_aig`] — a deterministic sequential-AIG generator for tests
//!   and benchmarks.

use crate::{Aig, AigLit};
use std::fmt;
use std::io::Read;

/// Upper bound on the `M` (maximum variable index) header field accepted by
/// the parsers. Guards against hostile headers that would otherwise drive
/// allocation of billions of nodes before any body byte is validated.
pub const MAX_VARS: usize = 1 << 24;

/// Errors produced while reading or writing AIGER files.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AigerError {
    /// The `aag`/`aig` header line is missing, malformed or inconsistent.
    Header(String),
    /// A line of the ASCII body or symbol table could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// The binary AND section is corrupt.
    Binary {
        /// Byte offset of the offending byte.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// The input ended before the structures promised by the header.
    Truncated(String),
    /// The file is well-formed AIGER but uses a feature this reader does not
    /// support (e.g. non-contiguous variable numbering).
    Unsupported(String),
    /// The parsed structure is inconsistent (cycles, bad references) or an
    /// in-memory AIG cannot be serialised.
    Structure(String),
    /// An I/O error from the underlying reader.
    Io(String),
}

impl fmt::Display for AigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AigerError::Header(msg) => write!(f, "aiger header error: {msg}"),
            AigerError::Parse { line, message } => {
                write!(f, "aiger parse error at line {line}: {message}")
            }
            AigerError::Binary { offset, message } => {
                write!(f, "aiger binary error at byte {offset}: {message}")
            }
            AigerError::Truncated(msg) => write!(f, "aiger input truncated: {msg}"),
            AigerError::Unsupported(msg) => write!(f, "unsupported aiger feature: {msg}"),
            AigerError::Structure(msg) => write!(f, "aiger structure error: {msg}"),
            AigerError::Io(msg) => write!(f, "aiger i/o error: {msg}"),
        }
    }
}

impl std::error::Error for AigerError {}

impl From<std::io::Error> for AigerError {
    fn from(err: std::io::Error) -> Self {
        AigerError::Io(err.to_string())
    }
}

/// How a sequential AIG (one with latches) is turned into the combinational
/// graph the DeepGate model consumes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum LatchPolicy {
    /// Cut every latch boundary: the current state becomes a pseudo primary
    /// input and the next-state function a pseudo primary output
    /// (`<name>_next`). This is the paper's combinational-cone treatment and
    /// the default.
    #[default]
    Cut,
    /// Unroll the given number of time frames into one combinational AIG;
    /// frame-`t` inputs and outputs are suffixed `@t`.
    Unroll(usize),
}

impl fmt::Display for LatchPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatchPolicy::Cut => write!(f, "cut"),
            LatchPolicy::Unroll(k) => write!(f, "unroll:{k}"),
        }
    }
}

impl LatchPolicy {
    /// Applies the policy, producing a purely combinational AIG.
    ///
    /// # Errors
    ///
    /// Returns [`crate::AigError::InvalidNetlist`] for `Unroll(0)`.
    pub fn apply(&self, aig: &Aig) -> Result<Aig, crate::AigError> {
        match self {
            LatchPolicy::Cut => Ok(aig.cut_latches()),
            LatchPolicy::Unroll(frames) => aig.unroll(*frames),
        }
    }
}

// ---------------------------------------------------------------------------
// Header
// ---------------------------------------------------------------------------

struct Header {
    m: usize,
    i: usize,
    l: usize,
    o: usize,
    a: usize,
}

fn parse_header(line: &str, tag: &str) -> Result<Header, AigerError> {
    let parts: Vec<&str> = line.split_whitespace().collect();
    if parts.len() != 6 || parts[0] != tag {
        return Err(AigerError::Header(format!(
            "expected `{tag} M I L O A`, got `{line}`"
        )));
    }
    let num = |s: &str| -> Result<usize, AigerError> {
        s.parse()
            .map_err(|_| AigerError::Header(format!("invalid count `{s}`")))
    };
    let header = Header {
        m: num(parts[1])?,
        i: num(parts[2])?,
        l: num(parts[3])?,
        o: num(parts[4])?,
        a: num(parts[5])?,
    };
    if header.m > MAX_VARS {
        return Err(AigerError::Unsupported(format!(
            "M = {} exceeds the supported maximum of {MAX_VARS}",
            header.m
        )));
    }
    let body = header
        .i
        .checked_add(header.l)
        .and_then(|x| x.checked_add(header.a));
    match body {
        Some(total) if total == header.m => Ok(header),
        Some(total) => Err(AigerError::Header(format!(
            "M = {} but I + L + A = {total} (non-contiguous numbering is unsupported)",
            header.m
        ))),
        None => Err(AigerError::Header("header counts overflow".into())),
    }
}

/// Converts a raw AIGER literal into an [`AigLit`] through a variable → node
/// literal map, preserving the complement bit.
fn lit_from_raw(var2lit: &[AigLit], raw: u64) -> AigLit {
    let base = var2lit[(raw / 2) as usize];
    if raw % 2 == 1 {
        base.complement()
    } else {
        base
    }
}

fn check_literal(raw: u64, m: usize, context: impl Fn() -> AigerError) -> Result<(), AigerError> {
    if raw / 2 > m as u64 {
        return Err(context());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// ASCII reader
// ---------------------------------------------------------------------------

/// Parses AIGER-ASCII (`aag`) text into an [`Aig`] named `name`.
///
/// Latches are read into first-class [`crate::AigLatch`] entries (AIGER 1.9
/// reset semantics: `0`, `1`, or the latch's own literal for
/// *uninitialised*). AND definitions may appear in any order; forward
/// references are resolved as long as the definitions are acyclic.
///
/// # Errors
///
/// Returns an [`AigerError`] describing the first problem found; malformed
/// input never panics.
pub fn parse_aag(text: &str, name: impl Into<String>) -> Result<Aig, AigerError> {
    let mut lines = text.lines().enumerate().map(|(n, l)| (n + 1, l));
    let (_, header_line) = lines
        .next()
        .ok_or_else(|| AigerError::Truncated("empty file".into()))?;
    let header = parse_header(header_line, "aag")?;
    // Every variable needs at least two bytes of text (digit + separator), so
    // a header promising more variables than bytes is rejected before any
    // allocation proportional to M.
    if header.m > text.len() {
        return Err(AigerError::Truncated(format!(
            "header promises {} variables but the file holds {} bytes",
            header.m,
            text.len()
        )));
    }

    let parse_u64 = |s: &str, line: usize| -> Result<u64, AigerError> {
        s.parse().map_err(|_| AigerError::Parse {
            line,
            message: format!("invalid literal `{s}`"),
        })
    };

    let mut aig = Aig::new(name);
    // Variable index -> literal in `aig`; slot 0 is the constant.
    let mut var2lit: Vec<Option<AigLit>> = vec![None; header.m + 1];
    var2lit[0] = Some(AigLit::FALSE);

    let mut next_line = |what: &str| -> Result<(usize, &str), AigerError> {
        lines
            .next()
            .ok_or_else(|| AigerError::Truncated(format!("missing {what} line")))
    };

    let define = |var2lit: &mut [Option<AigLit>],
                  raw: u64,
                  line: usize,
                  what: &str|
     -> Result<usize, AigerError> {
        if raw % 2 == 1 || raw == 0 {
            return Err(AigerError::Parse {
                line,
                message: format!("{what} literal {raw} must be even and non-zero"),
            });
        }
        let var = (raw / 2) as usize;
        if var > header.m {
            return Err(AigerError::Parse {
                line,
                message: format!("{what} literal {raw} exceeds M = {}", header.m),
            });
        }
        if var2lit[var].is_some() {
            return Err(AigerError::Parse {
                line,
                message: format!("variable {var} is defined twice"),
            });
        }
        Ok(var)
    };

    for k in 0..header.i {
        let (line_no, line) = next_line("input")?;
        let raw = parse_u64(line.trim(), line_no)?;
        let var = define(&mut var2lit, raw, line_no, "input")?;
        var2lit[var] = Some(aig.add_input(format!("i{k}")));
    }

    // Latch lines: `state next [init]`.
    let mut latch_state_raw = Vec::with_capacity(header.l.min(1024));
    let mut latch_next_raw = Vec::with_capacity(header.l.min(1024));
    let mut latch_init_raw: Vec<Option<u64>> = Vec::with_capacity(header.l.min(1024));
    for k in 0..header.l {
        let (line_no, line) = next_line("latch")?;
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 2 || fields.len() > 3 {
            return Err(AigerError::Parse {
                line: line_no,
                message: "latch line must be `state next [init]`".into(),
            });
        }
        let state = parse_u64(fields[0], line_no)?;
        let next = parse_u64(fields[1], line_no)?;
        check_literal(next, header.m, || AigerError::Parse {
            line: line_no,
            message: format!("latch next literal {next} exceeds M = {}", header.m),
        })?;
        let init = if fields.len() == 3 {
            Some(parse_u64(fields[2], line_no)?)
        } else {
            None
        };
        let var = define(&mut var2lit, state, line_no, "latch")?;
        var2lit[var] = Some(aig.add_latch(format!("l{k}")));
        latch_state_raw.push(state);
        latch_next_raw.push(next);
        latch_init_raw.push(init);
    }

    let mut output_raw = Vec::with_capacity(header.o.min(1024));
    for _ in 0..header.o {
        let (line_no, line) = next_line("output")?;
        let raw = parse_u64(line.trim(), line_no)?;
        check_literal(raw, header.m, || AigerError::Parse {
            line: line_no,
            message: format!("output literal {raw} exceeds M = {}", header.m),
        })?;
        output_raw.push(raw);
    }

    // AND definitions, keyed by variable; resolved below so out-of-order
    // (forward-referencing) definitions are accepted.
    let mut and_defs: Vec<Option<(u64, u64)>> = vec![None; header.m + 1];
    for _ in 0..header.a {
        let (line_no, line) = next_line("and")?;
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 3 {
            return Err(AigerError::Parse {
                line: line_no,
                message: "and line must be `lhs rhs0 rhs1`".into(),
            });
        }
        let lhs = parse_u64(fields[0], line_no)?;
        let rhs0 = parse_u64(fields[1], line_no)?;
        let rhs1 = parse_u64(fields[2], line_no)?;
        for rhs in [rhs0, rhs1] {
            check_literal(rhs, header.m, || AigerError::Parse {
                line: line_no,
                message: format!("and fan-in literal {rhs} exceeds M = {}", header.m),
            })?;
        }
        let var = define(&mut var2lit, lhs, line_no, "and")?;
        if and_defs[var].is_some() {
            return Err(AigerError::Parse {
                line: line_no,
                message: format!("variable {var} is defined twice"),
            });
        }
        and_defs[var] = Some((rhs0, rhs1));
    }

    // Symbol table (`iN`/`lN`/`oN` names) and trailing comment.
    let mut input_names: Vec<Option<String>> = vec![None; header.i];
    let mut latch_names: Vec<Option<String>> = vec![None; header.l];
    let mut output_names: Vec<Option<String>> = vec![None; header.o];
    for (line_no, line) in lines {
        let line = line.trim();
        if line == "c" {
            break;
        }
        if line.is_empty() {
            continue;
        }
        let (kind, rest) = line.split_at(1);
        let slot = match kind {
            "i" => Some(&mut input_names),
            "l" => Some(&mut latch_names),
            "o" => Some(&mut output_names),
            _ => None,
        };
        let parsed = slot.and_then(|names| {
            let (idx, name) = rest.split_once(' ')?;
            let idx: usize = idx.parse().ok()?;
            if idx >= names.len() {
                return None;
            }
            names[idx] = Some(name.to_string());
            Some(())
        });
        if parsed.is_none() {
            return Err(AigerError::Parse {
                line: line_no,
                message: format!("invalid symbol table line `{line}`"),
            });
        }
    }

    // Every variable must be defined exactly once.
    for var in 1..=header.m {
        if var2lit[var].is_none() && and_defs[var].is_none() {
            return Err(AigerError::Structure(format!(
                "variable {var} is never defined"
            )));
        }
    }

    resolve_and_defs(&mut aig, &mut var2lit, &and_defs)?;
    let var2lit: Vec<AigLit> = var2lit
        .into_iter()
        .map(|l| l.expect("all variables resolved above"))
        .collect();

    finish_latches(
        &mut aig,
        &var2lit,
        &latch_state_raw,
        &latch_next_raw,
        &latch_init_raw,
    )?;
    for (k, raw) in output_raw.into_iter().enumerate() {
        let name = output_names[k].take().unwrap_or_else(|| format!("o{k}"));
        aig.add_output(lit_from_raw(&var2lit, raw), name);
    }
    for (k, name) in input_names.into_iter().enumerate() {
        if let Some(name) = name {
            aig.set_input_name(k, name);
        }
    }
    for (k, name) in latch_names.into_iter().enumerate() {
        if let Some(name) = name {
            aig.set_latch_name(k, name);
        }
    }
    aig.rebuild_strash();
    Ok(aig)
}

/// Emits the stored AND definitions into `aig` in dependency order (iterative
/// DFS, so deep circuits cannot overflow the stack), detecting cycles.
fn resolve_and_defs(
    aig: &mut Aig,
    var2lit: &mut [Option<AigLit>],
    and_defs: &[Option<(u64, u64)>],
) -> Result<(), AigerError> {
    enum Visit {
        Enter(usize),
        Exit(usize),
    }
    let mut on_path = vec![false; and_defs.len()];
    let mut stack: Vec<Visit> = Vec::new();
    for root in 1..and_defs.len() {
        if and_defs[root].is_none() || var2lit[root].is_some() {
            continue;
        }
        stack.push(Visit::Enter(root));
        while let Some(visit) = stack.pop() {
            match visit {
                Visit::Enter(var) => {
                    if var2lit[var].is_some() {
                        continue;
                    }
                    if on_path[var] {
                        return Err(AigerError::Structure(format!(
                            "combinational cycle through variable {var}"
                        )));
                    }
                    on_path[var] = true;
                    let (rhs0, rhs1) = and_defs[var].expect("undefined variables rejected earlier");
                    stack.push(Visit::Exit(var));
                    for rhs in [rhs0, rhs1] {
                        let child = (rhs / 2) as usize;
                        if var2lit[child].is_none() {
                            stack.push(Visit::Enter(child));
                        }
                    }
                }
                Visit::Exit(var) => {
                    let (rhs0, rhs1) = and_defs[var].expect("undefined variables rejected earlier");
                    let a = lit_from_raw_partial(var2lit, rhs0);
                    let b = lit_from_raw_partial(var2lit, rhs1);
                    var2lit[var] = Some(aig.push_raw_and(a, b));
                    on_path[var] = false;
                }
            }
        }
    }
    Ok(())
}

fn lit_from_raw_partial(var2lit: &[Option<AigLit>], raw: u64) -> AigLit {
    let base = var2lit[(raw / 2) as usize].expect("child resolved before parent");
    if raw % 2 == 1 {
        base.complement()
    } else {
        base
    }
}

/// Applies the recorded latch next/init literals once all variables resolve.
fn finish_latches(
    aig: &mut Aig,
    var2lit: &[AigLit],
    state_raw: &[u64],
    next_raw: &[u64],
    init_raw: &[Option<u64>],
) -> Result<(), AigerError> {
    let entries = state_raw.iter().zip(next_raw).zip(init_raw).enumerate();
    for (k, ((&state, &next), &init)) in entries {
        aig.set_latch_next(k, lit_from_raw(var2lit, next));
        let init = match init {
            None | Some(0) => Some(false),
            Some(1) => Some(true),
            Some(v) if v == state => None, // self-reference: uninitialised
            Some(v) => {
                return Err(AigerError::Structure(format!(
                    "latch {k} has invalid reset literal {v}"
                )))
            }
        };
        aig.set_latch_init(k, init);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Binary reader
// ---------------------------------------------------------------------------

/// Tracks the byte offset while reading, for error reporting.
struct ByteReader<R: Read> {
    inner: R,
    offset: usize,
}

impl<R: Read> ByteReader<R> {
    fn new(inner: R) -> Self {
        ByteReader { inner, offset: 0 }
    }

    /// Reads one byte; `Ok(None)` at end of input.
    fn next_byte(&mut self) -> Result<Option<u8>, AigerError> {
        let mut buf = [0u8; 1];
        loop {
            match self.inner.read(&mut buf) {
                Ok(0) => return Ok(None),
                Ok(_) => {
                    self.offset += 1;
                    return Ok(Some(buf[0]));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Reads an ASCII line up to `\n` (consumed, not returned); `Ok(None)` if
    /// the input is already exhausted.
    fn next_line(&mut self) -> Result<Option<String>, AigerError> {
        let mut line = String::new();
        let mut saw_any = false;
        while let Some(byte) = self.next_byte()? {
            saw_any = true;
            if byte == b'\n' {
                return Ok(Some(line));
            }
            if !byte.is_ascii() {
                return Err(AigerError::Binary {
                    offset: self.offset,
                    message: format!("non-ascii byte 0x{byte:02x} in text section"),
                });
            }
            line.push(byte as char);
        }
        if saw_any {
            Ok(Some(line))
        } else {
            Ok(None)
        }
    }

    /// Decodes one 7-bit little-endian varint (the AIGER delta encoding).
    fn next_varint(&mut self) -> Result<u64, AigerError> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.next_byte()?.ok_or_else(|| {
                AigerError::Truncated("binary and section ended mid-varint".into())
            })?;
            if shift >= 63 {
                return Err(AigerError::Binary {
                    offset: self.offset,
                    message: "varint exceeds 63 bits".into(),
                });
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }
}

/// Parses binary AIGER (`aig`) from a streaming reader into an [`Aig`] named
/// `name`.
///
/// The delta-compressed AND section is decoded incrementally, so arbitrarily
/// large files parse in one pass without buffering.
///
/// # Errors
///
/// Returns an [`AigerError`] describing the first problem found (with byte
/// offsets for binary-section corruption); malformed input never panics.
pub fn parse_aig<R: Read>(reader: R, name: impl Into<String>) -> Result<Aig, AigerError> {
    let mut r = ByteReader::new(reader);
    let header_line = r
        .next_line()?
        .ok_or_else(|| AigerError::Truncated("empty file".into()))?;
    let header = parse_header(&header_line, "aig")?;

    let mut aig = Aig::new(name);
    // Binary AIGER fixes the variable order: inputs 1..=I, latches I+1..=I+L,
    // ands I+L+1..=M — exactly the node layout `Aig` uses, so variable k is
    // node k and no remapping table is needed.
    for k in 0..header.i {
        aig.add_input(format!("i{k}"));
    }
    for k in 0..header.l {
        aig.add_latch(format!("l{k}"));
    }

    let parse_u64 = |s: &str, what: &str, offset: usize| -> Result<u64, AigerError> {
        s.parse().map_err(|_| AigerError::Binary {
            offset,
            message: format!("invalid {what} literal `{s}`"),
        })
    };

    let mut latch_next_raw = Vec::with_capacity(header.l.min(1024));
    let mut latch_init_raw: Vec<Option<u64>> = Vec::with_capacity(header.l.min(1024));
    for k in 0..header.l {
        let line = r
            .next_line()?
            .ok_or_else(|| AigerError::Truncated(format!("missing latch line {k}")))?;
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.is_empty() || fields.len() > 2 {
            return Err(AigerError::Binary {
                offset: r.offset,
                message: "latch line must be `next [init]`".into(),
            });
        }
        let next = parse_u64(fields[0], "latch next", r.offset)?;
        check_literal(next, header.m, || AigerError::Binary {
            offset: r.offset,
            message: format!("latch next literal {next} exceeds M = {}", header.m),
        })?;
        latch_next_raw.push(next);
        latch_init_raw.push(if fields.len() == 2 {
            Some(parse_u64(fields[1], "latch init", r.offset)?)
        } else {
            None
        });
    }

    let mut output_raw = Vec::with_capacity(header.o.min(1024));
    for k in 0..header.o {
        let line = r
            .next_line()?
            .ok_or_else(|| AigerError::Truncated(format!("missing output line {k}")))?;
        let raw = parse_u64(line.trim(), "output", r.offset)?;
        check_literal(raw, header.m, || AigerError::Binary {
            offset: r.offset,
            message: format!("output literal {raw} exceeds M = {}", header.m),
        })?;
        output_raw.push(raw);
    }

    // Delta-coded AND section: for gate k, lhs = 2 * (I + L + k + 1),
    // rhs0 = lhs - delta0, rhs1 = rhs0 - delta1.
    for k in 0..header.a {
        let lhs = 2 * (header.i + header.l + k + 1) as u64;
        let delta0 = r.next_varint()?;
        if delta0 == 0 || delta0 > lhs {
            return Err(AigerError::Binary {
                offset: r.offset,
                message: format!("and {k}: delta0 = {delta0} out of range for lhs {lhs}"),
            });
        }
        let rhs0 = lhs - delta0;
        let delta1 = r.next_varint()?;
        if delta1 > rhs0 {
            return Err(AigerError::Binary {
                offset: r.offset,
                message: format!("and {k}: delta1 = {delta1} out of range for rhs0 {rhs0}"),
            });
        }
        let rhs1 = rhs0 - delta1;
        aig.push_raw_and(AigLit::from_raw(rhs0 as u32), AigLit::from_raw(rhs1 as u32));
    }

    // Symbol table and comment, same text grammar as ASCII AIGER.
    let mut input_names: Vec<Option<String>> = vec![None; header.i];
    let mut latch_names: Vec<Option<String>> = vec![None; header.l];
    let mut output_names: Vec<Option<String>> = vec![None; header.o];
    while let Some(line) = r.next_line()? {
        let line = line.trim();
        if line == "c" {
            break;
        }
        if line.is_empty() {
            continue;
        }
        let (kind, rest) = line.split_at(1);
        let slot = match kind {
            "i" => Some(&mut input_names),
            "l" => Some(&mut latch_names),
            "o" => Some(&mut output_names),
            _ => None,
        };
        let parsed = slot.and_then(|names| {
            let (idx, name) = rest.split_once(' ')?;
            let idx: usize = idx.parse().ok()?;
            if idx >= names.len() {
                return None;
            }
            names[idx] = Some(name.to_string());
            Some(())
        });
        if parsed.is_none() {
            return Err(AigerError::Binary {
                offset: r.offset,
                message: format!("invalid symbol table line `{line}`"),
            });
        }
    }

    // Variable k is node k, so the identity map resolves literals.
    let var2lit: Vec<AigLit> = (0..=header.m).map(AigLit::positive).collect();
    let state_raw: Vec<u64> = (0..header.l)
        .map(|k| 2 * (header.i + k + 1) as u64)
        .collect();
    finish_latches(
        &mut aig,
        &var2lit,
        &state_raw,
        &latch_next_raw,
        &latch_init_raw,
    )?;
    for (k, raw) in output_raw.into_iter().enumerate() {
        let name = output_names[k].take().unwrap_or_else(|| format!("o{k}"));
        aig.add_output(lit_from_raw(&var2lit, raw), name);
    }
    for (k, name) in input_names.into_iter().enumerate() {
        if let Some(name) = name {
            aig.set_input_name(k, name);
        }
    }
    for (k, name) in latch_names.into_iter().enumerate() {
        if let Some(name) = name {
            aig.set_latch_name(k, name);
        }
    }
    aig.rebuild_strash();
    Ok(aig)
}

/// Parses either AIGER flavour, dispatching on the header magic
/// (`aag` → ASCII, `aig` → binary).
///
/// # Errors
///
/// Returns an [`AigerError`] for unrecognised magic bytes, non-UTF-8 ASCII
/// input, or any flavour-specific parse failure.
pub fn parse_auto(bytes: &[u8], name: impl Into<String>) -> Result<Aig, AigerError> {
    if bytes.starts_with(b"aag") {
        let text = std::str::from_utf8(bytes)
            .map_err(|e| AigerError::Header(format!("ascii aiger is not valid utf-8: {e}")))?;
        parse_aag(text, name)
    } else if bytes.starts_with(b"aig") {
        parse_aig(bytes, name)
    } else {
        Err(AigerError::Header(
            "input starts with neither `aag` nor `aig`".into(),
        ))
    }
}

// ---------------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------------

/// Assigns the canonical AIGER variable numbering: inputs in declaration
/// order, then latches in table order, then AND nodes in index order.
fn assign_vars(aig: &Aig) -> Vec<u64> {
    let mut var_of = vec![0u64; aig.len()];
    let mut next = 1u64;
    for &idx in aig.inputs() {
        var_of[idx] = next;
        next += 1;
    }
    for latch in aig.latches() {
        var_of[latch.state] = next;
        next += 1;
    }
    for (i, node) in aig.iter() {
        if node.kind == crate::AigNodeKind::And {
            var_of[i] = next;
            next += 1;
        }
    }
    var_of
}

fn aiger_lit(var_of: &[u64], lit: AigLit) -> u64 {
    2 * var_of[lit.node()] + u64::from(lit.is_complemented())
}

/// One latch line's canonical text: next literal plus reset value when it is
/// not the default 0 (`1` for set, the state literal itself for
/// uninitialised).
fn latch_suffix(var_of: &[u64], latch: &crate::AigLatch) -> String {
    let next = aiger_lit(var_of, latch.next);
    match latch.init {
        Some(false) => next.to_string(),
        Some(true) => format!("{next} 1"),
        None => format!("{next} {}", 2 * var_of[latch.state]),
    }
}

fn push_symbols(out: &mut String, aig: &Aig) {
    use std::fmt::Write as _;
    for (pos, _) in aig.inputs().iter().enumerate() {
        let _ = writeln!(out, "i{pos} {}", aig.input_name(pos));
    }
    for (pos, latch) in aig.latches().iter().enumerate() {
        let _ = writeln!(out, "l{pos} {}", latch.name);
    }
    for (pos, (_, name)) in aig.outputs().iter().enumerate() {
        let _ = writeln!(out, "o{pos} {name}");
    }
    let _ = writeln!(out, "c\n{}", aig.name());
}

/// Serialises an [`Aig`] (latches included) to AIGER-ASCII text with
/// canonical variable numbering, full symbol table and a trailing comment
/// holding the design name.
///
/// Two structurally identical AIGs produce byte-identical text, which is what
/// the round-trip isomorphism tests compare.
pub fn write_aag(aig: &Aig) -> String {
    use std::fmt::Write as _;
    let var_of = assign_vars(aig);
    let (i, l, o, a) = (
        aig.num_inputs(),
        aig.num_latches(),
        aig.num_outputs(),
        aig.num_ands(),
    );
    let m = i + l + a;
    let mut out = String::new();
    let _ = writeln!(out, "aag {m} {i} {l} {o} {a}");
    for &idx in aig.inputs() {
        let _ = writeln!(out, "{}", 2 * var_of[idx]);
    }
    for latch in aig.latches() {
        let _ = writeln!(
            out,
            "{} {}",
            2 * var_of[latch.state],
            latch_suffix(&var_of, latch)
        );
    }
    for (lit, _) in aig.outputs() {
        let _ = writeln!(out, "{}", aiger_lit(&var_of, *lit));
    }
    for (idx, node) in aig.iter() {
        if node.kind != crate::AigNodeKind::And {
            continue;
        }
        let lhs = 2 * var_of[idx];
        let f0 = aiger_lit(&var_of, node.fanin0);
        let f1 = aiger_lit(&var_of, node.fanin1);
        let (rhs0, rhs1) = (f0.max(f1), f0.min(f1));
        let _ = writeln!(out, "{lhs} {rhs0} {rhs1}");
    }
    push_symbols(&mut out, aig);
    out
}

fn push_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Serialises an [`Aig`] (latches included) to binary AIGER with the
/// delta-compressed AND section and canonical variable numbering.
///
/// # Errors
///
/// Returns [`AigerError::Structure`] if an AND fan-in does not precede its
/// gate in the canonical order (possible only for invalid hand-built AIGs).
pub fn write_aig(aig: &Aig) -> Result<Vec<u8>, AigerError> {
    let var_of = assign_vars(aig);
    let (i, l, o, a) = (
        aig.num_inputs(),
        aig.num_latches(),
        aig.num_outputs(),
        aig.num_ands(),
    );
    let m = i + l + a;
    let mut out: Vec<u8> = Vec::new();
    out.extend_from_slice(format!("aig {m} {i} {l} {o} {a}\n").as_bytes());
    for latch in aig.latches() {
        out.extend_from_slice(latch_suffix(&var_of, latch).as_bytes());
        out.push(b'\n');
    }
    for (lit, _) in aig.outputs() {
        out.extend_from_slice(aiger_lit(&var_of, *lit).to_string().as_bytes());
        out.push(b'\n');
    }
    for (idx, node) in aig.iter() {
        if node.kind != crate::AigNodeKind::And {
            continue;
        }
        let lhs = 2 * var_of[idx];
        let f0 = aiger_lit(&var_of, node.fanin0);
        let f1 = aiger_lit(&var_of, node.fanin1);
        let (rhs0, rhs1) = (f0.max(f1), f0.min(f1));
        if rhs0 >= lhs {
            return Err(AigerError::Structure(format!(
                "and node {idx} references a non-preceding fan-in"
            )));
        }
        push_varint(&mut out, lhs - rhs0);
        push_varint(&mut out, rhs0 - rhs1);
    }
    let mut symbols = String::new();
    push_symbols(&mut symbols, aig);
    out.extend_from_slice(symbols.as_bytes());
    Ok(out)
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

/// Generates a deterministic pseudo-random sequential AIG with the given
/// interface sizes: `inputs` primary inputs, `latches` latches (reset values
/// cycling through 0 / 1 / uninitialised) and `ands` AND gates with fan-ins
/// drawn from earlier nodes. Used by the round-trip property tests and the
/// AIGER-shaped inference benchmark.
pub fn random_aig(seed: u64, inputs: usize, latches: usize, ands: usize) -> Aig {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        // xorshift64* — deterministic across platforms.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
        state
    };
    let mut aig = Aig::new(format!("rand-{seed}"));
    for k in 0..inputs {
        aig.add_input(format!("i{k}"));
    }
    for k in 0..latches {
        aig.add_latch(format!("l{k}"));
    }
    for _ in 0..ands {
        let upper = aig.len();
        let mut pick = || {
            let node = 1 + (next() as usize) % (upper - 1).max(1);
            AigLit::new(node.min(upper - 1), next() % 2 == 1)
        };
        let a = pick();
        let mut b = pick();
        if upper > 2 {
            while b.node() == a.node() {
                b = pick();
            }
        }
        aig.push_raw_and(a, b);
    }
    let mut random_lit = |aig: &Aig| {
        let node = 1 + (next() as usize) % (aig.len() - 1).max(1);
        AigLit::new(node.min(aig.len() - 1), next() % 2 == 1)
    };
    for k in 0..latches {
        let lit = random_lit(&aig);
        aig.set_latch_next(k, lit);
        aig.set_latch_init(k, [Some(false), Some(true), None][k % 3]);
    }
    let num_outputs = 1 + ands / 8;
    for k in 0..num_outputs {
        let lit = random_lit(&aig);
        aig.add_output(lit, format!("o{k}"));
    }
    aig.rebuild_strash();
    aig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_aag() -> &'static str {
        // 2-bit counter: b0' = !b0, b1' = b1 XOR b0 (as 3 ANDs), outputs b0 b1.
        "aag 5 0 2 2 3\n2 3\n4 10\n2\n4\n6 5 3\n8 4 2\n10 7 9\nl0 b0\nl1 b1\no0 y0\no1 y1\nc\ncounter\n"
    }

    #[test]
    fn parse_aag_reads_latches() {
        let aig = parse_aag(counter_aag(), "counter").expect("counter fixture parses");
        assert_eq!(aig.num_latches(), 2);
        assert_eq!(aig.num_inputs(), 0);
        assert_eq!(aig.num_ands(), 3);
        assert_eq!(aig.latches()[0].name, "b0");
        assert_eq!(aig.latches()[0].init, Some(false));
        assert!(aig.validate().is_ok());
    }

    #[test]
    fn parse_aag_accepts_out_of_order_ands() {
        // Same circuit with the AND lines reversed (forward references).
        let text = "aag 3 1 0 1 2\n2\n6\n6 5 2\n4 3 2\n";
        let aig = parse_aag(text, "x").expect("out-of-order ands resolve");
        assert_eq!(aig.num_ands(), 2);
        assert!(aig.validate().is_ok());
    }

    #[test]
    fn parse_aag_rejects_cycles() {
        let text = "aag 3 1 0 1 2\n2\n6\n4 6 2\n6 4 2\n";
        assert!(matches!(
            parse_aag(text, "x"),
            Err(AigerError::Structure(_))
        ));
    }

    #[test]
    fn latch_reset_semantics() {
        // Three latches: default 0, explicit 1, self-referential (uninit).
        let text = "aag 3 0 3 0 0\n2 2\n4 4 1\n6 6 6\n";
        let aig = parse_aag(text, "resets").expect("reset fixture parses");
        assert_eq!(aig.latches()[0].init, Some(false));
        assert_eq!(aig.latches()[1].init, Some(true));
        assert_eq!(aig.latches()[2].init, None);
    }

    #[test]
    fn roundtrip_ascii_and_binary() {
        let aig = random_aig(7, 4, 3, 20);
        assert!(aig.validate().is_ok());
        let text = write_aag(&aig);
        let reparsed = parse_aag(&text, aig.name()).expect("own aag output reparses");
        assert_eq!(write_aag(&reparsed), text);

        let bytes = write_aig(&aig).expect("valid aig serialises");
        let reparsed = parse_aig(&bytes[..], aig.name()).expect("own aig output reparses");
        assert_eq!(write_aig(&reparsed).expect("reparse serialises"), bytes);
        assert_eq!(write_aag(&reparsed), text);
    }

    #[test]
    fn parse_auto_dispatches() {
        let aig = random_aig(3, 2, 1, 6);
        let text = write_aag(&aig);
        let bytes = write_aig(&aig).expect("serialises");
        let from_text = parse_auto(text.as_bytes(), "t").expect("auto ascii");
        let from_bin = parse_auto(&bytes, "t").expect("auto binary");
        assert_eq!(write_aag(&from_text), write_aag(&from_bin));
        assert!(matches!(
            parse_auto(b"nonsense", "t"),
            Err(AigerError::Header(_))
        ));
    }

    #[test]
    fn varint_roundtrip() {
        for value in [0u64, 1, 127, 128, 129, 16383, 16384, u32::MAX as u64] {
            let mut buf = Vec::new();
            push_varint(&mut buf, value);
            let mut reader = ByteReader::new(&buf[..]);
            assert_eq!(reader.next_varint().expect("decodes"), value);
        }
    }

    #[test]
    fn latch_policy_display_and_apply() {
        assert_eq!(LatchPolicy::Cut.to_string(), "cut");
        assert_eq!(LatchPolicy::Unroll(4).to_string(), "unroll:4");
        assert_eq!(LatchPolicy::default(), LatchPolicy::Cut);
        let aig = parse_aag(counter_aag(), "counter").expect("counter fixture parses");
        let cut = LatchPolicy::Cut.apply(&aig).expect("cut applies");
        assert!(cut.is_combinational());
        assert_eq!(cut.num_outputs(), 4); // y0 y1 + 2 next-state
        let unrolled = LatchPolicy::Unroll(2).apply(&aig).expect("unroll applies");
        assert!(unrolled.is_combinational());
        assert_eq!(unrolled.num_outputs(), 4); // y0/y1 at 2 frames
        assert!(LatchPolicy::Unroll(0).apply(&aig).is_err());
    }

    #[test]
    fn hostile_header_is_rejected_cheaply() {
        let big = format!("aag {} {} 0 0 0\n", MAX_VARS + 1, MAX_VARS + 1);
        assert!(matches!(
            parse_aag(&big, "x"),
            Err(AigerError::Unsupported(_))
        ));
        let lying = "aag 1000000 1000000 0 0 0\n2\n";
        assert!(matches!(
            parse_aag(lying, "x"),
            Err(AigerError::Truncated(_))
        ));
    }

    #[test]
    fn generator_is_deterministic_and_valid() {
        let a = random_aig(11, 5, 4, 40);
        let b = random_aig(11, 5, 4, 40);
        assert_eq!(write_aag(&a), write_aag(&b));
        assert!(a.validate().is_ok());
        assert_eq!(a.num_inputs(), 5);
        assert_eq!(a.num_latches(), 4);
        assert_eq!(a.num_ands(), 40);
    }
}
