//! Property test: writing any netlist as BENCH text and parsing it back
//! yields an *isomorphic* netlist — same inputs, same outputs, and the same
//! logic structure behind every output.
//!
//! Node ids and auto-generated `n<id>` signal names may differ across the
//! round trip, and the writer inserts `BUF` aliases for outputs whose name
//! differs from their driving signal, so the comparison is structural: a
//! canonical hash per output cone with `BUF` gates collapsed.

use deepgate_netlist::{bench, GateKind, Netlist, NodeId};
use proptest::prelude::*;

/// Strategy: a random valid combinational netlist built from a list of
/// (gate kind index, fan-in picks) construction steps.
fn random_netlist(max_gates: usize) -> impl Strategy<Value = Netlist> {
    let gate_steps = prop::collection::vec((0usize..7, any::<u64>(), any::<u64>()), 1..max_gates);
    (2usize..6, gate_steps).prop_map(|(num_inputs, steps)| {
        let mut netlist = Netlist::new("roundtrip");
        let mut signals: Vec<NodeId> = (0..num_inputs)
            .map(|i| netlist.add_input(format!("x{i}")))
            .collect();
        let kinds = [
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Not,
            GateKind::Buf,
        ];
        for (kind_idx, pick_a, pick_b) in steps {
            let kind = kinds[kind_idx];
            let a = signals[(pick_a % signals.len() as u64) as usize];
            let b = signals[(pick_b % signals.len() as u64) as usize];
            let id = if matches!(kind, GateKind::Not | GateKind::Buf) {
                netlist.add_gate(kind, &[a]).expect("unary arity")
            } else {
                netlist.add_gate(kind, &[a, b]).expect("binary arity")
            };
            signals.push(id);
        }
        let last = *signals.last().expect("at least one signal");
        netlist.mark_output(last, "y");
        // A second, possibly coinciding output exercises alias buffers.
        let mid = signals[signals.len() / 2];
        netlist.mark_output(mid, "m");
        netlist
    })
}

/// Canonical structural hash of the cone driving `id`, with `BUF` gates
/// collapsed (the writer may introduce them as output aliases). Inputs hash
/// by name, gates by kind and fan-in hashes in argument order.
fn cone_hash(netlist: &Netlist, id: NodeId, memo: &mut Vec<Option<u64>>) -> u64 {
    if let Some(hash) = memo[id.index()] {
        return hash;
    }
    let node = netlist.node(id);
    let hash = match node.kind {
        GateKind::Buf => cone_hash(netlist, node.fanins[0], memo),
        kind => {
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            let mut mix = |byte: u8| {
                hash = (hash ^ byte as u64).wrapping_mul(0x0000_0100_0000_01b3);
            };
            for byte in kind.mnemonic().bytes() {
                mix(byte);
            }
            if kind == GateKind::Input {
                for byte in netlist
                    .node_name(id)
                    .expect("inputs are always named")
                    .bytes()
                {
                    mix(byte);
                }
            }
            for &fanin in &node.fanins {
                let child = cone_hash(netlist, fanin, memo);
                for byte in child.to_le_bytes() {
                    mix(byte);
                }
            }
            hash
        }
    };
    memo[id.index()] = Some(hash);
    hash
}

/// The netlist's observable structure: input names in order, plus
/// `(output name, canonical cone hash)` in output order.
fn signature(netlist: &Netlist) -> (Vec<String>, Vec<(String, u64)>) {
    let inputs = netlist
        .inputs()
        .iter()
        .map(|&id| {
            netlist
                .node_name(id)
                .expect("inputs are always named")
                .to_string()
        })
        .collect();
    let mut memo = vec![None; netlist.len()];
    let outputs = netlist
        .outputs()
        .iter()
        .map(|&(id, ref name)| (name.clone(), cone_hash(netlist, id, &mut memo)))
        .collect();
    (inputs, outputs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// BENCH write → parse round-trips to an isomorphic netlist.
    #[test]
    fn bench_write_parse_roundtrip_is_isomorphic(netlist in random_netlist(40)) {
        let text = bench::write(&netlist);
        let reparsed = bench::parse(&text, netlist.name())
            .expect("writer output must always parse");
        prop_assert!(reparsed.validate().is_ok());
        prop_assert_eq!(reparsed.num_inputs(), netlist.num_inputs());
        prop_assert_eq!(reparsed.num_outputs(), netlist.num_outputs());
        prop_assert_eq!(signature(&reparsed), signature(&netlist));

        // And the round trip is a fixpoint: writing the reparsed netlist
        // reproduces it again.
        let again = bench::parse(&bench::write(&reparsed), netlist.name())
            .expect("second round trip parses");
        prop_assert_eq!(signature(&again), signature(&reparsed));
    }
}
