//! The metrics registry: named series, consistent snapshots and
//! Prometheus-style text exposition.

use crate::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A registry of named metric series.
///
/// Subsystems register their series once at construction
/// ([`Registry::counter`] / [`Registry::gauge`] / [`Registry::histogram`]
/// get-or-create by name and hand back shared atomic handles); consumers
/// call [`Registry::snapshot`] to read every series in one pass. The
/// registry lock is only taken at registration and snapshot time — never on
/// the recording path.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind —
    /// a programming error in the instrumentation layer.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().expect("registry lock");
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())));
        match metric {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric `{name}` is already registered as a non-counter"),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock().expect("registry lock");
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())));
        match metric {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric `{name}` is already registered as a non-gauge"),
        }
    }

    /// Returns the histogram registered under `name`, creating it on first
    /// use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock().expect("registry lock");
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())));
        match metric {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric `{name}` is already registered as a non-histogram"),
        }
    }

    /// Reads every registered series once, in one pass, into an immutable
    /// [`Snapshot`].
    ///
    /// Counters are monotone, so any series in a later snapshot is ≥ its
    /// value in an earlier one — a consumer comparing two snapshots never
    /// sees a counter go backwards, and paired series (e.g. scheduler
    /// completions and cache hits) are read at one place instead of being
    /// assembled from subsystems polled at different instants.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().expect("registry lock");
        let mut snapshot = Snapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    snapshot.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snapshot.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snapshot.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snapshot
    }
}

/// A point-in-time view of every series of a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// A counter's value, 0 if the series does not exist.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's level, 0 if the series does not exist.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// A histogram's snapshot, if the series exists.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Renders the snapshot as Prometheus-style text exposition. Series
    /// names get `prefix_` prepended; histograms expose cumulative
    /// `_bucket{le="…"}` series plus `_sum` and `_count` per convention.
    pub fn to_prometheus(&self, prefix: &str) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "# TYPE {prefix}_{name} counter");
            let _ = writeln!(out, "{prefix}_{name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "# TYPE {prefix}_{name} gauge");
            let _ = writeln!(out, "{prefix}_{name} {value}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {prefix}_{name} histogram");
            let mut cumulative = 0u64;
            for bucket in &h.buckets {
                cumulative += bucket.count;
                let _ = writeln!(
                    out,
                    "{prefix}_{name}_bucket{{le=\"{}\"}} {cumulative}",
                    bucket.le
                );
            }
            let _ = writeln!(out, "{prefix}_{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{prefix}_{name}_sum {}", h.sum);
            let _ = writeln!(out, "{prefix}_{name}_count {}", h.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_get_or_create() {
        let registry = Registry::new();
        let a = registry.counter("events_total");
        let b = registry.counter("events_total");
        a.inc();
        b.add(2);
        // Same underlying atomic.
        assert_eq!(registry.snapshot().counter("events_total"), 3);
    }

    #[test]
    #[should_panic(expected = "non-counter")]
    fn kind_clash_panics() {
        let registry = Registry::new();
        registry.gauge("depth");
        registry.counter("depth");
    }

    #[test]
    fn snapshot_reads_every_series() {
        let registry = Registry::new();
        registry.counter("a_total").add(4);
        registry.gauge("b_depth").set(-2);
        registry.histogram("c_ns").record(100);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("a_total"), 4);
        assert_eq!(snap.gauge("b_depth"), -2);
        assert_eq!(snap.histogram("c_ns").expect("exists").count, 1);
        assert_eq!(snap.counter("missing"), 0);
        assert!(snap.histogram("missing").is_none());
    }

    #[test]
    fn snapshots_are_monotone_under_concurrent_load() {
        let registry = std::sync::Arc::new(Registry::new());
        let counter = registry.counter("work_total");
        let writer = {
            let counter = std::sync::Arc::clone(&counter);
            std::thread::spawn(move || {
                for _ in 0..50_000 {
                    counter.inc();
                }
            })
        };
        let mut last = 0u64;
        for _ in 0..100 {
            let now = registry.snapshot().counter("work_total");
            assert!(now >= last, "counter went backwards: {last} -> {now}");
            last = now;
        }
        writer.join().expect("writer thread");
        assert_eq!(registry.snapshot().counter("work_total"), 50_000);
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let registry = Registry::new();
        registry.counter("requests_total").add(9);
        registry.gauge("queue_depth").set(3);
        let h = registry.histogram("latency_ns");
        h.record(10);
        h.record(2_000);
        let text = registry.snapshot().to_prometheus("deepgate");
        assert!(text.contains("# TYPE deepgate_requests_total counter"));
        assert!(text.contains("deepgate_requests_total 9"));
        assert!(text.contains("# TYPE deepgate_queue_depth gauge"));
        assert!(text.contains("deepgate_queue_depth 3"));
        assert!(text.contains("# TYPE deepgate_latency_ns histogram"));
        assert!(text.contains("deepgate_latency_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("deepgate_latency_ns_sum 2010"));
        assert!(text.contains("deepgate_latency_ns_count 2"));
        // Buckets are cumulative: the last finite bucket equals the count.
        let last_finite = text
            .lines()
            .rfind(|l| l.contains("_bucket{le=\"") && !l.contains("+Inf"))
            .expect("finite buckets");
        assert!(last_finite.ends_with(" 2"), "got: {last_finite}");
    }
}
