//! Integration tests spanning the whole workspace: netlist front-end →
//! AIG transformation → simulation labelling → circuit-graph encoding →
//! DeepGate training and inference.

use deepgate::aig::{opt, Aig};
use deepgate::core::{DeepGate, DeepGateConfig, Trainer, TrainerConfig};
use deepgate::dataset::{
    generators, labelled_circuit_from_aig, Dataset, DatasetConfig, LargeDesign, SuiteKind,
};
use deepgate::gnn::{evaluate_prediction_error, CircuitGraph, FeatureEncoding};
use deepgate::netlist::bench;
use deepgate::sim::SignalProbability;

#[test]
fn bench_roundtrip_preserves_signal_probabilities() {
    // Write a generated circuit to BENCH text, parse it back and check that
    // the simulated probabilities agree — the parser, writer and simulator
    // must be mutually consistent.
    let original = generators::alu(4);
    let text = bench::write(&original);
    let parsed = bench::parse(&text, "alu4").expect("round-trip parse");
    let p_original = SignalProbability::simulate_netlist(&original, 8192, 5).unwrap();
    let p_parsed = SignalProbability::simulate_netlist(&parsed, 8192, 5).unwrap();
    // Compare per-output probabilities by name.
    for (id, name) in original.outputs() {
        let other = parsed
            .outputs()
            .iter()
            .find(|(_, n)| n == name)
            .map(|(i, _)| *i)
            .expect("output preserved");
        let a = p_original.of(id.index());
        let b = p_parsed.of(other.index());
        assert!((a - b).abs() < 0.03, "{name}: {a} vs {b}");
    }
}

#[test]
fn aig_transformation_preserves_output_probabilities() {
    // The logic-synthesis substitute must preserve functionality: output
    // signal probabilities before and after AIG mapping + optimisation agree.
    for netlist in [
        generators::comparator(5),
        generators::counter_next_state(6),
        generators::masked_arbiter(6),
    ] {
        let aig = Aig::from_netlist(&netlist).unwrap();
        let optimized = opt::optimize(&aig, 3);
        let p_netlist = SignalProbability::simulate_netlist(&netlist, 16_384, 9).unwrap();
        let p_aig = SignalProbability::simulate(&optimized, 16_384, 9).unwrap();
        for (k, (lit, name)) in optimized.outputs().iter().enumerate() {
            let (orig_id, _) = netlist.outputs()[k];
            let expected = p_netlist.of(orig_id.index());
            let raw = p_aig.of(lit.node());
            let got = if lit.is_complemented() { 1.0 - raw } else { raw };
            assert!(
                (expected - got).abs() < 0.03,
                "{}: output {name} {expected} vs {got}",
                netlist.name()
            );
        }
    }
}

#[test]
fn deepgate_overfits_a_single_circuit() {
    // Sanity check of the full learning stack: DeepGate must be able to fit
    // the probabilities of one small circuit almost exactly.
    let aig = Aig::from_netlist(&generators::alu(4)).unwrap();
    let circuit = labelled_circuit_from_aig(&aig, 8_192, 3).unwrap();
    let mut model = DeepGate::new(DeepGateConfig {
        hidden_dim: 24,
        num_iterations: 3,
        regressor_hidden: 16,
        ..DeepGateConfig::default()
    });
    let before = evaluate_prediction_error(&model.predict(&circuit), &circuit);
    let mut trainer = Trainer::new(TrainerConfig {
        epochs: 40,
        learning_rate: 5e-3,
        eval_every: 0,
        ..TrainerConfig::default()
    });
    let inner = model.model().clone();
    trainer.train(&inner, model.store_mut(), &[circuit.clone()], &[]);
    let after = evaluate_prediction_error(&model.predict(&circuit), &circuit);
    assert!(
        after < before * 0.5 && after < 0.1,
        "did not overfit: {before:.4} -> {after:.4}"
    );
}

#[test]
fn dataset_pipeline_feeds_training_end_to_end() {
    let config = DatasetConfig {
        suites: vec![SuiteKind::Epfl, SuiteKind::Itc99],
        designs_per_suite: 4,
        num_patterns: 1_024,
        size_scale: 0.1,
        ..DatasetConfig::default()
    };
    let dataset = Dataset::generate(&config).unwrap();
    assert_eq!(dataset.len(), 8);
    let mut model = DeepGate::new(DeepGateConfig {
        hidden_dim: 16,
        num_iterations: 2,
        regressor_hidden: 8,
        ..DeepGateConfig::default()
    });
    let mut trainer = Trainer::new(TrainerConfig {
        epochs: 3,
        learning_rate: 3e-3,
        ..TrainerConfig::default()
    });
    let inner = model.model().clone();
    let history = trainer.train(&inner, model.store_mut(), &dataset.train, &dataset.test);
    assert_eq!(history.epochs.len(), 3);
    assert!(history.best_valid_error().is_some());
}

#[test]
fn checkpointed_model_generalises_to_unseen_design() {
    // Train on tiny circuits, checkpoint, reload and evaluate on a reduced
    // large design — exercises Table III's inference path end to end.
    let train: Vec<CircuitGraph> = [
        generators::ripple_carry_adder(4),
        generators::parity_tree(8),
        generators::priority_arbiter(6),
    ]
    .iter()
    .enumerate()
    .map(|(i, n)| {
        let aig = Aig::from_netlist(n).unwrap();
        labelled_circuit_from_aig(&aig, 2_048, i as u64).unwrap()
    })
    .collect();
    let mut model = DeepGate::new(DeepGateConfig {
        hidden_dim: 16,
        num_iterations: 2,
        regressor_hidden: 8,
        ..DeepGateConfig::default()
    });
    let mut trainer = Trainer::new(TrainerConfig {
        epochs: 10,
        learning_rate: 3e-3,
        ..TrainerConfig::default()
    });
    let inner = model.model().clone();
    trainer.train(&inner, model.store_mut(), &train, &[]);

    let checkpoint = model.to_checkpoint().unwrap();
    let restored = DeepGate::from_checkpoint(&checkpoint).unwrap();

    let large = LargeDesign::Arbiter.generate(0.05);
    let aig = Aig::from_netlist(&large).unwrap();
    let circuit = labelled_circuit_from_aig(&aig, 2_048, 31).unwrap();
    let original_error = evaluate_prediction_error(&model.predict(&circuit), &circuit);
    let restored_error = evaluate_prediction_error(&restored.predict(&circuit), &circuit);
    assert!((original_error - restored_error).abs() < 1e-6);
    // An error of 0.5 would mean the model is no better than predicting the
    // complement; even a briefly trained model should do clearly better.
    assert!(restored_error < 0.45, "error {restored_error}");
}

#[test]
fn untransformed_and_transformed_graphs_share_the_pipeline() {
    // The Table IV ablation uses both encodings; both must flow through the
    // same simulation and graph-construction code.
    let netlist = generators::counter_next_state(5);
    let p = SignalProbability::simulate_netlist(&netlist, 4_096, 3).unwrap();
    let labels: Vec<f32> = p.values().iter().map(|&v| v as f32).collect();
    let raw = CircuitGraph::from_netlist(&netlist, FeatureEncoding::AllGates, Some(labels));
    assert_eq!(raw.features.cols(), 12);

    let aig = Aig::from_netlist(&netlist).unwrap();
    let transformed = labelled_circuit_from_aig(&aig, 4_096, 3).unwrap();
    assert_eq!(transformed.features.cols(), 3);
    // The AIG expansion only has PI/AND/NOT nodes, so every gate's label is
    // still a probability in [0, 1].
    for graph in [&raw, &transformed] {
        assert!(graph
            .labels
            .as_ref()
            .unwrap()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }
}
