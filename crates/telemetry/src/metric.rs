//! The lock-free metric primitives: counters, gauges and log-bucket
//! histograms.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically non-decreasing event counter.
///
/// All operations are relaxed atomics: recording never blocks, and a value
/// read in a later snapshot is always ≥ the value read in an earlier one.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the counter to `v` if `v` is larger — a monotone
    /// maximum-tracker (e.g. the largest batch observed).
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level that can move both ways (queue depth, open
/// connections, cache entries).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Adds `n` (negative to subtract).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the level outright.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution: 2^3 = 8 log-linear sub-buckets per power of two,
/// bounding the relative quantisation error of percentile extraction at
/// ~1/8 ≈ 12%.
const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;

/// Buckets needed to cover the full `u64` range at [`SUB_BITS`] resolution:
/// the largest index is `(63 - SUB_BITS + 1) * SUB + (SUB - 1)`.
const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) << SUB_BITS) + SUB as usize;

/// Maps a value to its bucket index. Values below `SUB` get exact unit
/// buckets; above, the top `SUB_BITS` bits after the leading one select a
/// sub-bucket within the value's power-of-two octave.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros();
        let sub = (v >> (exp - SUB_BITS)) & (SUB - 1);
        (((exp - SUB_BITS + 1) as u64) << SUB_BITS) as usize + sub as usize
    }
}

/// The smallest value mapping to bucket `i` (the inverse of
/// [`bucket_index`]).
fn bucket_floor(i: usize) -> u64 {
    if i < SUB as usize {
        i as u64
    } else {
        let group = (i >> SUB_BITS) as u32;
        let sub = (i as u64) & (SUB - 1);
        (SUB + sub) << (group - 1)
    }
}

/// The largest value mapping to bucket `i` — the bucket's inclusive upper
/// bound, reported as `le` in snapshots.
fn bucket_bound(i: usize) -> u64 {
    if i + 1 >= NUM_BUCKETS {
        u64::MAX
    } else {
        bucket_floor(i + 1) - 1
    }
}

/// A fixed log-bucket histogram over `u64` values.
///
/// Values are unit-agnostic: the serving stack records latencies in
/// nanoseconds, batch sizes in requests and circuit sizes in nodes through
/// the same type. Recording is three relaxed atomic adds plus one atomic
/// max — no locks, no allocation — so histograms can sit on per-level
/// inference hot paths.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating above `u64::MAX` ns,
    /// i.e. ~584 years).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total number of recorded values (sum of the bucket counts).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Reads the bucket counts, sum and exact maximum into an immutable
    /// snapshot. The snapshot's `count` is derived from its own bucket
    /// counts, so a snapshot is always internally consistent: percentiles,
    /// totals and bucket counts describe the same set of observations.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                count += n;
                buckets.push(Bucket {
                    le: bucket_bound(i),
                    count: n,
                });
            }
        }
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// One non-empty histogram bucket: `count` values ≤ `le` (and greater than
/// the previous bucket's bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bucket {
    /// Inclusive upper bound of the bucket.
    pub le: u64,
    /// Number of values that landed in this bucket.
    pub count: u64,
}

/// An immutable point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Exact largest recorded value.
    pub max: u64,
    /// Non-empty buckets in ascending `le` order.
    pub buckets: Vec<Bucket>,
}

impl HistogramSnapshot {
    /// Extracts the `p`-th percentile (`0.0 ..= 1.0`): the upper bound of
    /// the bucket holding the rank-`⌈p·count⌉` value, clamped to the exact
    /// maximum. By construction `percentile(a) <= percentile(b)` for
    /// `a <= b`, and `percentile(1.0) == max`. Returns 0 for an empty
    /// histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for bucket in &self.buckets {
            seen += bucket.count;
            if seen >= rank {
                return bucket.le.min(self.max);
            }
        }
        self.max
    }

    /// Arithmetic mean of the recorded values (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_are_consistent() {
        // Every bucket's floor and bound map back to that bucket, and the
        // value one past the bound starts the next bucket.
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_floor(i)), i, "floor of bucket {i}");
            assert_eq!(bucket_index(bucket_bound(i)), i, "bound of bucket {i}");
            if i + 1 < NUM_BUCKETS {
                assert_eq!(bucket_index(bucket_bound(i) + 1), i + 1);
                assert!(bucket_bound(i) < bucket_bound(i + 1));
            }
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_width_bounds_relative_error() {
        for v in [100u64, 1_000, 65_537, 1 << 40, 987_654_321] {
            let i = bucket_index(v);
            let width = bucket_bound(i) - bucket_floor(i) + 1;
            assert!(
                (width as f64) <= (v as f64) / 8.0 + 1.0,
                "bucket width {width} too wide for {v}"
            );
        }
    }

    #[test]
    fn histogram_records_count_sum_max() {
        let h = Histogram::new();
        for v in [3u64, 5, 5, 1_000, 40_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 41_013);
        assert_eq!(snap.max, 40_000);
        assert_eq!(h.count(), 5);
        assert_eq!(snap.buckets.iter().map(|b| b.count).sum::<u64>(), 5);
    }

    #[test]
    fn percentiles_are_monotone_and_end_at_exact_max() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 17);
        }
        let snap = h.snapshot();
        let p50 = snap.percentile(0.50);
        let p90 = snap.percentile(0.90);
        let p99 = snap.percentile(0.99);
        let p100 = snap.percentile(1.0);
        assert!(p50 <= p90 && p90 <= p99 && p99 <= p100);
        assert_eq!(p100, 17_000, "p100 is the exact maximum");
        // Quantisation error stays within one sub-bucket (~12.5%).
        assert!((p50 as f64 - 8_500.0).abs() / 8_500.0 < 0.13, "p50 = {p50}");
        assert!(
            (p99 as f64 - 16_830.0).abs() / 16_830.0 < 0.13,
            "p99 = {p99}"
        );
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.percentile(0.5), 0);
        assert_eq!(snap.mean(), 0.0);
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + (i % 997));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("recorder thread");
        }
        assert_eq!(h.snapshot().count, 80_000);
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        c.record_max(3); // below current? 3 < 5 — no-op
        assert_eq!(c.get(), 5);
        c.record_max(9);
        assert_eq!(c.get(), 9);

        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.add(-5);
        assert_eq!(g.get(), -4);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn duration_recording_uses_nanoseconds() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(3));
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, 3_000);
    }
}
