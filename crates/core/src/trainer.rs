//! Training loop shared by DeepGate and the baseline models.
//!
//! The recipe follows the paper: the Adam optimiser minimising an L1 loss
//! between predicted and simulated signal probabilities, iterating over the
//! training circuits one circuit graph at a time (topological batching makes
//! a whole circuit one "batch").

use deepgate_gnn::{
    evaluate_prediction_error, masked_l1_loss, CircuitGraph, GnnError, ProbabilityModel,
};
use deepgate_nn::{Adam, Graph, ParamStore};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the training loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Number of passes over the training set (the paper trains for 60).
    pub epochs: usize,
    /// Adam learning rate (the paper uses 1e-4; the reduced-scale quick
    /// configurations in this repository default to 1e-3 so they converge in
    /// minutes on a CPU).
    pub learning_rate: f32,
    /// Global gradient-norm clip applied before every optimiser step.
    pub grad_clip: f32,
    /// Seed controlling the epoch shuffling of training circuits.
    pub shuffle_seed: u64,
    /// Evaluate on the validation set every `eval_every` epochs (0 disables
    /// intermediate evaluation; the final epoch is always evaluated).
    pub eval_every: usize,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            epochs: 60,
            learning_rate: 1e-3,
            grad_clip: 5.0,
            shuffle_seed: 0,
            eval_every: 10,
        }
    }
}

/// Statistics of one training epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub train_loss: f64,
    /// Average prediction error on the validation set, when evaluated this
    /// epoch.
    pub valid_error: Option<f64>,
}

/// The loss / error trajectory of a training run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainingHistory {
    /// Per-epoch statistics in order.
    pub epochs: Vec<EpochStats>,
}

impl TrainingHistory {
    /// The best (lowest) validation error observed, if any epoch was
    /// evaluated.
    pub fn best_valid_error(&self) -> Option<f64> {
        self.epochs
            .iter()
            .filter_map(|e| e.valid_error)
            .fold(None, |best, e| Some(best.map_or(e, |b: f64| b.min(e))))
    }

    /// The final training loss.
    pub fn final_train_loss(&self) -> Option<f64> {
        self.epochs.last().map(|e| e.train_loss)
    }
}

/// Trains any [`ProbabilityModel`] with the Adam + L1 recipe of the paper.
#[derive(Debug)]
pub struct Trainer {
    config: TrainerConfig,
    optimizer: Adam,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainerConfig) -> Self {
        Trainer {
            optimizer: Adam::with_defaults(config.learning_rate),
            config,
        }
    }

    /// The trainer configuration.
    pub fn config(&self) -> TrainerConfig {
        self.config
    }

    /// Runs the training loop.
    ///
    /// `train` and `valid` must be labelled circuit graphs. Returns the
    /// per-epoch history; the model parameters in `store` are updated in
    /// place.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::UnlabelledCircuit`] if any circuit has no labels
    /// attached (checked up front, before any optimiser step runs) and
    /// [`GnnError::EncodingMismatch`] if a circuit's feature encoding does
    /// not match the model.
    pub fn train<M: ProbabilityModel + ?Sized>(
        &mut self,
        model: &M,
        store: &mut ParamStore,
        train: &[CircuitGraph],
        valid: &[CircuitGraph],
    ) -> Result<TrainingHistory, GnnError> {
        for circuit in train.iter().chain(valid) {
            if circuit.labels.is_none() {
                return Err(GnnError::UnlabelledCircuit {
                    name: circuit.name.clone(),
                });
            }
        }
        let mut history = TrainingHistory::default();
        let mut rng = SmallRng::seed_from_u64(self.config.shuffle_seed);
        let mut order: Vec<usize> = (0..train.len()).collect();
        for epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            for &idx in &order {
                let circuit = &train[idx];
                let mut g = Graph::new();
                let pred = model.try_forward(&mut g, store, circuit)?;
                let loss = masked_l1_loss(&mut g, pred, circuit)?;
                epoch_loss += g.value(loss).get(0, 0) as f64;
                g.backward(loss, store);
                store.clip_grad_norm(self.config.grad_clip);
                self.optimizer.step(store);
                store.zero_grad();
            }
            let train_loss = if train.is_empty() {
                0.0
            } else {
                epoch_loss / train.len() as f64
            };
            let is_last = epoch + 1 == self.config.epochs;
            let evaluate_now = is_last
                || (self.config.eval_every > 0 && (epoch + 1) % self.config.eval_every == 0);
            let valid_error = if evaluate_now && !valid.is_empty() {
                Some(average_prediction_error(model, store, valid)?)
            } else {
                None
            };
            history.epochs.push(EpochStats {
                epoch,
                train_loss,
                valid_error,
            });
        }
        Ok(history)
    }
}

/// Average prediction error (Eq. 8) of a model over a set of labelled
/// circuits, averaged per circuit.
///
/// # Errors
///
/// Returns a [`GnnError`] if any circuit has no labels attached or is
/// incompatible with the model.
pub fn average_prediction_error<M: ProbabilityModel + ?Sized>(
    model: &M,
    store: &ParamStore,
    circuits: &[CircuitGraph],
) -> Result<f64, GnnError> {
    if circuits.is_empty() {
        return Ok(0.0);
    }
    let mut total = 0.0f64;
    for circuit in circuits {
        total += evaluate_prediction_error(&model.try_predict(store, circuit)?, circuit)?;
    }
    Ok(total / circuits.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepgate_gnn::{AggregatorKind, DagRecConfig, DagRecGnn, FeatureEncoding};
    use deepgate_netlist::{GateKind, Netlist, NetlistBuilder};
    use deepgate_sim::SignalProbability;

    /// Builds a handful of small labelled circuits.
    fn labelled_circuits() -> Vec<CircuitGraph> {
        let mut circuits = Vec::new();
        // A few structurally different small circuits.
        for variant in 0..4u32 {
            let mut b = NetlistBuilder::new(format!("c{variant}"));
            let xs = b.input_word("x", 4);
            let g = match variant {
                0 => b.reduce(GateKind::And, &xs),
                1 => b.reduce(GateKind::Or, &xs),
                2 => b.reduce(GateKind::Xor, &xs),
                _ => {
                    let a = b.and2(xs[0], xs[1]);
                    let o = b.or2(xs[2], xs[3]);
                    b.xor2(a, o)
                }
            };
            b.output("y", g);
            let netlist = b.finish();
            let aig = deepgate_aig::Aig::from_netlist(&netlist).unwrap();
            let expanded = aig.to_netlist();
            let probs = SignalProbability::simulate_netlist(&expanded, 4096, 7).unwrap();
            let labels: Vec<f32> = probs.values().iter().map(|&v| v as f32).collect();
            circuits.push(CircuitGraph::from_netlist(
                &expanded,
                FeatureEncoding::AigGates,
                Some(labels),
            ));
        }
        circuits
    }

    #[test]
    fn training_reduces_loss_and_error() {
        let circuits = labelled_circuits();
        let (train, valid) = circuits.split_at(3);
        let mut store = ParamStore::new();
        let model = DagRecGnn::new(
            &mut store,
            DagRecConfig {
                hidden_dim: 16,
                num_iterations: 3,
                aggregator: AggregatorKind::Attention,
                fix_gate_input: true,
                use_skip_connections: true,
                regressor_hidden: 8,
                ..DagRecConfig::default()
            },
        );
        let error_before = average_prediction_error(&model, &store, valid).unwrap();
        let mut trainer = Trainer::new(TrainerConfig {
            epochs: 30,
            learning_rate: 5e-3,
            eval_every: 0,
            ..TrainerConfig::default()
        });
        let history = trainer.train(&model, &mut store, train, valid).unwrap();
        assert_eq!(history.epochs.len(), 30);
        let first_loss = history.epochs.first().unwrap().train_loss;
        let last_loss = history.final_train_loss().unwrap();
        assert!(
            last_loss < first_loss,
            "loss did not decrease: {first_loss} -> {last_loss}"
        );
        // The last epoch is always evaluated.
        let error_after = history.best_valid_error().unwrap();
        assert!(
            error_after < error_before,
            "validation error did not improve: {error_before} -> {error_after}"
        );
    }

    #[test]
    fn history_helpers() {
        let history = TrainingHistory {
            epochs: vec![
                EpochStats {
                    epoch: 0,
                    train_loss: 0.4,
                    valid_error: None,
                },
                EpochStats {
                    epoch: 1,
                    train_loss: 0.3,
                    valid_error: Some(0.2),
                },
                EpochStats {
                    epoch: 2,
                    train_loss: 0.25,
                    valid_error: Some(0.22),
                },
            ],
        };
        assert_eq!(history.best_valid_error(), Some(0.2));
        assert_eq!(history.final_train_loss(), Some(0.25));
        assert_eq!(TrainingHistory::default().best_valid_error(), None);
    }

    #[test]
    fn empty_training_set_is_handled() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate(GateKind::And, &[a, b]).unwrap();
        n.mark_output(g, "y");
        let mut circuit = CircuitGraph::from_netlist(&n, FeatureEncoding::AigGates, None);
        circuit.set_labels(vec![0.5, 0.5, 0.25]);
        let mut store = ParamStore::new();
        let model = DagRecGnn::new(
            &mut store,
            DagRecConfig {
                hidden_dim: 8,
                num_iterations: 1,
                regressor_hidden: 4,
                ..DagRecConfig::default()
            },
        );
        let mut trainer = Trainer::new(TrainerConfig {
            epochs: 2,
            ..TrainerConfig::default()
        });
        let history = trainer.train(&model, &mut store, &[], &[circuit]).unwrap();
        assert_eq!(history.epochs.len(), 2);
        assert_eq!(history.epochs[0].train_loss, 0.0);
        assert_eq!(average_prediction_error(&model, &store, &[]).unwrap(), 0.0);
    }

    #[test]
    fn unlabelled_circuit_fails_before_any_step() {
        let mut n = Netlist::new("bare");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate(GateKind::And, &[a, b]).unwrap();
        n.mark_output(g, "y");
        let circuit = CircuitGraph::from_netlist(&n, FeatureEncoding::AigGates, None);
        let mut store = ParamStore::new();
        let model = DagRecGnn::new(
            &mut store,
            DagRecConfig {
                hidden_dim: 8,
                num_iterations: 1,
                regressor_hidden: 4,
                ..DagRecConfig::default()
            },
        );
        let mut trainer = Trainer::new(TrainerConfig::default());
        let err = trainer
            .train(&model, &mut store, std::slice::from_ref(&circuit), &[])
            .unwrap_err();
        assert!(matches!(
            err,
            deepgate_gnn::GnnError::UnlabelledCircuit { .. }
        ));
        let err = average_prediction_error(&model, &store, &[circuit]).unwrap_err();
        assert!(matches!(
            err,
            deepgate_gnn::GnnError::UnlabelledCircuit { .. }
        ));
    }
}
