//! The GCN baseline: undirected message passing without topological order.
//!
//! The paper's weakest baseline treats the circuit as an undirected graph and
//! stacks `num_layers` rounds of neighbour aggregation; it has no notion of
//! the logic computation order, which is exactly why it trails the DAG-aware
//! models in Table II.

use crate::{Aggregator, AggregatorKind, CircuitGraph, ProbabilityModel};
use deepgate_nn::{Activation, Graph, Linear, Mlp, ParamStore, Var};
use serde::{Deserialize, Serialize};

/// Configuration of the [`Gcn`] baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GcnConfig {
    /// Node feature dimensionality (matches the circuit graph encoding).
    pub feature_dim: usize,
    /// Hidden state dimensionality (the paper uses 64).
    pub hidden_dim: usize,
    /// Number of message-passing layers.
    pub num_layers: usize,
    /// Aggregation function.
    pub aggregator: AggregatorKind,
    /// Seed for weight initialisation.
    pub seed: u64,
}

impl Default for GcnConfig {
    fn default() -> Self {
        GcnConfig {
            feature_dim: 3,
            hidden_dim: 64,
            num_layers: 3,
            aggregator: AggregatorKind::ConvSum,
            seed: 0,
        }
    }
}

/// The undirected GCN baseline model.
#[derive(Debug, Clone)]
pub struct Gcn {
    config: GcnConfig,
    embed: Linear,
    aggregators: Vec<Aggregator>,
    combiners: Vec<Linear>,
    regressor: Mlp,
}

impl Gcn {
    /// Registers a GCN's parameters in `store`.
    pub fn new(store: &mut ParamStore, config: GcnConfig) -> Self {
        let embed = Linear::new(
            store,
            "gcn.embed",
            config.feature_dim,
            config.hidden_dim,
            config.seed,
        );
        let mut aggregators = Vec::new();
        let mut combiners = Vec::new();
        for layer in 0..config.num_layers {
            aggregators.push(Aggregator::new(
                store,
                &format!("gcn.layer{layer}.agg"),
                config.aggregator,
                config.hidden_dim,
                0,
                config.seed + 10 + layer as u64,
            ));
            combiners.push(Linear::new(
                store,
                &format!("gcn.layer{layer}.combine"),
                2 * config.hidden_dim,
                config.hidden_dim,
                config.seed + 100 + layer as u64,
            ));
        }
        let regressor = Mlp::new(
            store,
            "gcn.regressor",
            &[config.hidden_dim, config.hidden_dim, 1],
            Activation::Relu,
            true,
            config.seed + 1000,
        );
        Gcn {
            config,
            embed,
            aggregators,
            combiners,
            regressor,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> GcnConfig {
        self.config
    }

    fn undirected_edges(circuit: &CircuitGraph) -> (Vec<usize>, Vec<usize>) {
        let mut src = Vec::with_capacity(circuit.edges.len() * 2);
        let mut dst = Vec::with_capacity(circuit.edges.len() * 2);
        for &(u, v) in &circuit.edges {
            src.push(u);
            dst.push(v);
            src.push(v);
            dst.push(u);
        }
        (src, dst)
    }
}

impl ProbabilityModel for Gcn {
    fn forward(&self, g: &mut Graph, store: &ParamStore, circuit: &CircuitGraph) -> Var {
        assert_eq!(
            circuit.encoding.dimension(),
            self.config.feature_dim,
            "circuit feature encoding does not match the model configuration"
        );
        let n = circuit.num_nodes;
        let (edge_src, edge_dst) = Self::undirected_edges(circuit);
        let features = g.input(circuit.features.clone());
        let mut h = self.embed.forward(g, store, features);
        for layer in 0..self.config.num_layers {
            let src_states = g.gather_rows(h, &edge_src);
            let dst_states = g.gather_rows(h, &edge_dst);
            let msg = self.aggregators[layer]
                .aggregate(g, store, src_states, dst_states, &edge_dst, n, None);
            let concat = g.concat_cols(h, msg);
            let combined = self.combiners[layer].forward(g, store, concat);
            h = g.relu(combined);
        }
        self.regressor.forward(g, store, h)
    }

    fn name(&self) -> String {
        format!("GCN ({})", self.config.aggregator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeatureEncoding;
    use deepgate_netlist::{GateKind, Netlist};

    fn graph() -> CircuitGraph {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g1 = n.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = n.add_gate(GateKind::Not, &[g1]).unwrap();
        let g3 = n.add_gate(GateKind::And, &[g2, c]).unwrap();
        n.mark_output(g3, "y");
        CircuitGraph::from_netlist(&n, FeatureEncoding::AigGates, None)
    }

    #[test]
    fn forward_produces_probabilities_for_every_node() {
        let circuit = graph();
        for kind in AggregatorKind::ALL {
            let mut store = ParamStore::new();
            let model = Gcn::new(
                &mut store,
                GcnConfig {
                    aggregator: kind,
                    hidden_dim: 16,
                    num_layers: 2,
                    ..GcnConfig::default()
                },
            );
            let pred = model.predict(&store, &circuit);
            assert_eq!(pred.len(), circuit.num_nodes);
            assert!(pred.iter().all(|&p| (0.0..=1.0).contains(&p)), "{kind}");
            assert!(model.name().contains("GCN"));
        }
    }

    #[test]
    #[should_panic(expected = "does not match the model configuration")]
    fn mismatched_feature_encoding_is_rejected() {
        let circuit = graph();
        let mut store = ParamStore::new();
        let model = Gcn::new(
            &mut store,
            GcnConfig {
                feature_dim: 12,
                ..GcnConfig::default()
            },
        );
        let _ = model.predict(&store, &circuit);
    }
}
