//! Living documentation of the `deepgate-serve` wire protocol: starts the
//! server on an ephemeral port, talks to it over a plain TCP socket exactly
//! as any non-Rust client would, and prints every request/response pair.
//!
//! ```bash
//! cargo run --release --example serve_demo
//! ```
//!
//! The protocol is newline-delimited JSON — one object per line:
//!
//! - `{"id": …, "bench": "<BENCH text>"}` → `{"id": …, "probs": […]}`
//!   (`id` is echoed verbatim and may be any JSON value)
//! - `{"id": …, "aiger": "<AIGER-ASCII>"}` /
//!   `{"id": …, "aiger_b64": "<base64 .aag/.aig>", "latch": "cut" | "unroll:<k>"}`
//!   → `{"id": …, "probs": […]}` — AIGER ingestion; binary files travel
//!   base64-encoded, and sequential circuits pick a latch policy (default
//!   `cut`)
//! - `{"id": …, "op": "stats"}` → `{"id": …, "stats": {…}}`
//! - `{"id": …, "op": "metrics"}` → `{"id": …, "metrics": {"counters": {…},
//!   "gauges": {…}, "histograms": {…}}}` — one consistent telemetry
//!   snapshot: per-verb counters, per-stage latency histograms with
//!   p50/p90/p99, batching and cache series
//! - `{"id": …, "op": "metrics_text"}` → the same snapshot in Prometheus
//!   text exposition format
//! - `{"id": …, "op": "shutdown"}` → `{"id": …, "ok": true}`, then the
//!   server drains gracefully
//! - anything malformed → `{"id": …, "error": "…"}`

use deepgate::aig::aiger::{random_aig, write_aig};
use deepgate::prelude::*;
use deepgate_serve::{ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A handful of circuits a client might ask about, in the BENCH interchange
/// format requests travel in.
const CIRCUITS: [(&str, &str); 3] = [
    (
        "full_adder",
        "INPUT(a)\nINPUT(b)\nINPUT(cin)\nOUTPUT(sum)\nOUTPUT(cout)\n\
         x = XOR(a, b)\nsum = XOR(x, cin)\ng1 = AND(a, b)\ng2 = AND(x, cin)\ncout = OR(g1, g2)\n",
    ),
    (
        "mux2",
        "INPUT(s)\nINPUT(d0)\nINPUT(d1)\nOUTPUT(y)\n\
         ns = NOT(s)\na = AND(d0, ns)\nb = AND(d1, s)\ny = OR(a, b)\n",
    ),
    (
        "majority3",
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(m)\n\
         ab = AND(a, b)\nbc = AND(b, c)\nac = AND(a, c)\nm = OR(ab, bc, ac)\n",
    ),
];

fn roundtrip(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    request: &str,
) -> std::io::Result<String> {
    println!("→ {request}");
    writer.write_all(request.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut response = String::new();
    reader.read_line(&mut response)?;
    let response = response.trim_end().to_string();
    println!("← {response}\n");
    Ok(response)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small untrained model keeps the demo instant; swap in
    // `Engine::from_checkpoint_file("model.json")?` to serve real weights.
    let engine = Engine::builder()
        .model(DeepGateConfig {
            hidden_dim: 16,
            num_iterations: 3,
            regressor_hidden: 8,
            ..DeepGateConfig::default()
        })
        .build()?;

    // Every batching knob in one place; port 0 = ephemeral.
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        max_batch: 8,
        batch_window: Duration::from_millis(2),
        queue_depth: 256,
        workers: 2,
        cache_capacity: 32,
        // Zero threshold: every predict request logs one slow-request line
        // to stderr, naming its dominant stage — watch for them between the
        // request/response pairs below.
        slow_request_threshold: Some(Duration::ZERO),
        // Resilience defaults: no server-side deadline cap, stock connection
        // hygiene limits, no fault injection.
        ..ServeConfig::default()
    };
    let server = Server::start(engine, config)?;
    println!("deepgate-serve listening on {}\n", server.local_addr());

    let stream = TcpStream::connect(server.local_addr())?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;

    // Predictions: one request per circuit, plus a repeat of the first to
    // show the structural cache (watch `cache.hits` in the stats below).
    for (index, (name, bench)) in CIRCUITS
        .iter()
        .enumerate()
        .chain(std::iter::once((CIRCUITS.len(), &CIRCUITS[0])))
    {
        let mut request = std::collections::BTreeMap::new();
        request.insert("id".to_string(), serde_json::Value::UInt(index as u64));
        request.insert("name".to_string(), serde_json::Value::Str(name.to_string()));
        request.insert(
            "bench".to_string(),
            serde_json::Value::Str(bench.to_string()),
        );
        let line = serde_json::to_string(&serde_json::Value::Object(request))?;
        let response = roundtrip(&mut reader, &mut writer, &line)?;
        assert!(
            response.contains("probs"),
            "expected predictions, got: {response}"
        );
    }

    // AIGER ingestion: a latch-bearing circuit as binary `.aig` bytes,
    // base64-encoded onto the wire, served under both latch policies. The
    // policy is part of the cache key — these are two distinct circuits.
    let sequential = random_aig(5, 3, 2, 12);
    let aig_bytes = write_aig(&sequential).expect("canonical AIG serialises");
    for (id, latch) in [("a-cut", "cut"), ("a-unroll", "unroll:2")] {
        let request = format!(
            r#"{{"id": "{id}", "name": "toggle", "aiger_b64": "{}", "latch": "{latch}"}}"#,
            deepgate_serve::b64::encode(&aig_bytes)
        );
        let response = roundtrip(&mut reader, &mut writer, &request)?;
        assert!(
            response.contains("probs"),
            "expected predictions, got: {response}"
        );
    }

    // The stats verb: batching, cache and connection counters.
    roundtrip(&mut reader, &mut writer, r#"{"id": "s", "op": "stats"}"#)?;

    // The metrics verb: the full telemetry snapshot. Print the per-stage
    // latency breakdown a monitoring agent would alert on.
    {
        println!("→ {{\"id\": \"m\", \"op\": \"metrics\"}}");
        writer.write_all(b"{\"id\": \"m\", \"op\": \"metrics\"}\n")?;
        writer.flush()?;
        let mut response = String::new();
        reader.read_line(&mut response)?;
        let parsed: serde_json::Value = serde_json::from_str(&response)?;
        let metrics = parsed
            .as_object()
            .and_then(|o| o.get("metrics"))
            .and_then(serde_json::Value::as_object)
            .expect("metrics response carries a `metrics` object");
        let histograms = metrics["histograms"]
            .as_object()
            .expect("histograms object");
        println!("← per-stage latency breakdown (from one snapshot):");
        for (name, histogram) in histograms {
            let Some(fields) = histogram.as_object() else {
                continue;
            };
            let uint = |key: &str| match fields.get(key) {
                Some(serde_json::Value::UInt(v)) => *v,
                _ => 0,
            };
            if name.starts_with("stage_") || name == "request_latency_ns" {
                println!(
                    "    {name:<22} count {:>3}  p50 {:>9} ns  p99 {:>9} ns  max {:>9} ns",
                    uint("count"),
                    uint("p50"),
                    uint("p99"),
                    uint("max"),
                );
            }
        }
        let counters = metrics["counters"].as_object().expect("counters object");
        let counter = |name: &str| match counters.get(name) {
            Some(serde_json::Value::UInt(v)) => *v,
            _ => 0,
        };
        let predicts = counter("requests_predict_total");
        println!(
            "    predicts {predicts}, batches {}, cache {} hits / {} misses, slow-logged {}\n",
            counter("scheduler_batches_total"),
            counter("cache_text_hits_total") + counter("cache_fingerprint_hits_total"),
            counter("cache_misses_total"),
            counter("slow_requests_total"),
        );
        // The demo sent 6 predicts; the telemetry must account for all of
        // them, in every series that records once per predict.
        assert_eq!(predicts, 6, "six predict requests were sent");
        assert_eq!(counter("slow_requests_total"), predicts);
        let latency = histograms["request_latency_ns"]
            .as_object()
            .expect("request_latency_ns object");
        assert!(
            matches!(latency.get("count"), Some(serde_json::Value::UInt(n)) if *n == predicts),
            "request_latency_ns must record once per predict"
        );
    }

    // The same snapshot as Prometheus text exposition, for scrape-based
    // monitoring. Two lines are plenty to show the shape.
    {
        println!("→ {{\"id\": \"t\", \"op\": \"metrics_text\"}}");
        writer.write_all(b"{\"id\": \"t\", \"op\": \"metrics_text\"}\n")?;
        writer.flush()?;
        let mut response = String::new();
        reader.read_line(&mut response)?;
        let parsed: serde_json::Value = serde_json::from_str(&response)?;
        let text = parsed
            .as_object()
            .and_then(|o| o.get("metrics_text"))
            .and_then(|v| match v {
                serde_json::Value::Str(s) => Some(s.clone()),
                _ => None,
            })
            .expect("metrics_text response carries text");
        assert!(text.contains("deepgate_requests_predict_total 6"));
        let shown: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("requests_predict_total") || l.contains("latency_ns_count"))
            .collect();
        println!(
            "← {} lines of Prometheus exposition, e.g.:",
            text.lines().count()
        );
        for line in shown {
            println!("    {line}");
        }
        println!();
    }

    // Graceful shutdown: the verb is acknowledged, then the server drains.
    roundtrip(&mut reader, &mut writer, r#"{"id": "q", "op": "shutdown"}"#)?;
    server.wait();
    println!("server drained cleanly");
    Ok(())
}
