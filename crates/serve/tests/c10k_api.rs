//! C10K-grade harness for the event-driven front end: hundreds of
//! concurrent connections held open simultaneously, every request answered
//! exactly once, `connections_open` peaking at the full fleet size, and —
//! the point of the event loop — the server's OS thread count staying flat
//! (one event loop + the configured workers) instead of one thread per
//! connection.

use deepgate::core::DeepGateConfig;
use deepgate::Engine;
use deepgate_serve::{PollerKind, ServeConfig, Server};
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

const FULL_ADDER: &str = "INPUT(a)\nINPUT(b)\nINPUT(cin)\nOUTPUT(sum)\nOUTPUT(cout)\nx = XOR(a, b)\nsum = XOR(x, cin)\ng1 = AND(a, b)\ng2 = AND(x, cin)\ncout = OR(g1, g2)\n";

/// Thread counting compares absolute numbers, so the two fleet tests must
/// not overlap (each runs its own server whose threads would otherwise
/// count against the other's budget).
static SERIAL: Mutex<()> = Mutex::new(());

/// Serialises the fleet's `connect` calls. A simultaneous 512-SYN burst
/// overruns the listener's kernel accept backlog, and with syncookies a
/// client's `connect` can return while the server-side socket only
/// materialises once the client sends data — pacing the handshakes keeps
/// the backlog drained so every connection is real.
static CONNECT: Mutex<()> = Mutex::new(());

fn quick_engine() -> Engine {
    Engine::builder()
        .model(DeepGateConfig {
            hidden_dim: 8,
            num_iterations: 2,
            regressor_hidden: 4,
            ..DeepGateConfig::default()
        })
        .build()
        .expect("valid configuration")
}

/// How many live threads of this process belong to the serving stack.
/// Thread names truncate to 15 bytes in `/proc`, so every server thread
/// ("deepgate-serve-loop", "deepgate-serve-worker-N") reads as the same
/// "deepgate-serve-" prefix — which is exactly what we want to count.
#[cfg(target_os = "linux")]
fn server_thread_count() -> usize {
    std::fs::read_dir("/proc/self/task")
        .expect("procfs task list")
        .filter(|entry| {
            let comm = entry.as_ref().expect("task entry").path().join("comm");
            std::fs::read_to_string(comm)
                .is_ok_and(|name| name.trim_end().starts_with("deepgate-serve"))
        })
        .count()
}

fn gauge(metrics: &Value, name: &str) -> u64 {
    let gauges = metrics
        .as_object()
        .and_then(|o| o.get("metrics"))
        .and_then(|m| m.as_object())
        .and_then(|m| m.get("gauges"))
        .and_then(|g| g.as_object())
        .unwrap_or_else(|| panic!("no gauges in {metrics:?}"));
    match gauges.get(name) {
        Some(Value::UInt(v)) => *v,
        Some(Value::Int(v)) if *v >= 0 => *v as u64,
        other => panic!("gauge `{name}` missing or negative: {other:?}"),
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("server is listening");
        let reader = BufReader::new(stream.try_clone().expect("clone socket"));
        Client {
            reader,
            writer: stream,
        }
    }

    fn roundtrip(&mut self, request: &str) -> Value {
        self.writer
            .write_all(format!("{request}\n").as_bytes())
            .expect("request written");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("response arrives");
        serde_json::from_str(&line).expect("response is JSON")
    }
}

/// The shared scenario: `fleet` clients all connect and hold their sockets
/// open, the gauge and thread count are checked at peak, then every client
/// round-trips a predict and a stats request on its held connection.
fn run_fleet(fleet: usize, workers: usize, poller: PollerKind) {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    #[cfg(target_os = "linux")]
    let thread_baseline = server_thread_count();
    let server = Arc::new(
        Server::start(
            quick_engine(),
            ServeConfig {
                workers,
                max_connections: fleet + 8,
                queue_depth: 2 * fleet,
                poller,
                ..ServeConfig::default()
            },
        )
        .expect("server binds"),
    );
    let connected = Arc::new(Barrier::new(fleet + 1));
    let release = Arc::new(Barrier::new(fleet + 1));
    let responses = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..fleet)
        .map(|i| {
            let server = Arc::clone(&server);
            let connected = Arc::clone(&connected);
            let release = Arc::clone(&release);
            let responses = Arc::clone(&responses);
            std::thread::spawn(move || {
                let mut client = {
                    let _pace = CONNECT.lock().unwrap_or_else(|e| e.into_inner());
                    Client::connect(&server)
                };
                // A probe the server skips silently (empty line): its data
                // forces a handshake that raced the accept queue to
                // materialise server-side before the peak-fleet check.
                client.writer.write_all(b"\n").expect("probe written");
                // Hold the socket open until every peer has connected and
                // the peak-fleet checks have run.
                connected.wait();
                release.wait();
                let request = serde_json::to_string(&Value::Object(
                    [
                        ("id".to_string(), Value::UInt(i as u64)),
                        ("bench".to_string(), Value::Str(FULL_ADDER.to_string())),
                    ]
                    .into_iter()
                    .collect(),
                ))
                .expect("request serialises");
                let response = client.roundtrip(&request);
                let fields = response.as_object().expect("object response");
                assert_eq!(
                    fields.get("id"),
                    Some(&Value::UInt(i as u64)),
                    "response routed to the wrong request: {response:?}"
                );
                assert!(
                    fields.get("probs").is_some(),
                    "predict failed: {response:?}"
                );
                responses.fetch_add(1, Ordering::SeqCst);
                // A second round trip on the same socket proves the stream
                // stayed aligned: exactly one response line per request,
                // nothing extra buffered in between.
                let stats = client.roundtrip(r#"{"op": "stats"}"#);
                assert!(
                    stats.as_object().is_some_and(|o| o.contains_key("stats")),
                    "stream desynchronised: {stats:?}"
                );
            })
        })
        .collect();
    connected.wait();

    // Every client socket is connected and held. Admission is asynchronous
    // (the event loop accepts after the client's connect returns), so poll
    // the gauge up to a deadline.
    let mut control = Client::connect(&server);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let open = gauge(
            &control.roundtrip(r#"{"op": "metrics"}"#),
            "connections_open",
        );
        if open >= fleet as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "connections_open peaked at {open}, wanted >= {fleet}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The flat-thread-model claim, measured at peak fleet: one event loop
    // plus the workers, regardless of connection count (the blocking front
    // end would sit at `fleet + 1` threads here).
    #[cfg(target_os = "linux")]
    {
        let during = server_thread_count();
        assert!(
            during.saturating_sub(thread_baseline) <= workers + 3,
            "thread count not flat: {during} serving threads for {fleet} \
             connections (baseline {thread_baseline}, budget {})",
            workers + 3
        );
    }

    release.wait();
    for handle in handles {
        handle.join().expect("client thread");
    }
    assert_eq!(
        responses.load(Ordering::SeqCst),
        fleet,
        "every request must get exactly one terminal response"
    );
    let stats = server.stats();
    assert!(
        stats.connections >= fleet as u64,
        "accepted {} connections, expected at least {fleet}",
        stats.connections
    );
    server.shutdown();
}

#[test]
fn c10k_512_concurrent_connections_flat_thread_count() {
    run_fleet(512, 2, PollerKind::Auto);
}

#[test]
fn c10k_poll_backend_serves_a_concurrent_fleet_too() {
    // The portable poll(2) backend walks its whole registration table per
    // wait, so a smaller fleet keeps the test quick while still proving
    // the backend handles hundreds of registered sockets.
    run_fleet(128, 2, PollerKind::Poll);
}
