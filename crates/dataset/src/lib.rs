//! Synthetic benchmark suites, sub-circuit extraction and the labelled
//! dataset pipeline of the DeepGate reproduction.
//!
//! The paper trains on 10,824 sub-circuits extracted from four benchmark
//! suites (ITC'99, IWLS'05, EPFL, OpenCores) and evaluates generalisation on
//! five much larger designs. The original benchmark files are not
//! redistributable, so this crate generates *synthetic stand-ins* with
//! matching structural statistics (see DESIGN.md for the substitution
//! rationale):
//!
//! - [`generators`] — parameterised combinational building blocks (adders,
//!   multipliers, squarers, arbiters, ALUs, decoders, parity networks,
//!   random control logic).
//! - [`suites`] — per-suite design mixes that reproduce the size and depth
//!   ranges of Table I.
//! - [`large`] — the five large evaluation designs of Table III (arbiter,
//!   squarer, multiplier and two processor-like datapaths).
//! - [`Dataset`] — the end-to-end pipeline: generate designs, map to AIG,
//!   optimise, label every node with logic-simulated signal probabilities
//!   and split into train/test circuit graphs.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
pub mod large;
mod pipeline;
pub mod suites;

pub use large::LargeDesign;
pub use pipeline::{
    labelled_circuit_from_aig, labelled_circuit_from_netlist, Dataset, DatasetConfig, SuiteStats,
};
pub use suites::SuiteKind;
