//! Chaos tests: a deterministic [`FaultPlan`] drives failures through every
//! stage of the serving path — parse, encode, plan, infer, respond — and the
//! server must keep its invariants: every request gets exactly one terminal
//! response, the scheduler keeps draining after worker panics, expired
//! requests are shed with matching telemetry, and registry snapshots stay
//! internally consistent.

use deepgate::core::DeepGateConfig;
use deepgate::prelude::*;
use deepgate::telemetry::Stage;
use deepgate_serve::fault::{FaultKind, FaultPlan};
use deepgate_serve::{ServeConfig, Server};
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Once};
use std::time::Duration;

/// Injected panics unwind through real recovery paths; without a filter the
/// default hook spams the test log with expected backtraces. Keep everything
/// else (real bugs must stay loud).
fn silence_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let message = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                .unwrap_or("");
            if !message.contains("injected fault") {
                previous(info);
            }
        }));
    });
}

fn quick_engine() -> Engine {
    Engine::builder()
        .model(DeepGateConfig {
            hidden_dim: 8,
            num_iterations: 2,
            regressor_hidden: 4,
            ..DeepGateConfig::default()
        })
        .build()
        .expect("valid configuration")
}

/// A BENCH netlist of `n` chained NOT gates — distinct `n` gives distinct
/// structure, so every circuit is a fresh cache miss.
fn chain_bench(n: usize) -> String {
    let mut bench = String::from("INPUT(a)\nOUTPUT(y)\nw0 = NOT(a)\n");
    for i in 1..n {
        bench.push_str(&format!("w{i} = NOT(w{})\n", i - 1));
    }
    bench.push_str(&format!("y = NOT(w{})\n", n - 1));
    bench
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("server is listening");
        let reader = BufReader::new(stream.try_clone().expect("clone socket"));
        Client {
            reader,
            writer: stream,
        }
    }

    fn roundtrip(&mut self, request: &str) -> Value {
        self.writer
            .write_all(format!("{request}\n").as_bytes())
            .expect("request written");
        self.writer.flush().expect("request flushed");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("response arrives");
        serde_json::from_str(&line).expect("response is JSON")
    }

    fn predict(&mut self, id: u64, bench: &str) -> Value {
        let request = serde_json::to_string(&Value::Object(
            [
                ("id".to_string(), Value::UInt(id)),
                ("bench".to_string(), Value::Str(bench.to_string())),
            ]
            .into_iter()
            .collect(),
        ))
        .expect("request serialises");
        self.roundtrip(&request)
    }

    fn predict_with_deadline(&mut self, id: u64, bench: &str, deadline_ms: u64) -> Value {
        let request = serde_json::to_string(&Value::Object(
            [
                ("id".to_string(), Value::UInt(id)),
                ("bench".to_string(), Value::Str(bench.to_string())),
                ("deadline_ms".to_string(), Value::UInt(deadline_ms)),
            ]
            .into_iter()
            .collect(),
        ))
        .expect("request serialises");
        self.roundtrip(&request)
    }
}

fn field<'a>(value: &'a Value, name: &str) -> &'a Value {
    value
        .as_object()
        .and_then(|o| o.get(name))
        .unwrap_or_else(|| panic!("response lacks `{name}`: {value:?}"))
}

fn uint(value: &Value) -> u64 {
    match value {
        Value::UInt(n) => *n,
        other => panic!("expected unsigned integer, got {other:?}"),
    }
}

fn error_of(response: &Value) -> &str {
    match field(response, "error") {
        Value::Str(message) => message,
        other => panic!("error is not a string: {other:?}"),
    }
}

/// Every histogram in a `metrics` snapshot must be internally consistent:
/// its per-bucket counts sum to its total count. A panic that corrupted a
/// histogram mid-record would break this.
fn assert_bucket_sums_consistent(metrics: &Value) {
    let histograms = field(metrics, "histograms")
        .as_object()
        .expect("histograms object");
    assert!(!histograms.is_empty(), "snapshot has histograms");
    for (name, histogram) in histograms {
        let count = uint(field(histogram, "count"));
        let bucket_sum: u64 = field(histogram, "buckets")
            .as_array()
            .expect("buckets array")
            .iter()
            .map(|bucket| {
                let pair = bucket.as_array().expect("bucket is [le, count]");
                uint(&pair[1])
            })
            .sum();
        assert_eq!(
            bucket_sum, count,
            "histogram `{name}`: bucket counts sum to {bucket_sum} but count is {count}"
        );
    }
}

/// The scripted chaos run: a seeded plan fires a known fault at a known
/// request in every stage, and each fault lands as exactly one error
/// response on the right request while the server keeps serving.
#[test]
fn scripted_faults_in_every_stage_each_cost_exactly_one_response() {
    silence_injected_panics();
    // Full-rate limited rules fire on exactly the first N checks of their
    // stage, in insertion order — the request schedule below is exact.
    let plan = Arc::new(
        FaultPlan::seeded(2026)
            .inject_limited(Stage::Parse, FaultKind::IoError, 1.0, 2)
            .inject_limited(Stage::Parse, FaultKind::Panic, 1.0, 2)
            .inject_limited(Stage::Encode, FaultKind::IoError, 1.0, 2)
            .inject_limited(Stage::Plan, FaultKind::Panic, 1.0, 2)
            .inject_limited(Stage::Infer, FaultKind::Panic, 1.0, 3)
            .inject_limited(
                Stage::Respond,
                FaultKind::Delay(Duration::from_millis(5)),
                1.0,
                2,
            ),
    );
    let server = Server::start(
        quick_engine(),
        ServeConfig {
            workers: 1,
            max_batch: 1,
            faults: Some(Arc::clone(&plan)),
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let mut client = Client::connect(&server);

    // Sixteen structurally distinct circuits walk the plan through its
    // stages: requests 0-1 die at parse (I/O), 2-3 at parse (panic), 4-5 at
    // encode (I/O), 6-7 at plan (panic), 8-10 at infer (worker panic), and
    // 11-15 must succeed — the budgets are spent.
    let benches: Vec<String> = (0..16).map(|i| chain_bench(4 + i)).collect();
    for (i, bench) in benches.iter().enumerate() {
        let response = client.predict(i as u64, bench);
        let want: &[&str] = match i {
            0 | 1 => &["io-error at stage parse"],
            2 | 3 => &["request handling panicked", "panic at stage parse"],
            4 | 5 => &["io-error at stage encode"],
            6 | 7 => &["request handling panicked", "panic at stage plan"],
            8..=10 => &["worker panicked", "panic at stage infer"],
            _ => &[],
        };
        if want.is_empty() {
            assert!(
                field(&response, "probs").as_array().is_some(),
                "request {i} must succeed once budgets are spent: {response:?}"
            );
        } else {
            let error = error_of(&response);
            for needle in want {
                assert!(
                    error.contains(needle),
                    "request {i}: error `{error}` should mention `{needle}`"
                );
            }
        }
    }
    assert!(plan.exhausted(), "all limited budgets spent");
    assert_eq!(plan.fired(), 13, "2+2+2+2+3 faults plus 2 respond delays");
    for (stage, fired) in [
        (Stage::Parse, 4),
        (Stage::Encode, 2),
        (Stage::Plan, 2),
        (Stage::Infer, 3),
        (Stage::Respond, 2),
    ] {
        assert_eq!(plan.fired_at(stage), fired, "fired at {}", stage.name());
    }

    // The already-cached circuits, resubmitted with an impossible budget:
    // each is accepted, shed at batch assembly, and answered with
    // `DeadlineExceeded` — never silently dropped.
    for i in 0..4u64 {
        let response = client.predict_with_deadline(100 + i, &benches[11 + i as usize], 0);
        assert!(
            error_of(&response).contains("deadline exceeded"),
            "expired request {i} must be shed: {response:?}"
        );
    }

    // One snapshot ties the whole run together. The faulted stages happened
    // before scheduler submission except infer, so: 8 submissions from the
    // fault phase (3 failed by worker panics, 5 completed) plus 4 shed.
    let stats = field(&client.roundtrip(r#"{"op": "stats"}"#), "stats").clone();
    let scheduler = field(&stats, "scheduler");
    assert_eq!(uint(field(scheduler, "submitted")), 12);
    assert_eq!(uint(field(scheduler, "completed")), 5);
    assert_eq!(uint(field(scheduler, "failed")), 3);
    assert_eq!(uint(field(scheduler, "deadline_shed")), 4);
    assert_eq!(uint(field(scheduler, "worker_panics_recovered")), 3);
    assert_eq!(uint(field(scheduler, "worker_respawns")), 0);
    assert_eq!(uint(field(&stats, "request_panics_recovered")), 4);

    // The same identities on the metrics surface, and every histogram's
    // buckets must still sum to its count after panics tore through the
    // recording paths.
    let metrics = field(&client.roundtrip(r#"{"op": "metrics"}"#), "metrics").clone();
    let counters = field(&metrics, "counters");
    assert_eq!(uint(field(counters, "scheduler_deadline_shed_total")), 4);
    assert_eq!(uint(field(counters, "worker_panics_recovered_total")), 3);
    assert_eq!(uint(field(counters, "request_panics_recovered_total")), 4);
    assert_bucket_sums_consistent(&metrics);

    // The scheduler drains cleanly after three worker panics: shutdown
    // returns instead of hanging on a dead or wedged worker.
    drop(client);
    server.shutdown();
}

/// The unscripted soak: fractional rates fire pseudo-randomly (but
/// reproducibly) across all stages while a client pipelines mixed traffic.
/// The server must answer every request exactly once and its accounting
/// identity must hold at quiescence.
#[test]
fn random_rate_chaos_answers_every_request_exactly_once() {
    silence_injected_panics();
    let plan = Arc::new(
        FaultPlan::seeded(7)
            .inject(Stage::Parse, FaultKind::IoError, 0.05)
            .inject(Stage::Parse, FaultKind::Panic, 0.05)
            .inject(Stage::Encode, FaultKind::IoError, 0.2)
            .inject(Stage::Plan, FaultKind::Panic, 0.2)
            .inject(Stage::Infer, FaultKind::Panic, 0.15)
            .inject(
                Stage::Respond,
                FaultKind::Delay(Duration::from_millis(1)),
                0.1,
            ),
    );
    let server = Server::start(
        quick_engine(),
        ServeConfig {
            workers: 2,
            max_batch: 4,
            faults: Some(Arc::clone(&plan)),
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let mut client = Client::connect(&server);

    let mut outcomes = (0usize, 0usize); // (successes, errors)
    for i in 0..60u64 {
        // A mix of fresh structures, repeats (cache hits) and impossible
        // deadlines, so every code path sees faults.
        let bench = chain_bench(3 + (i as usize % 11));
        let response = if i % 7 == 3 {
            client.predict_with_deadline(i, &bench, 0)
        } else {
            client.predict(i, &bench)
        };
        // Exactly one terminal response per request: either probabilities
        // or an error — and when the response carries an id (faults before
        // parsing complete lose it), it is this request's id.
        let object = response.as_object().expect("response is an object");
        let succeeded = object.contains_key("probs");
        assert!(
            succeeded != object.contains_key("error"),
            "response must be exactly one of probs/error: {response:?}"
        );
        if let Some(id) = object.get("id") {
            assert_eq!(uint(id), i, "response id matches the request");
        }
        if succeeded {
            outcomes.0 += 1;
        } else {
            outcomes.1 += 1;
        }
    }
    assert!(outcomes.0 > 0, "some requests succeed under chaos");
    assert!(outcomes.1 > 0, "seed 7 injects at least one fault in 60");
    assert!(plan.fired() > 0, "the plan actually fired");

    // Quiescent accounting: everything submitted was answered one way.
    let stats = field(&client.roundtrip(r#"{"op": "stats"}"#), "stats").clone();
    let scheduler = field(&stats, "scheduler");
    let submitted = uint(field(scheduler, "submitted"));
    let answered = uint(field(scheduler, "completed"))
        + uint(field(scheduler, "failed"))
        + uint(field(scheduler, "deadline_shed"));
    assert_eq!(
        submitted, answered,
        "submitted == completed + failed + deadline_shed at quiescence"
    );
    let metrics = field(&client.roundtrip(r#"{"op": "metrics"}"#), "metrics").clone();
    assert_bucket_sums_consistent(&metrics);

    drop(client);
    server.shutdown();
}
