//! DAG utilities over [`Netlist`]: topological ordering, levelisation,
//! fan-out counting and transitive fan-in cones.
//!
//! These are the structural primitives shared by the logic-synthesis
//! substitute (`deepgate-aig`), the simulator (`deepgate-sim`) and the
//! topological batching used by the GNN models (`deepgate-gnn`).

use crate::{GateKind, Netlist, NodeId};
use std::collections::HashSet;

/// A topological ordering of netlist nodes (fan-ins before fan-outs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoOrder {
    order: Vec<NodeId>,
}

impl TopoOrder {
    /// The node ids in topological order.
    pub fn as_slice(&self) -> &[NodeId] {
        &self.order
    }

    /// Iterates over the node ids in topological order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.order.iter().copied()
    }

    /// Number of nodes in the ordering.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` if the ordering is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// Logic levels of every node in a netlist.
///
/// Primary inputs and constants sit at level 0; every gate sits one level
/// above its deepest fan-in. `max_level` is the circuit depth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Levels {
    /// Per-node logic level, indexed by [`NodeId::index`].
    pub level: Vec<usize>,
    /// The maximum level over all nodes (0 for a netlist with no gates).
    pub max_level: usize,
}

impl Levels {
    /// The level of a given node.
    pub fn of(&self, id: NodeId) -> usize {
        self.level[id.index()]
    }

    /// Groups node ids by level: entry `l` holds every node at level `l`.
    /// This grouping is exactly the *topological batching* used to
    /// parallelise DAG-GNN propagation.
    pub fn by_level(&self) -> Vec<Vec<NodeId>> {
        let mut buckets = vec![Vec::new(); self.max_level + 1];
        for (i, &l) in self.level.iter().enumerate() {
            buckets[l].push(NodeId(i as u32));
        }
        buckets
    }
}

/// Computes a topological order of the netlist.
///
/// Because [`Netlist::add_gate`](crate::Netlist::add_gate) requires fan-ins
/// to exist before use, ascending id order is already topological; this
/// function exists so downstream code does not rely on that invariant.
pub fn topo_order(netlist: &Netlist) -> TopoOrder {
    let order = (0..netlist.len() as u32).map(NodeId).collect();
    TopoOrder { order }
}

/// Computes logic levels for every node (inputs at level 0).
pub fn levels(netlist: &Netlist) -> Levels {
    let mut level = vec![0usize; netlist.len()];
    let mut max_level = 0;
    for (id, node) in netlist.iter() {
        if node.kind.is_source() {
            level[id.index()] = 0;
        } else {
            let l = node
                .fanins
                .iter()
                .map(|f| level[f.index()])
                .max()
                .unwrap_or(0)
                + 1;
            level[id.index()] = l;
            max_level = max_level.max(l);
        }
    }
    Levels { level, max_level }
}

/// Counts, for every node, how many gate fan-ins plus primary outputs consume
/// it.
pub fn fanout_counts(netlist: &Netlist) -> Vec<usize> {
    let mut counts = vec![0usize; netlist.len()];
    for (_, node) in netlist.iter() {
        for f in &node.fanins {
            counts[f.index()] += 1;
        }
    }
    for (id, _) in netlist.outputs() {
        counts[id.index()] += 1;
    }
    counts
}

/// Returns the set of nodes in the transitive fan-in cone of `roots`
/// (including the roots themselves).
pub fn transitive_fanin(netlist: &Netlist, roots: &[NodeId]) -> HashSet<NodeId> {
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut stack: Vec<NodeId> = roots.to_vec();
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        for &f in &netlist.node(id).fanins {
            if !seen.contains(&f) {
                stack.push(f);
            }
        }
    }
    seen
}

/// Returns the set of nodes in the transitive fan-out cone of `root`
/// (including `root`).
pub fn transitive_fanout(netlist: &Netlist, root: NodeId) -> HashSet<NodeId> {
    // Build a forward adjacency once.
    let mut fanouts: Vec<Vec<NodeId>> = vec![Vec::new(); netlist.len()];
    for (id, node) in netlist.iter() {
        for &f in &node.fanins {
            fanouts[f.index()].push(id);
        }
    }
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        for &s in &fanouts[id.index()] {
            if !seen.contains(&s) {
                stack.push(s);
            }
        }
    }
    seen
}

/// Counts how many nodes of each [`GateKind`] appear in the netlist,
/// indexed by [`GateKind::one_hot_index`].
pub fn kind_histogram(netlist: &Netlist) -> [usize; GateKind::ALL.len()] {
    let mut hist = [0usize; GateKind::ALL.len()];
    for (_, node) in netlist.iter() {
        hist[node.kind.one_hot_index()] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    fn chain(depth: usize) -> Netlist {
        let mut n = Netlist::new("chain");
        let mut prev = n.add_input("a");
        for _ in 0..depth {
            prev = n.add_gate(GateKind::Not, &[prev]).unwrap();
        }
        n.mark_output(prev, "y");
        n
    }

    #[test]
    fn levels_of_chain_match_depth() {
        let n = chain(5);
        let lv = levels(&n);
        assert_eq!(lv.max_level, 5);
        assert_eq!(lv.of(NodeId(0)), 0);
        assert_eq!(lv.of(NodeId(5)), 5);
        let buckets = lv.by_level();
        assert_eq!(buckets.len(), 6);
        assert!(buckets.iter().all(|b| b.len() == 1));
    }

    #[test]
    fn topo_order_respects_fanins() {
        let n = chain(4);
        let order = topo_order(&n);
        assert_eq!(order.len(), n.len());
        let pos: Vec<usize> = {
            let mut p = vec![0; n.len()];
            for (i, id) in order.iter().enumerate() {
                p[id.index()] = i;
            }
            p
        };
        for (id, node) in n.iter() {
            for f in &node.fanins {
                assert!(pos[f.index()] < pos[id.index()]);
            }
        }
    }

    #[test]
    fn fanout_counts_include_outputs() {
        let mut n = Netlist::new("f");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g1 = n.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = n.add_gate(GateKind::Or, &[a, g1]).unwrap();
        n.mark_output(g1, "o1");
        n.mark_output(g2, "o2");
        let counts = fanout_counts(&n);
        assert_eq!(counts[a.index()], 2); // g1, g2
        assert_eq!(counts[b.index()], 1); // g1
        assert_eq!(counts[g1.index()], 2); // g2 + output
        assert_eq!(counts[g2.index()], 1); // output only
    }

    #[test]
    fn transitive_fanin_and_fanout() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_gate(GateKind::And, &[a, b]).unwrap();
        let abc = n.add_gate(GateKind::Or, &[ab, c]).unwrap();
        n.mark_output(abc, "y");
        let cone = transitive_fanin(&n, &[ab]);
        assert_eq!(cone.len(), 3);
        assert!(cone.contains(&a) && cone.contains(&b) && cone.contains(&ab));
        let fo = transitive_fanout(&n, a);
        assert!(fo.contains(&ab) && fo.contains(&abc) && fo.contains(&a));
        assert!(!fo.contains(&c));
    }

    #[test]
    fn kind_histogram_counts() {
        let mut n = Netlist::new("h");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let _ = n.add_gate(GateKind::And, &[a, b]).unwrap();
        let _ = n.add_gate(GateKind::Xor, &[a, b]).unwrap();
        let hist = kind_histogram(&n);
        assert_eq!(hist[GateKind::Input.one_hot_index()], 2);
        assert_eq!(hist[GateKind::And.one_hot_index()], 1);
        assert_eq!(hist[GateKind::Xor.one_hot_index()], 1);
        assert_eq!(hist.iter().sum::<usize>(), 4);
    }

    #[test]
    fn empty_netlist_levels() {
        let n = Netlist::new("empty");
        let lv = levels(&n);
        assert_eq!(lv.max_level, 0);
        assert!(lv.level.is_empty());
        assert!(topo_order(&n).is_empty());
    }
}
