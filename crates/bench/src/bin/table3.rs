//! Reproduces Table III: generalisation of DeepGate and the DeepSet baseline
//! to five designs that are far larger than the training circuits.

use deepgate_bench::{
    build_dataset, fmt_error, fmt_reduction, train_and_evaluate, ExperimentSettings, Report, Scale,
};
use deepgate_dataset::{labelled_circuit_from_aig, LargeDesign};
use deepgate_gnn::{
    evaluate_prediction_error, AggregatorKind, DagRecConfig, DagRecGnn, ProbabilityModel,
};
use deepgate_nn::ParamStore;

fn main() {
    let scale = Scale::from_env_and_args();
    let settings = ExperimentSettings::for_scale(scale);
    let dataset = build_dataset(&settings, true);

    // Train the two contenders on the small sub-circuit dataset only.
    let mut deepset_store = ParamStore::new();
    let deepset = DagRecGnn::new(
        &mut deepset_store,
        DagRecConfig {
            feature_dim: 3,
            hidden_dim: settings.hidden_dim,
            num_iterations: settings.num_iterations,
            aggregator: AggregatorKind::DeepSet,
            reverse_layer: true,
            fix_gate_input: false,
            use_skip_connections: false,
            skip_encoding_frequencies: 8,
            regressor_hidden: settings.hidden_dim / 2,
            per_type_regressor: false,
            seed: 5,
        },
    );
    let _ = train_and_evaluate(&deepset, &mut deepset_store, &dataset, &settings);

    let mut deepgate_store = ParamStore::new();
    let deepgate = DagRecGnn::new(
        &mut deepgate_store,
        DagRecConfig {
            feature_dim: 3,
            hidden_dim: settings.hidden_dim,
            num_iterations: settings.num_iterations,
            aggregator: AggregatorKind::Attention,
            reverse_layer: true,
            fix_gate_input: true,
            use_skip_connections: true,
            skip_encoding_frequencies: 8,
            regressor_hidden: settings.hidden_dim / 2,
            per_type_regressor: true,
            seed: 5,
        },
    );
    let _ = train_and_evaluate(&deepgate, &mut deepgate_store, &dataset, &settings);

    // Evaluate on the large designs, unseen during training.
    let mut report = Report::new("table3", "Table III (large circuits)", scale);
    for design in LargeDesign::ALL {
        let netlist = design.generate(settings.large_design_scale);
        let aig = deepgate_aig::Aig::from_netlist(&netlist).expect("netlist maps to AIG");
        let circuit = labelled_circuit_from_aig(&aig, settings.num_patterns, 99)
            .expect("labelling large design");
        let (_, depth) = aig.levels();
        eprintln!(
            "[table3] {design}: {} nodes, {} levels",
            circuit.num_nodes, depth
        );
        let deepset_error =
            evaluate_prediction_error(&deepset.predict(&deepset_store, &circuit), &circuit)
                .expect("labelled circuit");
        let deepgate_error =
            evaluate_prediction_error(&deepgate.predict(&deepgate_store, &circuit), &circuit)
                .expect("labelled circuit");
        report.push_row(
            design.label(),
            vec![
                ("#Nodes".to_string(), circuit.num_nodes.to_string()),
                ("Levels".to_string(), depth.to_string()),
                ("DeepSet".to_string(), fmt_error(deepset_error)),
                ("DeepGate".to_string(), fmt_error(deepgate_error)),
                (
                    "Reduction".to_string(),
                    fmt_reduction(deepset_error, deepgate_error),
                ),
                (
                    "Paper DeepSet".to_string(),
                    fmt_error(design.paper_deepset_error()),
                ),
                (
                    "Paper DeepGate".to_string(),
                    fmt_error(design.paper_deepgate_error()),
                ),
            ],
        );
    }
    report.print();
    report.save();
}
