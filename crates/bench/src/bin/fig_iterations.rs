//! Reproduces the recurrence-iteration study of Section IV-D2: a trained
//! DeepGate model is evaluated with the inference iteration count T swept
//! from 1 to 50; the prediction error converges around T = 10.

use deepgate_bench::{
    build_dataset, fmt_error, train_and_evaluate, ExperimentSettings, Report, Scale,
};
use deepgate_gnn::{evaluate_prediction_error, AggregatorKind, DagRecConfig, DagRecGnn};
use deepgate_nn::ParamStore;

fn main() {
    let scale = Scale::from_env_and_args();
    let settings = ExperimentSettings::for_scale(scale);
    let dataset = build_dataset(&settings, true);

    let mut store = ParamStore::new();
    let model = DagRecGnn::new(
        &mut store,
        DagRecConfig {
            feature_dim: 3,
            hidden_dim: settings.hidden_dim,
            num_iterations: settings.num_iterations,
            aggregator: AggregatorKind::Attention,
            reverse_layer: true,
            fix_gate_input: true,
            use_skip_connections: true,
            skip_encoding_frequencies: 8,
            regressor_hidden: settings.hidden_dim / 2,
            per_type_regressor: true,
            seed: 17,
        },
    );
    let _ = train_and_evaluate(&model, &mut store, &dataset, &settings);

    let sweep: &[usize] = &[1, 2, 3, 5, 8, 10, 15, 20, 30, 50];
    let mut report = Report::new(
        "fig_iterations",
        "Sec. IV-D2 (error vs recurrence iterations T)",
        scale,
    );
    for &t in sweep {
        let error: f64 = dataset
            .test
            .iter()
            .map(|c| {
                evaluate_prediction_error(&model.predict_with_iterations(&store, c, t), c)
                    .expect("experiment circuits are labelled")
            })
            .sum::<f64>()
            / dataset.test.len().max(1) as f64;
        report.push_row(
            format!("T = {t}"),
            vec![("Avg. Prediction Error".to_string(), fmt_error(error))],
        );
    }
    report.print();
    report.save();
}
