//! `deepgate-serve` — the concurrent inference server of the DeepGate
//! reproduction.
//!
//! PR 1's [`deepgate::InferenceSession`] can fuse a *batch* of circuits into
//! disjoint-union graphs and predict them in one pass; this crate supplies
//! the subsystem that turns a stream of *independent concurrent requests*
//! into those batches:
//!
//! - [`Scheduler`] — a dynamic micro-batching scheduler: a bounded MPSC
//!   request queue drained by worker threads that collect up to
//!   `max_batch` requests within a `batch_window`, execute them through
//!   [`deepgate::InferenceSession::prepare_batch_refs`] /
//!   [`deepgate::InferenceSession::predict_batch_into`], and route each
//!   result back to its requester. A full queue rejects new work
//!   ([`ServeError::Overloaded`]) instead of building unbounded backlog.
//! - [`CircuitCache`] — a structural circuit cache: an LRU keyed by
//!   [`deepgate::gnn::CircuitGraph::fingerprint`] (plus a text-hash memo in
//!   front of the parser) holding prepared circuits with their inference
//!   plans, so repeated circuits skip BENCH parsing, AIG transformation,
//!   graph encoding and planning entirely.
//! - [`Server`] — an event-driven `std::net` TCP front end speaking
//!   newline-delimited JSON (see the [wire protocol](#wire-protocol)) with
//!   graceful drain on shutdown: in-flight requests complete, queued
//!   requests get a clean error, and every thread joins. See
//!   [Architecture](#architecture) for the thread model.
//!
//! # Architecture
//!
//! The front end is a single-threaded **event loop** (thread
//! `deepgate-serve-loop`) over nonblocking sockets: an OS readiness
//! backend (epoll on Linux, portable `poll(2)` elsewhere — selectable via
//! [`ServeConfig::poller`]) reports which sockets have bytes to read or
//! room to write, and a slab connection table holds each connection's
//! state. The OS thread count is **flat** — one event loop plus
//! [`ServeConfig::workers`] batching workers — at any connection count,
//! where the previous blocking front end spawned one thread per
//! connection.
//!
//! Each connection is a small state machine:
//!
//! - **reading** — bytes accumulate in a zero-copy line framer; every
//!   complete line is dispatched (`&[u8]` sliced straight from the read
//!   buffer, no per-request allocation before parsing).
//! - **awaiting inference** — predict requests are submitted to the
//!   [`Scheduler`] *without blocking*; workers push results into a
//!   completion queue and wake the loop through a wakeup channel
//!   (`eventloop_completions_total` counts the round trips).
//! - **writing** — responses queue in a per-connection write buffer that
//!   drains through nonblocking partial writes. A buffer crossing the
//!   high watermark (256 KiB) pauses request reading on that connection
//!   (`write_backpressure_pauses_total`) until the client catches up.
//! - **closing** — on EOF, error, hygiene-deadline expiry, or drain.
//!
//! The hygiene deadlines (idle / line / write) are timer-wheel entries
//! re-validated against live connection state when they fire, not blocking
//! read/write timeouts; their semantics and telemetry
//! (`connections_reaped_total`, `write_timeouts_total`) are unchanged from
//! the blocking front end.
//!
//! # Wire protocol
//!
//! One JSON object per line, one response line per request, over a plain
//! TCP connection. `id` is echoed back verbatim and may be any JSON value.
//!
//! ```text
//! → {"id": 1, "bench": "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n"}
//! ← {"id": 1, "probs": [0.5, 0.5, 0.27]}
//! → {"id": 2, "op": "stats"}
//! ← {"id": 2, "stats": {"completed": 1, ...}}
//! → {"id": 3, "op": "shutdown"}
//! ← {"id": 3, "ok": true}
//! ```
//!
//! Two more verbs expose the telemetry subsystem (see [`ServeMetrics`] for
//! the full series list):
//!
//! - `{"op": "metrics"}` → `{"id": ..., "metrics": {"counters": {...},
//!   "gauges": {...}, "histograms": {...}}}` — every counter and gauge by
//!   name, and every latency/size histogram as `{count, sum, max, p50,
//!   p90, p99, buckets}` with `buckets` a list of `[upper_bound, count]`
//!   pairs. The whole object is rendered from ONE registry snapshot, so
//!   its series are mutually consistent.
//! - `{"op": "metrics_text"}` → `{"id": ..., "metrics_text": "..."}` — the
//!   same snapshot in Prometheus text exposition format, series prefixed
//!   `deepgate_`.
//!
//! With [`ServeConfig::slow_request_threshold`] set, any predict request at
//! or over the threshold logs one structured stderr line naming its
//! dominant stage:
//!
//! ```text
//! slow-request verb=predict name=c6288 total_ms=12.480 dominant=infer \
//!     parse_ms=0.031 infer_ms=11.975 respond_ms=0.102
//! ```
//!
//! # Deadlines
//!
//! A predict request may carry an optional `deadline_ms` field — the
//! client's latency budget in milliseconds, measured from the instant the
//! request line is read:
//!
//! ```text
//! → {"id": 5, "bench": "…", "deadline_ms": 50}
//! ← {"id": 5, "probs": [0.5, …]}                       (met the budget)
//! ← {"id": 5, "error": "deadline exceeded: …"}          (shed instead)
//! ```
//!
//! [`ServeConfig::default_deadline`] is the server-side cap: when both are
//! present the *tighter* budget wins, and with neither the request waits
//! indefinitely. Expiry is checked at batch assembly, **before** inference
//! — an overloaded server sheds queued-but-expired requests cheaply
//! (counted in `scheduler_deadline_shed_total`) instead of computing
//! answers nobody is waiting for, and every shed request still receives its
//! one terminal `error` response.
//!
//! # Resilience
//!
//! The serving stack is built to keep answering under partial failure; see
//! the README's "Resilience" section for the full inventory. In brief:
//!
//! - **Worker-panic recovery** — a panic inside batch execution is caught
//!   (`worker_panics_recovered_total`), every waiter of the batch gets an
//!   internal-error response, and the worker keeps draining; a worker
//!   thread that dies anyway is respawned (`worker_respawns_total`), so the
//!   scheduler never hangs a submitter or loses capacity.
//! - **Request-handler recovery** — a panic while handling a request line
//!   becomes an `error` response (`request_panics_recovered_total`) instead
//!   of a dropped connection.
//! - **Connection hygiene** — [`ServeConfig::idle_timeout`] reaps
//!   connections with no traffic, [`ServeConfig::line_timeout`] cuts
//!   clients that trickle a request line byte-by-byte (slow-loris),
//!   [`ServeConfig::write_timeout`] cuts clients that stop reading
//!   responses, [`ServeConfig::max_connections`] bounds the connection
//!   fleet, and [`ServeConfig::max_request_bytes`] bounds one request line.
//!   Pipelined requests on one connection are admitted up to the
//!   scheduler's bounded queue, and per-connection response buffering is
//!   bounded by the write-backpressure watermark — so total in-flight work
//!   stays bounded by `queue_depth` plus the buffered bytes the watermark
//!   allows.
//! - **Fault injection** — [`ServeConfig::faults`] accepts a seeded,
//!   stage-addressed [`fault::FaultPlan`] that injects panics, delays and
//!   I/O errors at runtime hooks on the parse/encode/plan/infer/respond
//!   path; the chaos integration test drives the server through all of
//!   them and asserts every request still gets exactly one terminal
//!   response.
//!
//! A predict request carries its circuit in exactly one of three fields:
//!
//! - `bench` — BENCH interchange text, inline.
//! - `aiger` — AIGER-ASCII (`.aag`) text, inline.
//! - `aiger_b64` — a base64-encoded AIGER file, ASCII or binary (`.aig`);
//!   the format is auto-detected from the magic. This is how binary AIGER —
//!   which cannot ride in a JSON string — crosses the wire (see [`b64`]).
//!
//! AIGER payloads may be sequential; the optional `latch` field selects the
//! ingestion policy: `"cut"` (default — latch boundaries become pseudo
//! inputs/outputs) or `"unroll:<frames>"` (time-frame expansion). The policy
//! is part of the cache key, so the same bytes under different policies are
//! correctly treated as different circuits.
//!
//! ```text
//! → {"id": 4, "aiger_b64": "YWlnIDU…", "latch": "unroll:3"}
//! ← {"id": 4, "probs": [0.5, …]}
//! ```
//!
//! Errors come back as `{"id": ..., "error": "..."}`; malformed lines get
//! an `id`-less error object. See `examples/serve_demo.rs` at the workspace
//! root for a complete client session.
// Unsafe is denied everywhere except the audited FFI shim in `poll::sys`
// (epoll/poll syscalls; std offers no readiness API), which opts back in
// with a scoped `#[allow]`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod b64;
mod cache;
mod conn;
pub mod fault;
mod metrics;
mod poll;
mod scheduler;
mod server;

pub use cache::{keyed_with_mode, request_key, text_key, CacheStats, CircuitCache};
pub use conn::{Flush, LineFramer, LineOverflow, WriteBuf};
pub use fault::{FaultKind, FaultPlan};
pub use metrics::{snapshot_to_value, CacheMetrics, SchedulerMetrics, ServeMetrics};
pub use poll::PollerKind;
pub use scheduler::{Scheduler, SchedulerStats};
pub use server::{Server, ServerStats};

use deepgate::{DeepGateError, QuantMode};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Configuration of the serving subsystem: batching knobs, backpressure
/// limits, cache size and the listen address.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; port 0 picks an ephemeral port (default
    /// `127.0.0.1:0`).
    pub addr: String,
    /// Most requests a worker fuses into one batch (default 16).
    pub max_batch: usize,
    /// How long a worker waits for the batch to fill once it holds at least
    /// one request (default 2 ms). Smaller trades throughput for latency.
    pub batch_window: Duration,
    /// Bounded queue depth; submissions beyond it are rejected with
    /// [`ServeError::Overloaded`] (default 1024).
    pub queue_depth: usize,
    /// Number of batching worker threads (default: available parallelism).
    /// [`Scheduler::new`] accepts 0 — a drain-only scheduler that queues
    /// without serving, used to test backpressure and shutdown —
    /// [`Server::start`] requires at least 1.
    pub workers: usize,
    /// Structural-cache capacity in prepared circuits (default 256; 0
    /// disables caching).
    pub cache_capacity: usize,
    /// Slow-request log threshold: a predict request whose end-to-end
    /// latency reaches it gets one structured stderr line naming the
    /// dominant stage (default `None` — disabled). `Some(Duration::ZERO)`
    /// logs every predict request.
    pub slow_request_threshold: Option<Duration>,
    /// Server-side deadline cap for predict requests: the effective budget
    /// is the tighter of this and the request's `deadline_ms` field
    /// (default `None` — only client deadlines apply). Expired requests
    /// are shed at batch assembly, before inference, with
    /// [`ServeError::DeadlineExceeded`].
    pub default_deadline: Option<Duration>,
    /// Reap a connection after this long with no completed request and no
    /// partial request line in flight (default 120 s; `None` disables).
    pub idle_timeout: Option<Duration>,
    /// Most time a request line may take from its first byte to its
    /// newline; a client trickling bytes slower (slow-loris) is cut off
    /// (default 30 s; `None` disables).
    pub line_timeout: Option<Duration>,
    /// Socket write timeout: a client that stops reading responses blocks
    /// the server's writes at most this long before the connection is
    /// dropped (default 30 s; `None` disables).
    pub write_timeout: Option<Duration>,
    /// Most connections served at once; further ones are refused with an
    /// error line (default 1024; 0 = unlimited). Bounds the event loop's
    /// connection table (and with it per-connection buffer memory).
    pub max_connections: usize,
    /// Most bytes one request line may hold; a line growing past this cuts
    /// the connection instead of buffering unboundedly (default 8 MiB).
    pub max_request_bytes: u64,
    /// Deterministic fault-injection plan consulted at every stage hook
    /// (default `None` — no faults). See [`fault::FaultPlan`].
    pub faults: Option<Arc<FaultPlan>>,
    /// Readiness backend of the event loop (default [`PollerKind::Auto`] —
    /// epoll on Linux, portable `poll(2)` elsewhere).
    pub poller: PollerKind,
    /// Scoring mode of the inference kernel: [`QuantMode::F32`] (exact, the
    /// default) or [`QuantMode::Int8`] (quantized weights, faster,
    /// rank-order-preserving probabilities). Part of the cache key, so
    /// restarting in a different mode never serves stale-mode entries.
    pub quantize: QuantMode,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_batch: 16,
            batch_window: Duration::from_millis(2),
            queue_depth: 1024,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            cache_capacity: 256,
            slow_request_threshold: None,
            default_deadline: None,
            idle_timeout: Some(Duration::from_secs(120)),
            line_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_connections: 1024,
            max_request_bytes: 8 * 1024 * 1024,
            faults: None,
            poller: PollerKind::Auto,
            quantize: QuantMode::F32,
        }
    }
}

/// Any error the serving subsystem can produce.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The request queue is full — backpressure, try again later.
    Overloaded {
        /// The configured queue depth that was exceeded.
        depth: usize,
    },
    /// The server is draining; the request was not (or no longer) queued.
    ShuttingDown,
    /// The request's latency budget (its `deadline_ms`, capped by
    /// [`ServeConfig::default_deadline`]) expired before inference started;
    /// the request was shed at batch assembly without running the model.
    DeadlineExceeded,
    /// The server hit an internal failure (e.g. a recovered worker panic)
    /// while processing the request. The request itself may be fine —
    /// retrying is reasonable.
    Internal(String),
    /// The request was malformed (bad JSON, missing fields, unparsable
    /// circuit).
    BadRequest(String),
    /// The engine failed while preparing or predicting the circuit.
    Engine(DeepGateError),
    /// A socket operation failed.
    Io(String),
    /// The configuration was inconsistent.
    Config(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth } => {
                write!(f, "server overloaded: request queue is full ({depth})")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::DeadlineExceeded => {
                write!(
                    f,
                    "deadline exceeded: request expired before inference and was shed"
                )
            }
            ServeError::Internal(msg) => write!(f, "internal error: {msg}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::Io(msg) => write!(f, "io error: {msg}"),
            ServeError::Config(msg) => write!(f, "invalid serve configuration: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeepGateError> for ServeError {
    fn from(e: DeepGateError) -> Self {
        ServeError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_consistent() {
        let config = ServeConfig::default();
        assert!(config.max_batch >= 1);
        assert!(config.queue_depth >= 1);
        assert!(config.workers >= 1);
        assert!(config.addr.ends_with(":0"));
    }

    #[test]
    fn errors_display_and_convert() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeError>();
        let e: ServeError = DeepGateError::EmptyBatch.into();
        assert!(matches!(e, ServeError::Engine(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(ServeError::Overloaded { depth: 4 }
            .to_string()
            .contains('4'));
        assert!(ServeError::ShuttingDown.to_string().contains("shutting"));
        assert!(ServeError::DeadlineExceeded
            .to_string()
            .contains("deadline exceeded"));
        assert!(ServeError::Internal("worker panicked".into())
            .to_string()
            .contains("worker panicked"));
    }

    #[test]
    fn default_resilience_limits_are_sane() {
        let config = ServeConfig::default();
        assert!(config.default_deadline.is_none(), "no cap unless asked");
        assert!(config.idle_timeout.expect("idle reaping on") >= config.batch_window);
        assert!(config.line_timeout.is_some() && config.write_timeout.is_some());
        assert!(config.max_connections >= 1);
        assert!(config.max_request_bytes >= 1024);
        assert!(config.faults.is_none(), "no faults unless injected");
    }
}
