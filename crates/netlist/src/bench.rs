//! Reader and writer for the ISCAS/BENCH text format.
//!
//! BENCH is the interchange format used by the combinational benchmark suites
//! the DeepGate paper draws its training circuits from. The dialect accepted
//! here covers the common combinational subset:
//!
//! ```text
//! # comment
//! INPUT(a)
//! INPUT(b)
//! OUTPUT(y)
//! w1 = AND(a, b)
//! w2 = NOT(w1)
//! y  = OR(w2, a)
//! ```
//!
//! `DFF` and other sequential primitives are rejected with a parse error —
//! DeepGate operates on combinational (sub-)circuits only.

use crate::{GateKind, Netlist, NetlistError, NodeId};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Parses BENCH text into a [`Netlist`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed lines,
/// [`NetlistError::DuplicateSignal`] if a signal is defined twice and
/// [`NetlistError::UndefinedSignal`] if a referenced signal is never defined.
pub fn parse(text: &str, name: impl Into<String>) -> Result<Netlist, NetlistError> {
    struct GateLine {
        line_no: usize,
        output: String,
        kind: GateKind,
        inputs: Vec<String>,
    }

    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut gates: Vec<GateLine> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let upper = line.to_ascii_uppercase();
        if let Some(rest) = upper.strip_prefix("INPUT") {
            let sig = parse_parenthesised(line, rest, line_no)?;
            inputs.push(sig);
            continue;
        }
        if let Some(rest) = upper.strip_prefix("OUTPUT") {
            let sig = parse_parenthesised(line, rest, line_no)?;
            outputs.push(sig);
            continue;
        }
        // Gate definition: out = KIND(in1, in2, ...)
        let (lhs, rhs) = line.split_once('=').ok_or_else(|| NetlistError::Parse {
            line: line_no,
            message: "expected `signal = GATE(...)`".into(),
        })?;
        let output = lhs.trim().to_string();
        let rhs = rhs.trim();
        let open = rhs.find('(').ok_or_else(|| NetlistError::Parse {
            line: line_no,
            message: "missing `(` in gate expression".into(),
        })?;
        if !rhs.ends_with(')') {
            return Err(NetlistError::Parse {
                line: line_no,
                message: "missing closing `)`".into(),
            });
        }
        let kind_str = rhs[..open].trim();
        let kind = GateKind::from_mnemonic(kind_str).ok_or_else(|| NetlistError::Parse {
            line: line_no,
            message: format!("unknown gate type `{kind_str}`"),
        })?;
        if kind == GateKind::Input {
            return Err(NetlistError::Parse {
                line: line_no,
                message: "INPUT used as gate type".into(),
            });
        }
        let args_str = rhs[open + 1..rhs.len() - 1].trim();
        let args: Vec<String> = if args_str.is_empty() {
            Vec::new()
        } else {
            args_str.split(',').map(|s| s.trim().to_string()).collect()
        };
        gates.push(GateLine {
            line_no,
            output,
            kind,
            inputs: args,
        });
    }

    let mut netlist = Netlist::new(name);
    let mut by_name: HashMap<String, NodeId> = HashMap::new();
    for sig in &inputs {
        if by_name.contains_key(sig) {
            return Err(NetlistError::DuplicateSignal(sig.clone()));
        }
        let id = netlist.add_input(sig.clone());
        by_name.insert(sig.clone(), id);
    }

    // Gates may be declared in any order; iterate until fixpoint.
    let mut remaining: Vec<GateLine> = gates;
    while !remaining.is_empty() {
        let before = remaining.len();
        let mut next_round = Vec::new();
        for gate in remaining {
            if by_name.contains_key(&gate.output) {
                return Err(NetlistError::DuplicateSignal(gate.output.clone()));
            }
            let resolved: Option<Vec<NodeId>> = gate
                .inputs
                .iter()
                .map(|s| by_name.get(s).copied())
                .collect();
            match resolved {
                Some(fanins) => {
                    let id = netlist
                        .add_named_gate(gate.kind, &fanins, gate.output.clone())
                        .map_err(|e| match e {
                            NetlistError::ArityMismatch { kind, got } => NetlistError::Parse {
                                line: gate.line_no,
                                message: format!("gate {kind} cannot take {got} fan-ins"),
                            },
                            other => other,
                        })?;
                    by_name.insert(gate.output.clone(), id);
                }
                None => next_round.push(gate),
            }
        }
        if next_round.len() == before {
            // No progress: some signal is undefined (or there is a cycle).
            let missing = next_round
                .iter()
                .flat_map(|g| g.inputs.iter())
                .find(|s| !by_name.contains_key(*s))
                .cloned()
                .unwrap_or_else(|| next_round[0].output.clone());
            return Err(NetlistError::UndefinedSignal(missing));
        }
        remaining = next_round;
    }

    for sig in &outputs {
        let id = by_name
            .get(sig)
            .copied()
            .ok_or_else(|| NetlistError::UndefinedSignal(sig.clone()))?;
        netlist.mark_output(id, sig.clone());
    }

    Ok(netlist)
}

fn parse_parenthesised(
    line: &str,
    rest_upper: &str,
    line_no: usize,
) -> Result<String, NetlistError> {
    let rest_upper = rest_upper.trim();
    if !rest_upper.starts_with('(') || !rest_upper.ends_with(')') {
        return Err(NetlistError::Parse {
            line: line_no,
            message: "expected `INPUT(name)` / `OUTPUT(name)`".into(),
        });
    }
    // Slice from the original (non-uppercased) line to preserve signal case.
    let open = line.find('(').expect("checked above");
    let close = line.rfind(')').expect("checked above");
    let sig = line[open + 1..close].trim();
    if sig.is_empty() {
        return Err(NetlistError::Parse {
            line: line_no,
            message: "empty signal name".into(),
        });
    }
    Ok(sig.to_string())
}

/// Writes a [`Netlist`] as BENCH text.
///
/// Unnamed internal signals are emitted as `n<id>`. The output is accepted by
/// [`parse`], so `parse(write(n)) == n` up to node numbering.
pub fn write(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", netlist.name());
    let signal = |id: NodeId| -> String {
        netlist
            .node_name(id)
            .map(str::to_string)
            .unwrap_or_else(|| format!("n{}", id.index()))
    };
    for &pi in netlist.inputs() {
        let _ = writeln!(out, "INPUT({})", signal(pi));
    }
    for (po, name) in netlist.outputs() {
        // If the output name differs from the driving signal's name we emit a
        // buffer below; reference the output name here.
        let drives_same_name = netlist.node_name(*po) == Some(name.as_str());
        let _ = writeln!(
            out,
            "OUTPUT({})",
            if drives_same_name {
                signal(*po)
            } else {
                name.clone()
            }
        );
    }
    for (id, node) in netlist.iter() {
        match node.kind {
            GateKind::Input => {}
            GateKind::Const0 => {
                let _ = writeln!(out, "{} = CONST0()", signal(id));
            }
            GateKind::Const1 => {
                let _ = writeln!(out, "{} = CONST1()", signal(id));
            }
            kind => {
                let args: Vec<String> = node.fanins.iter().map(|&f| signal(f)).collect();
                let _ = writeln!(
                    out,
                    "{} = {}({})",
                    signal(id),
                    kind.mnemonic().to_ascii_uppercase(),
                    args.join(", ")
                );
            }
        }
    }
    // Alias buffers for outputs whose name differs from their driver.
    for (po, name) in netlist.outputs() {
        if netlist.node_name(*po) != Some(name.as_str()) {
            let _ = writeln!(out, "{} = BUF({})", name, signal(*po));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    const C17_LIKE: &str = r"
# tiny test circuit
INPUT(g1)
INPUT(g2)
INPUT(g3)
OUTPUT(g7)
g4 = NAND(g1, g2)
g5 = NAND(g2, g3)
g6 = NAND(g4, g5)
g7 = NOT(g6)
";

    #[test]
    fn parse_simple_circuit() {
        let n = parse(C17_LIKE, "c17ish").unwrap();
        assert_eq!(n.num_inputs(), 3);
        assert_eq!(n.num_gates(), 4);
        assert_eq!(n.num_outputs(), 1);
        assert!(n.validate().is_ok());
        let g6 = n.find_by_name("g6").unwrap();
        assert_eq!(n.node(g6).kind, GateKind::Nand);
    }

    #[test]
    fn parse_handles_out_of_order_definitions() {
        let text = r"
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(w, b)
w = NOT(a)
";
        let n = parse(text, "ooo").unwrap();
        assert_eq!(n.num_gates(), 2);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn parse_reports_undefined_signal() {
        let text = "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n";
        let err = parse(text, "bad").unwrap_err();
        assert_eq!(err, NetlistError::UndefinedSignal("ghost".into()));
    }

    #[test]
    fn parse_reports_duplicate_signal() {
        let text = "INPUT(a)\nw = NOT(a)\nw = BUF(a)\n";
        let err = parse(text, "bad").unwrap_err();
        assert_eq!(err, NetlistError::DuplicateSignal("w".into()));
    }

    #[test]
    fn parse_reports_unknown_gate() {
        let text = "INPUT(a)\ny = FROB(a)\n";
        let err = parse(text, "bad").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 2, .. }));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for text in ["INPUT a\n", "y AND(a)\n", "y = AND(a\n", "OUTPUT()\n"] {
            assert!(parse(text, "bad").is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn roundtrip_through_writer() {
        let n = parse(C17_LIKE, "c17ish").unwrap();
        let text = write(&n);
        let n2 = parse(&text, "c17ish").unwrap();
        assert_eq!(n2.num_inputs(), n.num_inputs());
        assert_eq!(n2.num_outputs(), n.num_outputs());
        assert_eq!(n2.num_gates(), n.num_gates());
    }

    #[test]
    fn writer_emits_alias_buffer_for_renamed_output() {
        let mut n = Netlist::new("alias");
        let a = n.add_input("a");
        let g = n.add_gate(GateKind::Not, &[a]).unwrap();
        n.mark_output(g, "out_signal");
        let text = write(&n);
        assert!(text.contains("OUTPUT(out_signal)"));
        assert!(text.contains("out_signal = BUF("));
        let n2 = parse(&text, "alias").unwrap();
        assert_eq!(n2.num_outputs(), 1);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# hello\n\nINPUT(a)  # trailing comment\nOUTPUT(a)\n";
        let n = parse(text, "c").unwrap();
        assert_eq!(n.num_inputs(), 1);
        assert_eq!(n.num_outputs(), 1);
    }
}
