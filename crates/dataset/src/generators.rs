//! Parameterised combinational circuit generators.
//!
//! These building blocks stand in for the benchmark circuits of the paper's
//! training set. Every generator is deterministic in its parameters (and
//! seed, where randomness is involved), so datasets are reproducible.

use deepgate_netlist::{GateKind, Netlist, NetlistBuilder, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An n-bit ripple-carry adder (`2n` inputs, `n + 1` outputs).
pub fn ripple_carry_adder(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("rca{width}"));
    let a = b.input_word("a", width);
    let c = b.input_word("b", width);
    let (sum, carry) = b.ripple_add(&a, &c).expect("equal widths");
    b.output_word("sum", &sum);
    b.output("cout", carry);
    b.finish()
}

/// An n-bit array multiplier (`2n` inputs, `2n` outputs).
pub fn array_multiplier(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("mul{width}"));
    let a = b.input_word("a", width);
    let c = b.input_word("b", width);
    let product = b.array_multiply(&a, &c).expect("equal widths");
    b.output_word("p", &product);
    b.finish()
}

/// An n-bit squarer: an array multiplier with both operands tied to the same
/// input word, which creates heavy fan-out and reconvergence (the structure
/// the paper's Squarer benchmark stresses).
pub fn squarer(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("sqr{width}"));
    let a = b.input_word("a", width);
    let product = b.array_multiply(&a.clone(), &a).expect("equal widths");
    b.output_word("p", &product);
    b.finish()
}

/// An n-request priority arbiter: request `i` is granted when it is asserted
/// and no lower-indexed request is. Quadratic in the request count and full
/// of shared AND chains, mirroring the Arbiter design of Table III.
pub fn priority_arbiter(requests: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("arbiter{requests}"));
    let req = b.input_word("req", requests);
    let mut blocked: Option<NodeId> = None;
    for (i, &request) in req.iter().enumerate() {
        let grant = match blocked {
            None => request,
            Some(block) => {
                let not_block = b.not(block);
                b.and2(request, not_block)
            }
        };
        b.output(format!("grant[{i}]"), grant);
        blocked = Some(match blocked {
            None => request,
            Some(block) => b.or2(block, request),
        });
    }
    b.finish()
}

/// A round-robin style arbiter with a masked and an unmasked priority chain,
/// producing far more reconvergence than [`priority_arbiter`].
pub fn masked_arbiter(requests: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("masked_arbiter{requests}"));
    let req = b.input_word("req", requests);
    let mask = b.input_word("mask", requests);
    // Masked requests take priority; fall back to the unmasked chain when no
    // masked request is asserted.
    let masked: Vec<NodeId> = (0..requests).map(|i| b.and2(req[i], mask[i])).collect();
    let any_masked = b.reduce(GateKind::Or, &masked);
    let mut blocked_m: Option<NodeId> = None;
    let mut blocked_u: Option<NodeId> = None;
    for i in 0..requests {
        let grant_m = match blocked_m {
            None => masked[i],
            Some(block) => {
                let nb = b.not(block);
                b.and2(masked[i], nb)
            }
        };
        let grant_u = match blocked_u {
            None => req[i],
            Some(block) => {
                let nb = b.not(block);
                b.and2(req[i], nb)
            }
        };
        let use_unmasked = b.not(any_masked);
        let fallback = b.and2(grant_u, use_unmasked);
        let grant = b.or2(grant_m, fallback);
        b.output(format!("grant[{i}]"), grant);
        blocked_m = Some(match blocked_m {
            None => masked[i],
            Some(block) => b.or2(block, masked[i]),
        });
        blocked_u = Some(match blocked_u {
            None => req[i],
            Some(block) => b.or2(block, req[i]),
        });
    }
    b.finish()
}

/// An n-bit equality/magnitude comparator (`eq`, `lt`, `gt` outputs).
pub fn comparator(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("cmp{width}"));
    let a = b.input_word("a", width);
    let c = b.input_word("b", width);
    let eq = b.equals(&a, &c);
    // a < b computed MSB-first: lt = OR_i (prefix_eq_i & !a_i & b_i).
    let mut lt_terms = Vec::new();
    let mut prefix_eq: Option<NodeId> = None;
    for i in (0..width).rev() {
        let na = b.not(a[i]);
        let term = b.and2(na, c[i]);
        let term = match prefix_eq {
            None => term,
            Some(p) => b.and2(p, term),
        };
        lt_terms.push(term);
        let bit_eq = b.gate(GateKind::Xnor, &[a[i], c[i]]).expect("binary arity");
        prefix_eq = Some(match prefix_eq {
            None => bit_eq,
            Some(p) => b.and2(p, bit_eq),
        });
    }
    let lt = b.reduce(GateKind::Or, &lt_terms);
    let not_lt = b.not(lt);
    let not_eq = b.not(eq);
    let gt = b.and2(not_lt, not_eq);
    b.output("eq", eq);
    b.output("lt", lt);
    b.output("gt", gt);
    b.finish()
}

/// A balanced parity (XOR) network over `width` inputs.
pub fn parity_tree(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("parity{width}"));
    let xs = b.input_word("x", width);
    let p = b.reduce(GateKind::Xor, &xs);
    b.output("parity", p);
    b.finish()
}

/// An n-to-2^n one-hot decoder with an enable input.
pub fn decoder(select_bits: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("dec{select_bits}"));
    let sel = b.input_word("sel", select_bits);
    let enable = b.input("en");
    let inverted: Vec<NodeId> = sel.iter().map(|&s| b.not(s)).collect();
    for value in 0..(1usize << select_bits) {
        let terms: Vec<NodeId> = (0..select_bits)
            .map(|bit| {
                if (value >> bit) & 1 == 1 {
                    sel[bit]
                } else {
                    inverted[bit]
                }
            })
            .collect();
        let hit = b.reduce(GateKind::And, &terms);
        let out = b.and2(hit, enable);
        b.output(format!("y[{value}]"), out);
    }
    b.finish()
}

/// A small word-level ALU: add, AND, OR, XOR selected by a 2-bit opcode
/// through a multiplexer tree. Mimics datapath blocks of the OpenCores
/// benchmark circuits.
pub fn alu(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("alu{width}"));
    let a = b.input_word("a", width);
    let c = b.input_word("b", width);
    let op = b.input_word("op", 2);
    let (sum, _carry) = b.ripple_add(&a, &c).expect("equal widths");
    for i in 0..width {
        let and_i = b.and2(a[i], c[i]);
        let or_i = b.or2(a[i], c[i]);
        let xor_i = b.xor2(a[i], c[i]);
        let result = b.mux_tree(&op, &[sum[i], and_i, or_i, xor_i]);
        b.output(format!("y[{i}]"), result);
    }
    b.finish()
}

/// The next-state logic of an n-bit counter with a terminal-count compare
/// (increment plus comparator), a stand-in for the control-dominated ITC'99
/// circuits.
pub fn counter_next_state(width: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("counter{width}"));
    let state = b.input_word("state", width);
    let limit = b.input_word("limit", width);
    let enable = b.input("en");
    // Incrementer: ripple of half adders.
    let mut carry = enable;
    let mut next = Vec::with_capacity(width);
    for &bit in &state {
        let sum = b.xor2(bit, carry);
        carry = b.and2(bit, carry);
        next.push(sum);
    }
    let at_limit = b.equals(&state, &limit);
    let not_limit = b.not(at_limit);
    for (i, &n) in next.iter().enumerate() {
        let held = b.and2(n, not_limit);
        b.output(format!("next[{i}]"), held);
    }
    b.output("wrap", at_limit);
    b.finish()
}

/// Pseudo-random multi-level control logic: `num_gates` random 2-input gates
/// wired to earlier signals, with the last few gates exposed as outputs.
/// Deterministic in `seed`.
pub fn random_logic(num_inputs: usize, num_gates: usize, seed: u64) -> Netlist {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new(format!("rand{num_inputs}x{num_gates}_{seed}"));
    let mut signals = b.input_word("x", num_inputs);
    let kinds = [
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Not,
    ];
    for _ in 0..num_gates {
        let kind = kinds[rng.gen_range(0..kinds.len())];
        // Bias fan-in selection towards recent signals so the circuit grows
        // deep rather than wide, like synthesised control logic.
        let pick = |rng: &mut SmallRng, len: usize| -> usize {
            if rng.gen_bool(0.6) && len > num_inputs {
                rng.gen_range(len.saturating_sub(num_inputs)..len)
            } else {
                rng.gen_range(0..len)
            }
        };
        let node = if kind == GateKind::Not {
            let src = signals[pick(&mut rng, signals.len())];
            b.not(src)
        } else {
            let x = signals[pick(&mut rng, signals.len())];
            let y = signals[pick(&mut rng, signals.len())];
            b.gate(kind, &[x, y]).expect("binary arity")
        };
        signals.push(node);
    }
    let num_outputs = (num_gates / 8).clamp(1, 16);
    for (i, &sig) in signals.iter().rev().take(num_outputs).enumerate() {
        b.output(format!("y[{i}]"), sig);
    }
    b.finish()
}

/// A processor-like datapath: instruction decoder, register-file read
/// multiplexers, an ALU and a write-back multiplexer. `scale` controls the
/// word width and register count, so the node count grows roughly
/// quadratically with it. Stand-in for the 80386 / Viper processor designs
/// of Table III.
pub fn processor_datapath(scale: usize) -> Netlist {
    let width = 4 * scale.max(1);
    let regs_bits = 3; // 8 architectural registers
    let mut b = NetlistBuilder::new(format!("proc{scale}"));
    // Register file contents arrive as inputs (combinational slice of the
    // processor), two read ports selected by register indices.
    let regs: Vec<Vec<NodeId>> = (0..(1usize << regs_bits))
        .map(|r| b.input_word(&format!("r{r}"), width))
        .collect();
    let rs1 = b.input_word("rs1", regs_bits);
    let rs2 = b.input_word("rs2", regs_bits);
    let opcode = b.input_word("op", 2);
    let imm = b.input_word("imm", width);
    let use_imm = b.input("use_imm");

    let read_port = |b: &mut NetlistBuilder, sel: &[NodeId], regs: &[Vec<NodeId>]| -> Vec<NodeId> {
        (0..width)
            .map(|bit| {
                let column: Vec<NodeId> = regs.iter().map(|r| r[bit]).collect();
                b.mux_tree(sel, &column)
            })
            .collect()
    };
    let a = read_port(&mut b, &rs1, &regs);
    let b_reg = read_port(&mut b, &rs2, &regs);
    let operand_b: Vec<NodeId> = (0..width)
        .map(|i| b.mux(use_imm, b_reg[i], imm[i]))
        .collect();

    let (sum, carry) = b.ripple_add(&a, &operand_b).expect("equal widths");
    let mut result = Vec::with_capacity(width);
    for i in 0..width {
        let and_i = b.and2(a[i], operand_b[i]);
        let xor_i = b.xor2(a[i], operand_b[i]);
        let or_i = b.or2(a[i], operand_b[i]);
        let res = b.mux_tree(&opcode, &[sum[i], and_i, xor_i, or_i]);
        result.push(res);
    }
    // Status flags: zero, carry, parity.
    let any = b.reduce(GateKind::Or, &result);
    let zero = b.not(any);
    let parity = b.reduce(GateKind::Xor, &result);
    b.output_word("result", &result);
    b.output("zero", zero);
    b.output("carry", carry);
    b.output("parity", parity);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepgate_aig::Aig;
    use deepgate_sim::{simulate_netlist_words, SignalProbability};

    /// Simulates a netlist on one random word and returns the output bits of
    /// the first output for functional spot checks.
    fn output_word(netlist: &Netlist, inputs: &[u64]) -> u64 {
        let values = simulate_netlist_words(netlist, inputs).expect("input count matches");
        values[netlist.outputs()[0].0.index()]
    }

    #[test]
    fn adder_adds() {
        let n = ripple_carry_adder(8);
        assert!(n.validate().is_ok());
        assert_eq!(n.num_inputs(), 16);
        assert_eq!(n.num_outputs(), 9);
        // Check one concrete addition: a = 3, b = 5 -> sum bit 3 (value 8).
        let mut inputs = vec![0u64; 16];
        inputs[0] = u64::MAX; // a[0]
        inputs[1] = u64::MAX; // a[1]  -> a = 3
        inputs[8] = u64::MAX; // b[0]
        inputs[10] = u64::MAX; // b[2] -> b = 5
        let values = simulate_netlist_words(&n, &inputs).unwrap();
        // sum = 8 -> sum[3] set, others clear.
        let sum_bits: Vec<u64> = n
            .outputs()
            .iter()
            .take(8)
            .map(|(id, _)| values[id.index()])
            .collect();
        assert_eq!(sum_bits[3], u64::MAX);
        assert_eq!(sum_bits[0], 0);
        assert_eq!(sum_bits[2], 0);
    }

    #[test]
    fn multiplier_and_squarer_sizes() {
        let m = array_multiplier(4);
        assert!(m.validate().is_ok());
        assert_eq!(m.num_outputs(), 8);
        let s = squarer(4);
        assert!(s.validate().is_ok());
        // The squarer shares its operand, so it has half the inputs.
        assert_eq!(s.num_inputs(), 4);
        assert!(s.num_gates() > 50);
    }

    #[test]
    fn arbiter_grants_highest_priority_only() {
        let n = priority_arbiter(8);
        assert!(n.validate().is_ok());
        // Requests 2 and 5 asserted -> only grant 2 fires.
        let mut inputs = vec![0u64; 8];
        inputs[2] = u64::MAX;
        inputs[5] = u64::MAX;
        let values = simulate_netlist_words(&n, &inputs).unwrap();
        for (i, (id, _)) in n.outputs().iter().enumerate() {
            let expected = if i == 2 { u64::MAX } else { 0 };
            assert_eq!(values[id.index()], expected, "grant {i}");
        }
    }

    #[test]
    fn masked_arbiter_is_reconvergent() {
        let n = masked_arbiter(6);
        assert!(n.validate().is_ok());
        let aig = Aig::from_netlist(&n).unwrap();
        let recon = deepgate_aig::ReconvergenceAnalysis::of(&aig);
        assert!(recon.num_reconvergence_nodes() > 0);
    }

    #[test]
    fn comparator_results_are_consistent() {
        let n = comparator(6);
        assert!(n.validate().is_ok());
        // eq, lt, gt are mutually exclusive for every pattern.
        let probs = SignalProbability::simulate_netlist(&n, 8192, 3).unwrap();
        let ids: Vec<usize> = n.outputs().iter().map(|(id, _)| id.index()).collect();
        let total: f64 = ids.iter().map(|&i| probs.of(i)).sum();
        assert!((total - 1.0).abs() < 0.05, "eq+lt+gt = {total}");
    }

    #[test]
    fn parity_probability_is_half() {
        let n = parity_tree(12);
        let probs = SignalProbability::simulate_netlist(&n, 8192, 5).unwrap();
        let out = n.outputs()[0].0.index();
        assert!((probs.of(out) - 0.5).abs() < 0.03);
    }

    #[test]
    fn decoder_is_one_hot() {
        let n = decoder(3);
        assert!(n.validate().is_ok());
        assert_eq!(n.num_outputs(), 8);
        // With enable high and sel = 5, only output 5 is active.
        let mut inputs = vec![0u64; 4];
        inputs[0] = u64::MAX; // sel[0]
        inputs[2] = u64::MAX; // sel[2] -> 5
        inputs[3] = u64::MAX; // enable
        let values = simulate_netlist_words(&n, &inputs).unwrap();
        for (i, (id, _)) in n.outputs().iter().enumerate() {
            let expected = if i == 5 { u64::MAX } else { 0 };
            assert_eq!(values[id.index()], expected, "output {i}");
        }
    }

    #[test]
    fn alu_opcode_selects_and_operation() {
        let n = alu(4);
        assert!(n.validate().is_ok());
        // op = 1 (AND), a = 0b1100, b = 0b1010 -> result = 0b1000.
        let mut inputs = vec![0u64; 10];
        inputs[2] = u64::MAX; // a[2]
        inputs[3] = u64::MAX; // a[3]
        inputs[5] = u64::MAX; // b[1]
        inputs[7] = u64::MAX; // b[3]
        inputs[8] = u64::MAX; // op[0] = 1
        let values = simulate_netlist_words(&n, &inputs).unwrap();
        let bits: Vec<u64> = n
            .outputs()
            .iter()
            .map(|(id, _)| values[id.index()])
            .collect();
        assert_eq!(bits[3], u64::MAX);
        assert_eq!(bits[0], 0);
        assert_eq!(bits[1], 0);
        assert_eq!(bits[2], 0);
    }

    #[test]
    fn counter_and_random_logic_build() {
        let c = counter_next_state(8);
        assert!(c.validate().is_ok());
        assert!(c.num_gates() > 30);
        let r1 = random_logic(8, 120, 42);
        let r2 = random_logic(8, 120, 42);
        let r3 = random_logic(8, 120, 43);
        assert!(r1.validate().is_ok());
        assert_eq!(r1.len(), r2.len());
        assert_eq!(
            deepgate_netlist::bench::write(&r1),
            deepgate_netlist::bench::write(&r2)
        );
        assert_ne!(
            deepgate_netlist::bench::write(&r1),
            deepgate_netlist::bench::write(&r3)
        );
    }

    #[test]
    fn processor_datapath_scales() {
        let small = processor_datapath(1);
        let big = processor_datapath(2);
        assert!(small.validate().is_ok());
        assert!(big.validate().is_ok());
        assert!(big.num_gates() > small.num_gates());
        assert!(small.num_gates() > 100);
        let _ = output_word(&small, &vec![0u64; small.num_inputs()]);
    }
}
