use crate::{AigError, AigLit};
use deepgate_netlist::{GateKind, Netlist, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// The kind of an AIG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AigNodeKind {
    /// The constant-false node (always node 0).
    ConstFalse,
    /// A primary input.
    Input,
    /// The current-state output of a latch (sequential state element).
    ///
    /// In the combinational view a latch node behaves like a primary input:
    /// it has no fan-ins and its value is free. Its next-state function and
    /// reset value live in the latch table ([`Aig::latches`]); the ingestion
    /// policies ([`Aig::cut_latches`], [`Aig::unroll`]) eliminate latch
    /// nodes before a circuit reaches the learning pipeline.
    Latch,
    /// A 2-input AND node.
    And,
}

/// One sequential state element of an [`Aig`].
///
/// `state` names the [`AigNodeKind::Latch`] node that carries the latch's
/// current-state value through the combinational logic; `next` is the
/// literal latched at every clock edge; `init` is the reset value
/// (`Some(false)`/`Some(true)`) or `None` for an uninitialised latch, the
/// three-way semantics of AIGER 1.9.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AigLatch {
    /// Node index of the latch's current-state node.
    pub state: usize,
    /// The next-state literal.
    pub next: AigLit,
    /// Reset value; `None` means uninitialised.
    pub init: Option<bool>,
    /// Latch name (from an AIGER symbol table, or generated).
    pub name: String,
}

/// One node of an [`Aig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AigNode {
    /// The node kind.
    pub kind: AigNodeKind,
    /// First fan-in literal (only meaningful for AND nodes).
    pub fanin0: AigLit,
    /// Second fan-in literal (only meaningful for AND nodes).
    pub fanin1: AigLit,
}

/// Structural statistics of an [`Aig`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AigStats {
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of latches (sequential state elements).
    pub num_latches: usize,
    /// Number of AND nodes.
    pub num_ands: usize,
    /// Number of primary outputs.
    pub num_outputs: usize,
    /// Logic depth in AND levels.
    pub depth: usize,
    /// Number of nodes with fan-out ≥ 2 (reconvergence stems).
    pub num_fanout_stems: usize,
    /// Total node count of the explicit PI/AND/NOT netlist produced by
    /// [`Aig::to_netlist`] (each distinct complemented edge becomes one NOT).
    pub num_expanded_nodes: usize,
}

/// An And-Inverter Graph with structural hashing.
///
/// Node 0 is the constant-false node, followed by the primary inputs and then
/// the AND nodes in topological order. Edges are [`AigLit`]s that carry a
/// complement bit, so inverters are free. Construction performs constant
/// folding, trivial simplification (`x·x = x`, `x·¬x = 0`, `x·1 = x`,
/// `x·0 = 0`) and structural hashing, mirroring the behaviour of ABC's
/// `strash` command that the paper relies on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Aig {
    name: String,
    nodes: Vec<AigNode>,
    inputs: Vec<usize>,
    input_names: Vec<String>,
    latches: Vec<AigLatch>,
    outputs: Vec<(AigLit, String)>,
    #[serde(skip)]
    strash: HashMap<(AigLit, AigLit), usize>,
}

impl Aig {
    /// Creates an empty AIG containing only the constant node.
    pub fn new(name: impl Into<String>) -> Self {
        Aig {
            name: name.into(),
            nodes: vec![AigNode {
                kind: AigNodeKind::ConstFalse,
                fanin0: AigLit::FALSE,
                fanin1: AigLit::FALSE,
            }],
            inputs: Vec::new(),
            input_names: Vec::new(),
            latches: Vec::new(),
            outputs: Vec::new(),
            strash: HashMap::new(),
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Total node count including the constant node.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the AIG contains only the constant node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of AND nodes.
    pub fn num_ands(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind == AigNodeKind::And)
            .count()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of latches.
    pub fn num_latches(&self) -> usize {
        self.latches.len()
    }

    /// The latch table, in declaration order.
    pub fn latches(&self) -> &[AigLatch] {
        &self.latches
    }

    /// Returns `true` when the AIG holds no latches (purely combinational).
    pub fn is_combinational(&self) -> bool {
        self.latches.is_empty()
    }

    /// Node indices of the primary inputs, in declaration order.
    pub fn inputs(&self) -> &[usize] {
        &self.inputs
    }

    /// Name of the `i`-th primary input.
    pub fn input_name(&self, i: usize) -> &str {
        &self.input_names[i]
    }

    /// Primary outputs as `(literal, name)` pairs.
    pub fn outputs(&self) -> &[(AigLit, String)] {
        &self.outputs
    }

    /// Access a node by index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn node(&self, index: usize) -> &AigNode {
        &self.nodes[index]
    }

    /// Iterates over `(index, node)` pairs in topological (index) order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &AigNode)> {
        self.nodes.iter().enumerate()
    }

    /// Adds a primary input and returns its (positive) literal.
    pub fn add_input(&mut self, name: impl Into<String>) -> AigLit {
        let index = self.nodes.len();
        self.nodes.push(AigNode {
            kind: AigNodeKind::Input,
            fanin0: AigLit::FALSE,
            fanin1: AigLit::FALSE,
        });
        self.inputs.push(index);
        self.input_names.push(name.into());
        AigLit::positive(index)
    }

    /// Marks a literal as a primary output.
    pub fn add_output(&mut self, lit: AigLit, name: impl Into<String>) {
        self.outputs.push((lit, name.into()));
    }

    /// Adds a latch (reset to 0, next state constant-false until
    /// [`Aig::set_latch_next`] is called) and returns the positive literal of
    /// its current-state node.
    pub fn add_latch(&mut self, name: impl Into<String>) -> AigLit {
        let index = self.nodes.len();
        self.nodes.push(AigNode {
            kind: AigNodeKind::Latch,
            fanin0: AigLit::FALSE,
            fanin1: AigLit::FALSE,
        });
        self.latches.push(AigLatch {
            state: index,
            next: AigLit::FALSE,
            init: Some(false),
            name: name.into(),
        });
        AigLit::positive(index)
    }

    /// Sets the next-state literal of the `i`-th latch.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_latch_next(&mut self, i: usize, next: AigLit) {
        self.latches[i].next = next;
    }

    /// Sets the reset value of the `i`-th latch (`None` = uninitialised).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_latch_init(&mut self, i: usize, init: Option<bool>) {
        self.latches[i].init = init;
    }

    /// Renames the `i`-th latch.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_latch_name(&mut self, i: usize, name: impl Into<String>) {
        self.latches[i].name = name.into();
    }

    /// Renames the `i`-th primary input.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_input_name(&mut self, i: usize, name: impl Into<String>) {
        self.input_names[i] = name.into();
    }

    /// Appends a node verbatim (no simplification). Crate-internal helper for
    /// the AIGER parser.
    pub(crate) fn push_node(&mut self, kind: AigNodeKind, fanin0: AigLit, fanin1: AigLit) {
        self.nodes.push(AigNode {
            kind,
            fanin0,
            fanin1,
        });
    }

    /// Returns the AND of two literals, applying constant folding, trivial
    /// simplification and structural hashing.
    pub fn and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        // Constant folding and trivial cases.
        if a == AigLit::FALSE || b == AigLit::FALSE {
            return AigLit::FALSE;
        }
        if a == AigLit::TRUE {
            return b;
        }
        if b == AigLit::TRUE {
            return a;
        }
        if a == b {
            return a;
        }
        if a == b.complement() {
            return AigLit::FALSE;
        }
        // Canonical order for structural hashing.
        let (lo, hi) = if a.raw() <= b.raw() { (a, b) } else { (b, a) };
        if let Some(&idx) = self.strash.get(&(lo, hi)) {
            return AigLit::positive(idx);
        }
        let index = self.nodes.len();
        self.nodes.push(AigNode {
            kind: AigNodeKind::And,
            fanin0: lo,
            fanin1: hi,
        });
        self.strash.insert((lo, hi), index);
        AigLit::positive(index)
    }

    /// Returns the OR of two literals (built as `¬(¬a·¬b)`).
    pub fn or(&mut self, a: AigLit, b: AigLit) -> AigLit {
        self.and(a.complement(), b.complement()).complement()
    }

    /// Returns the XOR of two literals (built from three AND nodes).
    pub fn xor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let a_nb = self.and(a, b.complement());
        let na_b = self.and(a.complement(), b);
        self.or(a_nb, na_b)
    }

    /// Returns `sel ? b : a` built from AND/OR nodes.
    pub fn mux(&mut self, sel: AigLit, a: AigLit, b: AigLit) -> AigLit {
        let not_sel_a = self.and(sel.complement(), a);
        let sel_b = self.and(sel, b);
        self.or(not_sel_a, sel_b)
    }

    /// Reduces a slice of literals with AND as a balanced tree.
    pub fn and_many(&mut self, lits: &[AigLit]) -> AigLit {
        self.reduce(lits, AigLit::TRUE, Self::and)
    }

    /// Reduces a slice of literals with OR as a balanced tree.
    pub fn or_many(&mut self, lits: &[AigLit]) -> AigLit {
        self.reduce(lits, AigLit::FALSE, Self::or)
    }

    /// Reduces a slice of literals with XOR as a balanced tree.
    pub fn xor_many(&mut self, lits: &[AigLit]) -> AigLit {
        self.reduce(lits, AigLit::FALSE, Self::xor)
    }

    fn reduce(
        &mut self,
        lits: &[AigLit],
        empty: AigLit,
        op: fn(&mut Self, AigLit, AigLit) -> AigLit,
    ) -> AigLit {
        match lits.len() {
            0 => empty,
            1 => lits[0],
            _ => {
                let mut layer = lits.to_vec();
                while layer.len() > 1 {
                    let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                    for pair in layer.chunks(2) {
                        if pair.len() == 2 {
                            next.push(op(self, pair[0], pair[1]));
                        } else {
                            next.push(pair[0]);
                        }
                    }
                    layer = next;
                }
                layer[0]
            }
        }
    }

    /// Converts a gate-level netlist into AIG form (the ABC `strash`
    /// substitute).
    ///
    /// # Errors
    ///
    /// Returns [`AigError::InvalidNetlist`] if the netlist fails validation.
    pub fn from_netlist(netlist: &Netlist) -> Result<Self, AigError> {
        netlist.validate()?;
        let mut aig = Aig::new(netlist.name());
        let mut map: HashMap<NodeId, AigLit> = HashMap::new();
        for (id, node) in netlist.iter() {
            let lit = match node.kind {
                GateKind::Input => aig.add_input(
                    node.name
                        .clone()
                        .unwrap_or_else(|| format!("pi_{}", id.index())),
                ),
                GateKind::Const0 => AigLit::FALSE,
                GateKind::Const1 => AigLit::TRUE,
                GateKind::Buf => map[&node.fanins[0]],
                GateKind::Not => map[&node.fanins[0]].complement(),
                GateKind::And | GateKind::Nand => {
                    let lits: Vec<AigLit> = node.fanins.iter().map(|f| map[f]).collect();
                    let res = aig.and_many(&lits);
                    if node.kind == GateKind::Nand {
                        res.complement()
                    } else {
                        res
                    }
                }
                GateKind::Or | GateKind::Nor => {
                    let lits: Vec<AigLit> = node.fanins.iter().map(|f| map[f]).collect();
                    let res = aig.or_many(&lits);
                    if node.kind == GateKind::Nor {
                        res.complement()
                    } else {
                        res
                    }
                }
                GateKind::Xor | GateKind::Xnor => {
                    let lits: Vec<AigLit> = node.fanins.iter().map(|f| map[f]).collect();
                    let res = aig.xor_many(&lits);
                    if node.kind == GateKind::Xnor {
                        res.complement()
                    } else {
                        res
                    }
                }
                GateKind::Mux => {
                    let sel = map[&node.fanins[0]];
                    let a = map[&node.fanins[1]];
                    let b = map[&node.fanins[2]];
                    aig.mux(sel, a, b)
                }
            };
            map.insert(id, lit);
        }
        for (po, name) in netlist.outputs() {
            let lit = map[po];
            aig.add_output(lit, name.clone());
        }
        Ok(aig)
    }

    /// Logic level of every node (constant and inputs at level 0, AND nodes
    /// one above their deepest fan-in). The second element is the maximum
    /// level.
    pub fn levels(&self) -> (Vec<usize>, usize) {
        let mut level = vec![0usize; self.nodes.len()];
        let mut max = 0;
        for (i, node) in self.iter() {
            if node.kind == AigNodeKind::And {
                let l = level[node.fanin0.node()].max(level[node.fanin1.node()]) + 1;
                level[i] = l;
                max = max.max(l);
            }
        }
        (level, max)
    }

    /// Number of fan-outs (AND consumers plus primary outputs) of every node.
    pub fn fanout_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nodes.len()];
        for (_, node) in self.iter() {
            if node.kind == AigNodeKind::And {
                counts[node.fanin0.node()] += 1;
                counts[node.fanin1.node()] += 1;
            }
        }
        for (lit, _) in &self.outputs {
            counts[lit.node()] += 1;
        }
        for latch in &self.latches {
            counts[latch.next.node()] += 1;
        }
        counts
    }

    /// Per-node list of AND fan-out node indices (forward adjacency).
    pub fn fanouts(&self) -> Vec<Vec<usize>> {
        let mut fanouts = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.iter() {
            if node.kind == AigNodeKind::And {
                fanouts[node.fanin0.node()].push(i);
                fanouts[node.fanin1.node()].push(i);
            }
        }
        fanouts
    }

    /// Structural statistics.
    pub fn stats(&self) -> AigStats {
        let (_, depth) = self.levels();
        let fanouts = self.fanout_counts();
        AigStats {
            num_inputs: self.num_inputs(),
            num_latches: self.num_latches(),
            num_ands: self.num_ands(),
            num_outputs: self.num_outputs(),
            depth,
            num_fanout_stems: fanouts.iter().filter(|&&c| c >= 2).count(),
            num_expanded_nodes: self.to_netlist().len(),
        }
    }

    /// Expands the AIG into an explicit PI/AND/NOT netlist.
    ///
    /// Complemented edges are materialised as `NOT` gates (one per distinct
    /// complemented source node), which yields exactly the three-symbol node
    /// alphabet (PI, AND, NOT) the DeepGate model consumes.
    ///
    /// Latch current-state nodes become pseudo primary inputs (the implicit
    /// combinational view); next-state functions are *not* exported as
    /// outputs. Apply [`Aig::cut_latches`] first to keep next-state cones
    /// observable, or [`Aig::unroll`] for a time-expanded view.
    pub fn to_netlist(&self) -> Netlist {
        let mut out = Netlist::new(self.name.clone());
        // Map each AIG node index to its netlist node.
        let mut node_map: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        // Lazily created NOT node per complemented source.
        let mut not_map: HashMap<usize, NodeId> = HashMap::new();
        // The constant node is only materialised if referenced.
        let mut const_node: Option<NodeId> = None;
        let mut const_not: Option<NodeId> = None;

        for (i, input_idx) in self.inputs.iter().enumerate() {
            let id = out.add_input(self.input_names[i].clone());
            node_map[*input_idx] = Some(id);
        }
        for latch in &self.latches {
            let id = out.add_input(latch.name.clone());
            node_map[latch.state] = Some(id);
        }

        // Resolve a literal to a netlist node, creating NOT/const nodes on
        // demand. Implemented as a closure-free helper to appease borrowck.
        fn resolve(
            out: &mut Netlist,
            node_map: &[Option<NodeId>],
            not_map: &mut HashMap<usize, NodeId>,
            const_node: &mut Option<NodeId>,
            const_not: &mut Option<NodeId>,
            lit: AigLit,
        ) -> NodeId {
            if lit.is_constant() {
                let base = *const_node.get_or_insert_with(|| out.add_const(false));
                if lit.is_complemented() {
                    return *const_not.get_or_insert_with(|| {
                        out.add_gate(GateKind::Not, &[base]).expect("arity 1")
                    });
                }
                return base;
            }
            let base = node_map[lit.node()].expect("fan-in built before use");
            if lit.is_complemented() {
                *not_map
                    .entry(lit.node())
                    .or_insert_with(|| out.add_gate(GateKind::Not, &[base]).expect("arity 1"))
            } else {
                base
            }
        }

        for (i, node) in self.iter() {
            if node.kind != AigNodeKind::And {
                continue;
            }
            let a = resolve(
                &mut out,
                &node_map,
                &mut not_map,
                &mut const_node,
                &mut const_not,
                node.fanin0,
            );
            let b = resolve(
                &mut out,
                &node_map,
                &mut not_map,
                &mut const_node,
                &mut const_not,
                node.fanin1,
            );
            let id = out.add_gate(GateKind::And, &[a, b]).expect("arity 2");
            node_map[i] = Some(id);
        }

        let outputs: Vec<(AigLit, String)> = self.outputs.clone();
        for (lit, name) in outputs {
            let id = resolve(
                &mut out,
                &node_map,
                &mut not_map,
                &mut const_node,
                &mut const_not,
                lit,
            );
            out.mark_output(id, name);
        }
        out
    }

    /// Cuts every latch boundary, producing a purely combinational AIG — the
    /// paper's combinational-cone treatment of sequential circuits.
    ///
    /// Each latch's current-state node becomes a pseudo primary input (same
    /// name), and each next-state function becomes a pseudo primary output
    /// (`<name>_next`), so both the fan-out cone of the state and the fan-in
    /// cone of the next-state function stay observable. Combinational AIGs
    /// come back as a plain (re-strashed) copy.
    pub fn cut_latches(&self) -> Aig {
        let mut out = Aig::new(self.name.clone());
        let mut map: Vec<AigLit> = vec![AigLit::FALSE; self.nodes.len()];
        for (pos, &idx) in self.inputs.iter().enumerate() {
            map[idx] = out.add_input(self.input_names[pos].clone());
        }
        for latch in &self.latches {
            map[latch.state] = out.add_input(latch.name.clone());
        }
        for (i, node) in self.iter() {
            if node.kind == AigNodeKind::And {
                let a = resolve_mapped(&map, node.fanin0);
                let b = resolve_mapped(&map, node.fanin1);
                map[i] = out.and(a, b);
            }
        }
        for (lit, name) in &self.outputs {
            out.add_output(resolve_mapped(&map, *lit), name.clone());
        }
        for latch in &self.latches {
            out.add_output(
                resolve_mapped(&map, latch.next),
                format!("{}_next", latch.name),
            );
        }
        out
    }

    /// Unrolls the sequential circuit over `frames` time frames into one
    /// combinational AIG.
    ///
    /// Frame 0 sees every latch at its reset value (uninitialised latches
    /// become fresh pseudo-inputs named `<name>@init`); frame `t > 0` sees
    /// frame `t-1`'s next-state literal. Primary inputs and outputs are
    /// replicated per frame as `<name>@t`, keeping every frame's outputs
    /// observable. Combinational AIGs come back as a single-frame copy.
    ///
    /// # Errors
    ///
    /// Returns [`AigError::InvalidNetlist`] if `frames` is 0.
    pub fn unroll(&self, frames: usize) -> Result<Aig, AigError> {
        if frames == 0 {
            return Err(AigError::InvalidNetlist(
                "unroll requires at least one frame".into(),
            ));
        }
        let mut out = Aig::new(self.name.clone());
        // Current-state literal of each latch entering the frame being built.
        let mut state: Vec<AigLit> = Vec::with_capacity(self.latches.len());
        for latch in &self.latches {
            state.push(match latch.init {
                Some(false) => AigLit::FALSE,
                Some(true) => AigLit::TRUE,
                None => out.add_input(format!("{}@init", latch.name)),
            });
        }
        for frame in 0..frames {
            let mut map: Vec<AigLit> = vec![AigLit::FALSE; self.nodes.len()];
            for (pos, &idx) in self.inputs.iter().enumerate() {
                map[idx] = out.add_input(format!("{}@{frame}", self.input_names[pos]));
            }
            for (j, latch) in self.latches.iter().enumerate() {
                map[latch.state] = state[j];
            }
            for (i, node) in self.iter() {
                if node.kind == AigNodeKind::And {
                    let a = resolve_mapped(&map, node.fanin0);
                    let b = resolve_mapped(&map, node.fanin1);
                    map[i] = out.and(a, b);
                }
            }
            for (lit, name) in &self.outputs {
                out.add_output(resolve_mapped(&map, *lit), format!("{name}@{frame}"));
            }
            for (j, latch) in self.latches.iter().enumerate() {
                state[j] = resolve_mapped(&map, latch.next);
            }
        }
        Ok(out)
    }

    /// Rebuilds the structural-hash table (needed after deserialisation or
    /// AIGER parsing). Keys are canonicalised to the `(lo, hi)` fan-in order
    /// [`Aig::and`] looks up, so raw-pushed nodes with swapped fan-ins still
    /// deduplicate future construction.
    pub fn rebuild_strash(&mut self) {
        self.strash.clear();
        for (i, node) in self.nodes.iter().enumerate() {
            if node.kind == AigNodeKind::And {
                let (lo, hi) = if node.fanin0.raw() <= node.fanin1.raw() {
                    (node.fanin0, node.fanin1)
                } else {
                    (node.fanin1, node.fanin0)
                };
                self.strash.insert((lo, hi), i);
            }
        }
    }

    /// Checks internal invariants: node 0 is the constant, fan-ins of AND
    /// nodes point to earlier nodes, inputs have kind `Input`.
    ///
    /// # Errors
    ///
    /// Returns [`AigError::InvalidNetlist`] describing the first violation.
    pub fn validate(&self) -> Result<(), AigError> {
        if self.nodes.is_empty() || self.nodes[0].kind != AigNodeKind::ConstFalse {
            return Err(AigError::InvalidNetlist(
                "node 0 must be the constant-false node".into(),
            ));
        }
        let mut latch_nodes = 0usize;
        for (i, node) in self.iter().skip(1) {
            match node.kind {
                AigNodeKind::ConstFalse => {
                    return Err(AigError::InvalidNetlist(format!(
                        "node {i} duplicates the constant node"
                    )))
                }
                AigNodeKind::Input => {}
                AigNodeKind::Latch => latch_nodes += 1,
                AigNodeKind::And => {
                    if node.fanin0.node() >= i || node.fanin1.node() >= i {
                        return Err(AigError::InvalidNetlist(format!(
                            "and node {i} references a later node"
                        )));
                    }
                }
            }
        }
        if latch_nodes != self.latches.len() {
            return Err(AigError::InvalidNetlist(format!(
                "{} latch nodes but {} latch table entries",
                latch_nodes,
                self.latches.len()
            )));
        }
        for (j, latch) in self.latches.iter().enumerate() {
            if latch.state >= self.nodes.len() || self.nodes[latch.state].kind != AigNodeKind::Latch
            {
                return Err(AigError::InvalidNetlist(format!(
                    "latch {j} state node {} is not a latch node",
                    latch.state
                )));
            }
            if latch.next.node() >= self.nodes.len() {
                return Err(AigError::UnknownNode(latch.next.node()));
            }
        }
        for (lit, _) in &self.outputs {
            if lit.node() >= self.nodes.len() {
                return Err(AigError::UnknownNode(lit.node()));
            }
        }
        Ok(())
    }
}

/// Translates `lit` through a node-index → literal map, preserving the
/// complement bit. XOR semantics: a complemented reference to a node whose
/// mapped literal is itself complemented resolves to the positive form.
fn resolve_mapped(map: &[AigLit], lit: AigLit) -> AigLit {
    let base = map[lit.node()];
    if lit.is_complemented() {
        base.complement()
    } else {
        base
    }
}

impl fmt::Display for Aig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "aig `{}`: {} inputs, {} ands, {} outputs",
            self.name,
            self.num_inputs(),
            self.num_ands(),
            self.num_outputs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_simplifications() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        assert_eq!(aig.and(a, AigLit::FALSE), AigLit::FALSE);
        assert_eq!(aig.and(AigLit::TRUE, b), b);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, a.complement()), AigLit::FALSE);
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn structural_hashing_deduplicates() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let g1 = aig.and(a, b);
        let g2 = aig.and(b, a);
        assert_eq!(g1, g2);
        assert_eq!(aig.num_ands(), 1);
        let g3 = aig.or(a, b);
        let g4 = aig.or(a, b);
        assert_eq!(g3, g4);
        assert_eq!(aig.num_ands(), 2);
    }

    #[test]
    fn xor_uses_three_ands() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let _x = aig.xor(a, b);
        assert_eq!(aig.num_ands(), 3);
    }

    #[test]
    fn from_netlist_maps_all_gate_kinds() {
        let mut n = Netlist::new("mix");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g_and = n.add_gate(GateKind::And, &[a, b]).unwrap();
        let g_or = n.add_gate(GateKind::Or, &[b, c]).unwrap();
        let g_nand = n.add_gate(GateKind::Nand, &[a, c]).unwrap();
        let g_nor = n.add_gate(GateKind::Nor, &[g_and, g_or]).unwrap();
        let g_xor = n.add_gate(GateKind::Xor, &[g_nand, g_nor]).unwrap();
        let g_xnor = n.add_gate(GateKind::Xnor, &[g_xor, a]).unwrap();
        let g_mux = n.add_gate(GateKind::Mux, &[g_xnor, b, c]).unwrap();
        let g_not = n.add_gate(GateKind::Not, &[g_mux]).unwrap();
        let g_buf = n.add_gate(GateKind::Buf, &[g_not]).unwrap();
        n.mark_output(g_buf, "y");
        let aig = Aig::from_netlist(&n).unwrap();
        assert!(aig.validate().is_ok());
        assert_eq!(aig.num_inputs(), 3);
        assert_eq!(aig.num_outputs(), 1);
        assert!(aig.num_ands() > 0);
    }

    #[test]
    fn levels_and_fanouts() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, b);
        let abc = aig.and(ab, c);
        aig.add_output(abc, "y");
        let (levels, max) = aig.levels();
        assert_eq!(max, 2);
        assert_eq!(levels[ab.node()], 1);
        assert_eq!(levels[abc.node()], 2);
        let fanouts = aig.fanout_counts();
        assert_eq!(fanouts[ab.node()], 1);
        assert_eq!(fanouts[abc.node()], 1);
        assert_eq!(fanouts[a.node()], 1);
        assert_eq!(aig.fanouts()[a.node()], vec![ab.node()]);
    }

    #[test]
    fn to_netlist_expands_inverters_once_per_source() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        // or(a, b) = ¬(¬a·¬b): uses ¬a and ¬b.
        let o = aig.or(a, b);
        // nand(a, b) = ¬(a·b): output inverter on the and node.
        let nand = aig.and(a, b).complement();
        aig.add_output(o, "o");
        aig.add_output(nand, "n");
        let n = aig.to_netlist();
        assert!(n.validate().is_ok());
        let stats = n.stats();
        // Nodes: 2 PIs, 2 ANDs, NOTs: ¬a, ¬b, ¬(¬a·¬b), ¬(a·b) = 4 NOTs.
        assert_eq!(stats.count_of(GateKind::And), 2);
        assert_eq!(stats.count_of(GateKind::Not), 4);
        assert_eq!(stats.count_of(GateKind::Input), 2);
        // Only PI/AND/NOT appear.
        assert_eq!(n.len(), 8);
    }

    #[test]
    fn to_netlist_handles_constant_outputs() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        aig.add_output(AigLit::TRUE, "one");
        aig.add_output(AigLit::FALSE, "zero");
        aig.add_output(a, "a_out");
        let n = aig.to_netlist();
        assert!(n.validate().is_ok());
        assert_eq!(n.num_outputs(), 3);
        assert_eq!(n.stats().count_of(GateKind::Const0), 1);
    }

    #[test]
    fn validate_rejects_forward_reference() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let _ = aig.and(a, b);
        // Corrupt: make the AND node reference a future node.
        aig.nodes[3].fanin0 = AigLit::positive(10);
        assert!(aig.validate().is_err());
    }

    #[test]
    fn stats_report() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let ab = aig.and(a, b);
        let o = aig.or(ab, a);
        aig.add_output(o, "y");
        let stats = aig.stats();
        assert_eq!(stats.num_inputs, 2);
        assert_eq!(stats.num_outputs, 1);
        assert!(stats.num_ands >= 2);
        assert!(stats.num_expanded_nodes >= stats.num_ands + stats.num_inputs);
        assert!(aig.to_string().contains("aig"));
    }

    #[test]
    fn rebuild_strash_restores_dedup() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let g1 = aig.and(a, b);
        aig.strash.clear();
        aig.rebuild_strash();
        let g2 = aig.and(a, b);
        assert_eq!(g1, g2);
    }

    /// A toggle flip-flop: `q' = q XOR en`, output `y = q`.
    fn toggle_aig() -> Aig {
        let mut aig = Aig::new("toggle");
        let en = aig.add_input("en");
        let q = aig.add_latch("q");
        let next = aig.xor(q, en);
        aig.set_latch_next(0, next);
        aig.add_output(q, "y");
        aig
    }

    #[test]
    fn latch_accessors_and_stats() {
        let aig = toggle_aig();
        assert_eq!(aig.num_latches(), 1);
        assert!(!aig.is_combinational());
        assert_eq!(aig.latches()[0].name, "q");
        assert_eq!(aig.latches()[0].init, Some(false));
        assert_eq!(aig.stats().num_latches, 1);
        assert!(aig.validate().is_ok());
    }

    #[test]
    fn validate_rejects_inconsistent_latch_table() {
        let mut aig = toggle_aig();
        aig.latches.clear();
        assert!(aig.validate().is_err());
    }

    #[test]
    fn cut_latches_exposes_state_and_next() {
        let aig = toggle_aig();
        let cut = aig.cut_latches();
        assert!(cut.is_combinational());
        assert_eq!(cut.num_inputs(), 2); // en + pseudo-input q
        assert_eq!(cut.num_outputs(), 2); // y + q_next
        assert!(cut.outputs().iter().any(|(_, n)| n == "q_next"));
        assert!(cut.validate().is_ok());
    }

    #[test]
    fn unroll_replicates_io_per_frame() {
        let aig = toggle_aig();
        let unrolled = aig.unroll(3).expect("3 frames");
        assert!(unrolled.is_combinational());
        assert_eq!(unrolled.num_inputs(), 3); // en@0..en@2
        assert_eq!(unrolled.num_outputs(), 3); // y@0..y@2
        assert!(unrolled.outputs().iter().any(|(_, n)| n == "y@2"));
        // Frame 0 sees the reset value, so y@0 is the constant false.
        let y0 = unrolled
            .outputs()
            .iter()
            .find(|(_, n)| n == "y@0")
            .expect("y@0 present");
        assert_eq!(y0.0, AigLit::FALSE);
        assert!(unrolled.validate().is_ok());
    }

    #[test]
    fn unroll_uninitialised_latch_gets_init_input() {
        let mut aig = toggle_aig();
        aig.set_latch_init(0, None);
        let unrolled = aig.unroll(2).expect("2 frames");
        assert_eq!(unrolled.num_inputs(), 3); // q@init + en@0 + en@1
        assert!(unrolled.validate().is_ok());
    }

    #[test]
    fn unroll_zero_frames_errors() {
        assert!(toggle_aig().unroll(0).is_err());
    }

    #[test]
    fn to_netlist_treats_latch_as_pseudo_input() {
        let aig = toggle_aig();
        let n = aig.to_netlist();
        assert!(n.validate().is_ok());
        assert_eq!(n.num_inputs(), 2); // en + q
        assert_eq!(n.num_outputs(), 1); // y only: next-state cone not exported
    }
}
