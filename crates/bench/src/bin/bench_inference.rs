//! Serving-throughput benchmark: `InferenceSession::predict_batch` versus
//! per-circuit sequential `predict` over a fleet of generated circuits.
//!
//! Writes a `BENCH_inference.json` baseline into the current directory so
//! future PRs can track the serving hot path. Accepts `--full` /
//! `DEEPGATE_FULL=1` for a larger sweep like the table binaries.
//!
//! ```bash
//! cargo run --release --bin bench_inference
//! ```

use deepgate::aig::aiger::{random_aig, write_aig};
use deepgate::prelude::*;
use deepgate_bench::Scale;
use serde::Serialize;
use std::time::Instant;

/// The JSON baseline written for future PRs to compare against.
#[derive(Debug, Serialize)]
struct InferenceBaseline {
    scale: String,
    num_circuits: usize,
    total_nodes: usize,
    rounds: usize,
    sequential_ms: f64,
    batch_ms: f64,
    batch_prepared_ms: f64,
    speedup_batch: f64,
    speedup_prepared: f64,
    /// Circuits in the AIGER-shaped fleet (latch-bearing binary `.aig`
    /// payloads ingested through the AIGER path under the cut policy).
    aiger_num_circuits: usize,
    aiger_total_nodes: usize,
    aiger_sequential_ms: f64,
    aiger_batch_ms: f64,
    speedup_aiger_batch: f64,
    worker_threads: usize,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn main() -> Result<(), DeepGateError> {
    let scale = Scale::from_env_and_args();
    let (num_circuits, rounds) = match scale {
        Scale::Quick => (32usize, 8usize),
        Scale::Full => (128, 16),
    };

    // A trained-shape engine (weights are random; inference cost does not
    // depend on the weight values).
    let engine = Engine::builder()
        .model(DeepGateConfig {
            hidden_dim: 32,
            num_iterations: 6,
            ..DeepGateConfig::default()
        })
        .num_patterns(1_024)
        .build()?;

    // A mixed fleet of circuits, as a serving deployment would see.
    let suites = [
        SuiteKind::Itc99,
        SuiteKind::Iwls,
        SuiteKind::Epfl,
        SuiteKind::Opencores,
    ];
    let per_suite = num_circuits.div_ceil(suites.len());
    let mut circuits = Vec::new();
    for (i, &suite) in suites.iter().enumerate() {
        let source = SuiteSource::new(suite, per_suite)
            .seed(90 + i as u64)
            .size_scale(0.15);
        circuits.extend(engine.prepare(&source)?);
    }
    circuits.truncate(num_circuits);
    let total_nodes: usize = circuits.iter().map(|c| c.num_nodes).sum();
    eprintln!(
        "[bench_inference] {} circuits, {} nodes total, {} rounds",
        circuits.len(),
        total_nodes,
        rounds
    );

    // An AIGER-shaped fleet: latch-bearing random AIGs serialised to binary
    // `.aig` bytes and ingested through the AIGER path (cut policy), the way
    // HWMCC-style clients deliver circuits to the server.
    let aiger_count = (num_circuits / 4).max(4);
    let mut aiger_circuits = Vec::new();
    for i in 0..aiger_count {
        let aig = random_aig(1_000 + i as u64, 8, 6, 160);
        let bytes = write_aig(&aig).map_err(deepgate::aig::AigError::from)?;
        let source = AigerBytes::new(format!("aiger_{i}"), bytes).latch_policy(LatchPolicy::Cut);
        aiger_circuits.extend(engine.prepare(&source)?);
    }
    let aiger_total_nodes: usize = aiger_circuits.iter().map(|c| c.num_nodes).sum();
    eprintln!(
        "[bench_inference] {} AIGER circuits, {} nodes total",
        aiger_circuits.len(),
        aiger_total_nodes
    );

    let session = engine.into_session();

    // Warm-up every path once before timing.
    for circuit in &circuits {
        let _ = session.predict(circuit)?;
    }
    let _ = session.predict_batch(&circuits)?;
    let prepared = session.prepare_batch(&circuits)?;
    let mut out = Vec::new();
    session.predict_batch_into(&prepared, &mut out)?;
    for circuit in &aiger_circuits {
        let _ = session.predict(circuit)?;
    }
    let _ = session.predict_batch(&aiger_circuits)?;

    // The three paths are interleaved round by round so CPU-frequency and
    // cache drift hit all of them equally; per-path medians over the rounds
    // keep outliers from skewing the baseline.
    let mut sequential_samples = Vec::with_capacity(rounds);
    let mut batch_samples = Vec::with_capacity(rounds);
    let mut prepared_samples = Vec::with_capacity(rounds);
    let mut aiger_sequential_samples = Vec::with_capacity(rounds);
    let mut aiger_batch_samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        // Sequential: one predict call per circuit.
        let start = Instant::now();
        for circuit in &circuits {
            let _ = session.predict(circuit)?;
        }
        sequential_samples.push(start.elapsed().as_secs_f64() * 1e3);

        // Batched: fused unions, rayon-parallel chunks, built per call.
        let start = Instant::now();
        let _ = session.predict_batch(&circuits)?;
        batch_samples.push(start.elapsed().as_secs_f64() * 1e3);

        // Batched + prepared: unions, plans and output buffers all reused
        // across calls — the steady-state serving loop.
        let start = Instant::now();
        session.predict_batch_into(&prepared, &mut out)?;
        prepared_samples.push(start.elapsed().as_secs_f64() * 1e3);

        // The AIGER fleet, sequential and batched.
        let start = Instant::now();
        for circuit in &aiger_circuits {
            let _ = session.predict(circuit)?;
        }
        aiger_sequential_samples.push(start.elapsed().as_secs_f64() * 1e3);

        let start = Instant::now();
        let _ = session.predict_batch(&aiger_circuits)?;
        aiger_batch_samples.push(start.elapsed().as_secs_f64() * 1e3);
    }
    let sequential_ms = median(&mut sequential_samples);
    let batch_ms = median(&mut batch_samples);
    let batch_prepared_ms = median(&mut prepared_samples);
    let aiger_sequential_ms = median(&mut aiger_sequential_samples);
    let aiger_batch_ms = median(&mut aiger_batch_samples);

    let baseline = InferenceBaseline {
        scale: scale.label().to_string(),
        num_circuits: circuits.len(),
        total_nodes,
        rounds,
        sequential_ms,
        batch_ms,
        batch_prepared_ms,
        speedup_batch: sequential_ms / batch_ms,
        speedup_prepared: sequential_ms / batch_prepared_ms,
        aiger_num_circuits: aiger_circuits.len(),
        aiger_total_nodes,
        aiger_sequential_ms,
        aiger_batch_ms,
        speedup_aiger_batch: aiger_sequential_ms / aiger_batch_ms,
        worker_threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    };
    println!(
        "sequential predict : {sequential_ms:>9.1} ms/round\n\
         predict_batch      : {batch_ms:>9.1} ms/round ({:.2}x)\n\
         + prepared buffers : {batch_prepared_ms:>9.1} ms/round ({:.2}x)\n\
         aiger sequential   : {aiger_sequential_ms:>9.1} ms/round\n\
         aiger batch        : {aiger_batch_ms:>9.1} ms/round ({:.2}x)",
        baseline.speedup_batch, baseline.speedup_prepared, baseline.speedup_aiger_batch
    );

    let json = serde_json::to_string_pretty(&baseline)
        .map_err(|e| DeepGateError::Config(e.to_string()))?;
    let path = "BENCH_inference.json";
    std::fs::write(path, json).map_err(|e| DeepGateError::Io {
        path: path.to_string(),
        message: e.to_string(),
    })?;
    eprintln!("[bench_inference] baseline written to {path}");
    Ok(())
}
