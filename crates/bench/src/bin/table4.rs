//! Reproduces Table IV: the effect of the AIG circuit transformation.
//! DeepGate is trained (i) on the original gate types, (ii) on the AIG form
//! of the same circuits, and (iii) evaluated with a model pre-trained on the
//! merged AIG dataset of all suites.

use deepgate_bench::{
    build_dataset, build_dataset_for_suites, fmt_error, train_and_evaluate, ExperimentSettings,
    Report, Scale,
};
use deepgate_core::average_prediction_error;
use deepgate_dataset::SuiteKind;
use deepgate_gnn::{AggregatorKind, DagRecConfig, DagRecGnn};
use deepgate_nn::ParamStore;

fn main() {
    let scale = Scale::from_env_and_args();
    let settings = ExperimentSettings::for_scale(scale);

    // The pre-trained model: DeepGate trained on the merged AIG dataset.
    let merged = build_dataset(&settings, true);
    let mut pretrained_store = ParamStore::new();
    let pretrained = DagRecGnn::new(&mut pretrained_store, deepgate_config(&settings, 3));
    let _ = train_and_evaluate(&pretrained, &mut pretrained_store, &merged, &settings);

    let mut report = Report::new("table4", "Table IV (circuit transformation)", scale);
    for suite in [SuiteKind::Epfl, SuiteKind::Iwls] {
        // Without transformation: original gate types, 12-d one-hot features.
        let raw = build_dataset_for_suites(&settings, false, vec![suite]);
        let mut raw_store = ParamStore::new();
        let raw_model = DagRecGnn::new(&mut raw_store, deepgate_config(&settings, 12));
        let raw_error = train_and_evaluate(&raw_model, &mut raw_store, &raw, &settings);

        // With transformation: AIG form of the same designs.
        let aig = build_dataset_for_suites(&settings, true, vec![suite]);
        let mut aig_store = ParamStore::new();
        let aig_model = DagRecGnn::new(&mut aig_store, deepgate_config(&settings, 3));
        let aig_error = train_and_evaluate(&aig_model, &mut aig_store, &aig, &settings);

        // Pre-trained on the merged dataset, evaluated on this suite's test
        // split without further fine-tuning.
        let pretrained_error = average_prediction_error(&pretrained, &pretrained_store, &aig.test)
            .expect("experiment circuits are labelled");

        report.push_row(
            suite.label(),
            vec![
                ("w/o Tran.".to_string(), fmt_error(raw_error)),
                ("w/ Tran.".to_string(), fmt_error(aig_error)),
                ("Pre-trained".to_string(), fmt_error(pretrained_error)),
            ],
        );
    }
    report.print();
    report.save();
}

fn deepgate_config(settings: &ExperimentSettings, feature_dim: usize) -> DagRecConfig {
    DagRecConfig {
        feature_dim,
        hidden_dim: settings.hidden_dim,
        num_iterations: settings.num_iterations,
        aggregator: AggregatorKind::Attention,
        reverse_layer: true,
        fix_gate_input: true,
        use_skip_connections: true,
        skip_encoding_frequencies: 8,
        regressor_hidden: settings.hidden_dim / 2,
        per_type_regressor: false,
        seed: 11,
    }
}
