//! The TCP front end: an event-driven, nonblocking serving core speaking
//! newline-delimited JSON over persistent connections.
//!
//! One event-loop thread owns every connection: a [`Poller`] (epoll on
//! Linux, `poll(2)` elsewhere) reports socket readiness, a slab
//! [`ConnTable`] holds per-connection read/write buffers, and a
//! [`TimerWheel`] drives the hygiene deadlines (idle / line / write) as
//! state-machine transitions instead of per-thread blocking reads. Predict
//! requests are submitted to the scheduler without blocking; workers push
//! results into a [`CompletionQueue`] and wake the loop through a
//! [`Waker`], so the OS thread count stays flat — one loop plus the
//! configured workers — at any connection fleet size.

use crate::conn::{Conn, ConnTable, Flush, LineOverflow};
use crate::fault::panic_message;
use crate::poll::{
    create_poller, waker, Event, Interest, Poller, TimerEntry, TimerKind, TimerWheel, WakeReceiver,
    Waker,
};
use crate::scheduler::CompletionQueue;
use crate::{
    b64, keyed_with_mode, request_key, snapshot_to_value, text_key, CacheStats, CircuitCache,
    Scheduler, SchedulerStats, ServeConfig, ServeError, ServeMetrics,
};
use deepgate::telemetry::{RequestTrace, SlowLog, Stage};
use deepgate::{AigerBytes, BenchText, Engine, LatchPolicy, PreparedCircuit};
use serde::{Serialize, Value};
use std::collections::HashMap;
use std::io::{ErrorKind, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poller token of the listening socket.
const LISTENER: usize = 0;
/// Poller token of the wakeup channel's read half.
const WAKER_TOKEN: usize = 1;
/// Connection slots map to poller tokens at this offset.
const CONN_BASE: usize = 2;
/// A connection whose write buffer crosses this stops having its requests
/// read (backpressure) until the client drains responses below half of it.
const WRITE_HIGH_WATERMARK: usize = 256 * 1024;
const WRITE_LOW_WATERMARK: usize = WRITE_HIGH_WATERMARK / 2;
/// Timer-wheel granularity and size: 256 slots × 10 ms = one rotation per
/// 2.56 s; multi-rotation deadlines are handled by exact-deadline recheck.
const TIMER_TICK: Duration = Duration::from_millis(10);
const TIMER_SLOTS: usize = 256;
/// The longest the loop sleeps with nothing scheduled.
const IDLE_POLL_CAP: Duration = Duration::from_millis(500);
/// Poll cadence while draining, so shutdown completes promptly.
const DRAIN_POLL: Duration = Duration::from_millis(20);
/// How long the drain waits for clients to accept already-buffered
/// responses before cutting the remaining connections.
const DRAIN_GRACE: Duration = Duration::from_secs(3);

/// A point-in-time snapshot of every serving counter, serialised verbatim
/// into the `stats` wire response.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ServerStats {
    /// Scheduler counters (queueing, batching, completion).
    pub scheduler: SchedulerStats,
    /// Structural-cache counters.
    pub cache: CacheStats,
    /// Connections accepted since start.
    pub connections: u64,
    /// Connections cut by the hygiene layer (idle past `idle_timeout`, or
    /// trickling a request line past `line_timeout`).
    pub connections_reaped: u64,
    /// Connections refused at accept because `max_connections` were open.
    pub connections_rejected: u64,
    /// Response writes dropped on a client that stopped reading within
    /// `write_timeout`.
    pub write_timeouts: u64,
    /// Request-handler panics converted into error responses.
    pub request_panics_recovered: u64,
}

struct Inner {
    engine: Engine,
    scheduler: Scheduler,
    cache: CircuitCache,
    metrics: ServeMetrics,
    slow_log: Option<SlowLog>,
    /// The resilience knobs the connection path consults per request:
    /// deadlines, hygiene timeouts, size/fleet bounds and the fault plan.
    config: ServeConfig,
    addr: SocketAddr,
    /// Set once shutdown is requested; new predict requests are refused.
    draining: AtomicBool,
    /// Signalled when a shutdown request arrives (wire verb or API call).
    shutdown_requested: (Mutex<bool>, Condvar),
    /// Wakes the event loop out of its poller wait from any thread.
    waker: Waker,
    /// Set by [`Server::drain`] once the scheduler has flushed: from then
    /// on no new completions can appear and the loop may finish draining.
    scheduler_drained: AtomicBool,
}

/// The serving front end: owns the engine, the scheduler, the cache and the
/// event-loop thread.
///
/// ```no_run
/// use deepgate::Engine;
/// use deepgate_serve::{ServeConfig, Server};
///
/// let engine = Engine::builder().build().expect("valid configuration");
/// let server = Server::start(engine, ServeConfig::default()).expect("binds");
/// println!("serving on {}", server.local_addr());
/// server.wait(); // blocks until a shutdown verb arrives, then drains
/// ```
pub struct Server {
    inner: Arc<Inner>,
    event_loop: Mutex<Option<JoinHandle<()>>>,
    drained: AtomicBool,
    backend: &'static str,
}

impl Server {
    /// Binds `config.addr` and starts the event loop, workers and cache.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for inconsistent settings (including
    /// `workers == 0`, which only [`Scheduler::new`] accepts, and forcing a
    /// poller backend the platform lacks) and [`ServeError::Io`] if the
    /// address cannot be bound or the poller cannot be created.
    pub fn start(mut engine: Engine, config: ServeConfig) -> Result<Server, ServeError> {
        if config.workers == 0 {
            return Err(ServeError::Config(
                "a server needs at least one worker".into(),
            ));
        }
        // One registry for the whole serving stack: the engine, the GNN
        // kernel, the scheduler's workers, the cache and the request path
        // all record into `metrics`, so one snapshot reads them all.
        let metrics = ServeMetrics::new();
        engine.set_metrics(Arc::clone(&metrics.engine));
        let (wake_tx, wake_rx) =
            waker().map_err(|e| ServeError::Io(format!("wakeup channel: {e}")))?;
        let completions = Arc::new(CompletionQueue::new(wake_tx.clone()));
        let scheduler = Scheduler::with_metrics(
            engine.session().with_quantization(config.quantize),
            &config,
            metrics.scheduler.clone(),
        )?;
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ServeError::Io(format!("binding {}: {e}", config.addr)))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Io(format!("nonblocking listener: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(format!("local_addr: {e}")))?;
        let poller = create_poller(config.poller).map_err(|e| {
            if e.kind() == ErrorKind::Unsupported {
                ServeError::Config(e.to_string())
            } else {
                ServeError::Io(format!("creating poller: {e}"))
            }
        })?;
        let inner = Arc::new(Inner {
            engine,
            scheduler,
            cache: CircuitCache::with_metrics(config.cache_capacity, metrics.cache.clone()),
            slow_log: config.slow_request_threshold.map(SlowLog::new),
            metrics,
            config,
            addr,
            draining: AtomicBool::new(false),
            shutdown_requested: (Mutex::new(false), Condvar::new()),
            waker: wake_tx,
            scheduler_drained: AtomicBool::new(false),
        });
        let backend = poller.backend();
        let event_loop = EventLoop::new(Arc::clone(&inner), listener, poller, wake_rx, completions)
            .map_err(|e| ServeError::Io(format!("registering event loop fds: {e}")))?;
        let handle = std::thread::Builder::new()
            .name("deepgate-serve-loop".into())
            .spawn(move || event_loop.run())
            .map_err(|e| ServeError::Io(format!("spawning event loop: {e}")))?;
        Ok(Server {
            inner,
            event_loop: Mutex::new(Some(handle)),
            drained: AtomicBool::new(false),
            backend,
        })
    }

    /// The readiness backend the event loop runs on (`"epoll"` or
    /// `"poll"`), for startup logs.
    pub fn poller_backend(&self) -> &'static str {
        self.backend
    }

    /// The bound address (resolves the ephemeral port of `addr: …:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Current counters, derived from one telemetry snapshot.
    pub fn stats(&self) -> ServerStats {
        self.inner.stats()
    }

    /// The server's telemetry: every series of the serving stack, readable
    /// through one consistent [`ServeMetrics::snapshot`].
    pub fn metrics(&self) -> &ServeMetrics {
        &self.inner.metrics
    }

    /// Marks the server as draining without blocking: the wire `shutdown`
    /// verb calls this, and [`Server::wait`] picks it up.
    pub fn request_shutdown(&self) {
        self.inner.request_shutdown();
    }

    /// Blocks until shutdown is requested (by [`Server::request_shutdown`]
    /// or the wire verb), then drains and joins every thread.
    pub fn wait(&self) {
        let (flag, signal) = &self.inner.shutdown_requested;
        let mut requested = flag.lock().expect("shutdown flag lock");
        while !*requested {
            requested = signal.wait(requested).expect("shutdown flag lock");
        }
        drop(requested);
        self.drain();
    }

    /// Graceful shutdown: requests the drain and performs it. In-flight
    /// requests complete, queued requests get [`ServeError::ShuttingDown`],
    /// and the event loop and every worker join. Idempotent.
    pub fn shutdown(&self) {
        self.inner.request_shutdown();
        self.drain();
    }

    fn drain(&self) {
        if self.drained.swap(true, Ordering::SeqCst) {
            return;
        }
        // 1. Stop accepting: the flag is already set (request_shutdown) and
        //    the waker pulls the loop out of its wait; its drain step drops
        //    the listener on the next iteration.
        self.inner.waker.wake();
        // 2. Drain the scheduler: executing batches complete and push their
        //    completions, queued requests get a clean ShuttingDown error on
        //    the same path. After this returns no new completion can appear.
        self.inner.scheduler.shutdown();
        self.inner.scheduler_drained.store(true, Ordering::SeqCst);
        self.inner.waker.wake();
        // 3. The loop flushes buffered responses (bounded by DRAIN_GRACE),
        //    retires every connection and exits; join it.
        if let Some(handle) = self.event_loop.lock().expect("event loop lock").take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Inner {
    /// Builds the `stats` response from ONE registry snapshot, so the
    /// scheduler and cache sections describe the same instant instead of
    /// being polled from each subsystem separately.
    fn stats(&self) -> ServerStats {
        let snapshot = self.metrics.snapshot();
        ServerStats {
            scheduler: SchedulerStats::from_snapshot(&snapshot),
            cache: CacheStats::from_snapshot(&snapshot),
            connections: snapshot.counter("connections_accepted_total"),
            connections_reaped: snapshot.counter("connections_reaped_total"),
            connections_rejected: snapshot.counter("connections_rejected_total"),
            write_timeouts: snapshot.counter("write_timeouts_total"),
            request_panics_recovered: snapshot.counter("request_panics_recovered_total"),
        }
    }

    /// Consults the fault plan at a stage hook: panic and delay faults
    /// apply in place (the panic unwinds into the caller's recovery layer),
    /// I/O faults surface as [`ServeError::Internal`].
    fn fault(&self, stage: Stage) -> Result<(), ServeError> {
        if let Some(faults) = &self.config.faults {
            faults
                .fire(stage)
                .map_err(|e| ServeError::Internal(e.to_string()))?;
        }
        Ok(())
    }

    fn request_shutdown(&self) {
        self.draining.store(true, Ordering::SeqCst);
        let (flag, signal) = &self.shutdown_requested;
        *flag.lock().expect("shutdown flag lock") = true;
        signal.notify_all();
        // Pull the event loop out of its wait so it stops accepting now.
        self.waker.wake();
    }

    /// Resolves a request payload to a prepared circuit through the
    /// two-level structural cache; misses run the full parse → transform →
    /// encode → plan pipeline, attributed to the trace's `Encode` and
    /// `Plan` stages (cache hits skip both, so those stages stay untouched).
    fn resolve(
        &self,
        payload: &RequestPayload,
        trace: &mut RequestTrace,
    ) -> Result<Arc<PreparedCircuit>, ServeError> {
        let key = keyed_with_mode(payload.cache_key(), self.config.quantize.label());
        if let Some(prepared) = self.cache.lookup_text(key) {
            return Ok(prepared);
        }
        self.fault(Stage::Encode)?;
        let circuits = trace.time(Stage::Encode, || match payload {
            RequestPayload::Bench { name, text } => self
                .engine
                .prepare_unlabelled(&BenchText::new(name.as_str(), text.as_str())),
            RequestPayload::Aiger {
                name,
                bytes,
                policy,
            } => self.engine.prepare_unlabelled(
                &AigerBytes::new(name.as_str(), bytes.clone()).latch_policy(*policy),
            ),
        });
        let circuit = circuits
            .map_err(|e| ServeError::BadRequest(e.to_string()))?
            .pop()
            .ok_or_else(|| ServeError::BadRequest("request contained no circuit".into()))?;
        if let Some(prepared) = self.cache.lookup_fingerprint(key, circuit.fingerprint()) {
            return Ok(prepared);
        }
        self.fault(Stage::Plan)?;
        let prepared = trace.time(Stage::Plan, || {
            Arc::new(self.scheduler.session().prepare(circuit))
        });
        self.cache.insert(key, Arc::clone(&prepared));
        Ok(prepared)
    }
}

/// One circuit payload extracted from a predict request: BENCH text, or
/// AIGER bytes (ASCII or binary, possibly base64-transported) plus the
/// latch ingestion policy the client asked for.
enum RequestPayload {
    Bench {
        name: String,
        text: String,
    },
    Aiger {
        name: String,
        bytes: Vec<u8>,
        policy: LatchPolicy,
    },
}

impl RequestPayload {
    /// First-level cache key. AIGER keys fold in the latch policy — the
    /// same bytes under `cut` and `unroll:k` are different circuits.
    fn cache_key(&self) -> u128 {
        match self {
            RequestPayload::Bench { text, .. } => text_key(text),
            RequestPayload::Aiger { bytes, policy, .. } => {
                request_key("aiger", &policy.to_string(), bytes)
            }
        }
    }
}

/// Parses the `deadline_ms` field of a predict request and folds in the
/// server-side cap: the *tighter* of the two budgets wins, and with neither
/// present the request has no deadline. `deadline_ms: 0` is legal and
/// deterministically sheds (the budget is already spent on arrival).
fn parse_deadline(
    value: Option<&Value>,
    cap: Option<Duration>,
) -> Result<Option<Duration>, String> {
    let requested = match value {
        None => None,
        Some(Value::UInt(ms)) => Some(Duration::from_millis(*ms)),
        Some(Value::Int(ms)) if *ms >= 0 => Some(Duration::from_millis(*ms as u64)),
        Some(_) => {
            return Err("`deadline_ms` must be a non-negative integer of milliseconds".into())
        }
    };
    Ok(match (requested, cap) {
        (Some(requested), Some(cap)) => Some(requested.min(cap)),
        (requested, cap) => requested.or(cap),
    })
}

/// Parses the `latch` field of a predict request: absent → `cut`, otherwise
/// the string forms `"cut"` and `"unroll:<frames>"`.
fn parse_latch(value: Option<&Value>) -> Result<LatchPolicy, String> {
    let Some(value) = value else {
        return Ok(LatchPolicy::Cut);
    };
    let Value::Str(text) = value else {
        return Err("`latch` must be a string: \"cut\" or \"unroll:<frames>\"".into());
    };
    if text == "cut" {
        return Ok(LatchPolicy::Cut);
    }
    if let Some(frames) = text.strip_prefix("unroll:") {
        let frames: usize = frames
            .parse()
            .map_err(|_| format!("bad frame count in `latch: \"{text}\"`"))?;
        if frames == 0 {
            return Err("`latch: \"unroll:0\"`: need at least one frame".into());
        }
        return Ok(LatchPolicy::Unroll(frames));
    }
    Err(format!(
        "unknown latch policy `{text}` (expected \"cut\" or \"unroll:<frames>\")"
    ))
}

/// Extracts the circuit payload from a predict request's fields: exactly one
/// of `bench` (BENCH text), `aiger` (AIGER-ASCII text) or `aiger_b64`
/// (base64 of an ASCII or binary AIGER file).
fn parse_payload(
    fields: &std::collections::BTreeMap<String, Value>,
    name: &str,
) -> Result<RequestPayload, String> {
    let sources = [
        ("bench", fields.get("bench")),
        ("aiger", fields.get("aiger")),
        ("aiger_b64", fields.get("aiger_b64")),
    ];
    let mut present = sources.iter().filter(|(_, value)| value.is_some());
    let (Some((field, Some(value))), None) = (present.next(), present.next()) else {
        return Err("predict request needs exactly one of `bench`, `aiger` or `aiger_b64`".into());
    };
    let Value::Str(text) = value else {
        return Err(format!("`{field}` must be a string"));
    };
    if *field == "bench" {
        if fields.contains_key("latch") {
            return Err("`latch` only applies to AIGER payloads".into());
        }
        return Ok(RequestPayload::Bench {
            name: name.to_string(),
            text: text.clone(),
        });
    }
    let policy = parse_latch(fields.get("latch"))?;
    let bytes = if *field == "aiger" {
        text.as_bytes().to_vec()
    } else {
        b64::decode(text).map_err(|e| format!("`aiger_b64`: {e}"))?
    };
    Ok(RequestPayload::Aiger {
        name: name.to_string(),
        bytes,
        policy,
    })
}

/// A predict request submitted to the scheduler and not yet answered: the
/// routing context its completion needs to become a wire response.
struct PendingPredict {
    slot: usize,
    generation: u64,
    id: Option<Value>,
    name: String,
    trace: RequestTrace,
    /// When the job entered the queue; the completion's `Infer` span is
    /// measured from here (queueing + batching + model execution, exactly
    /// what the blocking front end attributed to the stage).
    infer_started: Instant,
}

/// The event loop: the single thread owning the listener, every connection
/// and the timer wheel.
struct EventLoop {
    inner: Arc<Inner>,
    poller: Box<dyn Poller>,
    /// Dropped when the drain begins, so new connections stop arriving.
    listener: Option<TcpListener>,
    wake_rx: WakeReceiver,
    table: ConnTable,
    timers: TimerWheel,
    /// Outstanding async predictions keyed by completion token.
    pending: HashMap<u64, PendingPredict>,
    completions: Arc<CompletionQueue>,
    next_token: u64,
    /// Connections unpaused this iteration: their buffered requests resume
    /// processing after the event batch (not recursively inside it).
    resume: Vec<usize>,
    /// Drain grace deadline, armed when every response has been computed.
    flush_deadline: Option<Instant>,
}

/// What one dispatched request line asks the event loop to do.
enum LineAction {
    /// Queue a response (and optionally begin the drain).
    Respond {
        response: Value,
        /// `Some(request name)` when the line was a predict request — only
        /// those fold into the stage histograms and the slow log.
        predict: Option<String>,
        /// The connection requested a server shutdown.
        shutdown: bool,
    },
    /// Submit a prepared circuit to the scheduler without blocking.
    Submit {
        prepared: Arc<PreparedCircuit>,
        deadline: Option<Instant>,
        id: Option<Value>,
        name: String,
    },
}

impl LineAction {
    fn reply(response: Value) -> Self {
        LineAction::Respond {
            response,
            predict: None,
            shutdown: false,
        }
    }
}

/// One step of slicing buffered bytes into request lines, extracted from
/// the connection borrow so the loop can act on the table afterwards.
enum Step {
    /// The line limit was breached; answer once and cut the connection.
    Overflow,
    /// Only a partial line (or nothing) is buffered; wait for more bytes,
    /// arming the slow-loris timer if a partial line just started.
    Wait { arm_line_timer: Option<Instant> },
    /// The line is not valid UTF-8; the stream cannot be resynced.
    BadUtf8,
    /// An empty line: skipped without a response, like the blocking reader.
    Skip,
    /// A complete line, dispatched to an action.
    Act(LineAction, RequestTrace),
}

impl EventLoop {
    fn new(
        inner: Arc<Inner>,
        listener: TcpListener,
        mut poller: Box<dyn Poller>,
        wake_rx: WakeReceiver,
        completions: Arc<CompletionQueue>,
    ) -> std::io::Result<EventLoop> {
        poller.register(listener.as_raw_fd(), LISTENER, Interest::READABLE)?;
        poller.register(wake_rx.fd(), WAKER_TOKEN, Interest::READABLE)?;
        Ok(EventLoop {
            inner,
            poller,
            listener: Some(listener),
            wake_rx,
            table: ConnTable::new(),
            timers: TimerWheel::new(TIMER_TICK, TIMER_SLOTS, Instant::now()),
            pending: HashMap::new(),
            completions,
            next_token: 0,
            resume: Vec::new(),
            flush_deadline: None,
        })
    }

    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let timeout = self.poll_timeout();
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                // A failing poller must not busy-spin; EINTR is already
                // mapped to a clean zero-event wakeup below this.
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            self.inner.metrics.eventloop_wakeups.inc();
            for &ev in &events {
                match ev.token {
                    LISTENER => self.accept_ready(),
                    WAKER_TOKEN => {} // drained below, before the completions
                    token => {
                        let slot = token - CONN_BASE;
                        if ev.writable {
                            self.flush_conn(slot);
                        }
                        // A hangup without readable interest still routes
                        // through the read path: the read observes the
                        // EOF/error and retires the connection.
                        if ev.readable || ev.hangup {
                            self.read_conn(slot);
                        }
                    }
                }
            }
            self.drain_completions();
            // Connections unpaused by response flushes resume their
            // buffered requests now, outside any borrow of the flusher.
            let resume = std::mem::take(&mut self.resume);
            for slot in resume {
                self.read_conn(slot);
            }
            self.run_timers();
            if self.inner.draining.load(Ordering::SeqCst) && self.drain_step() {
                return;
            }
        }
    }

    /// How long the next poller wait may sleep: until the earliest timer
    /// deadline, capped so state flags (draining) are noticed promptly.
    fn poll_timeout(&self) -> Duration {
        let cap = if self.inner.draining.load(Ordering::SeqCst) {
            DRAIN_POLL
        } else {
            IDLE_POLL_CAP
        };
        match self.timers.next_timeout(Instant::now()) {
            Some(until) => until.min(cap),
            None => cap,
        }
    }

    /// Accepts every connection the listener has queued (level-triggered:
    /// anything left re-reports on the next wait).
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => self.admit(stream),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        if self.inner.draining.load(Ordering::SeqCst) {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        self.inner.metrics.connections_accepted.inc();
        // Fleet bound: with every slot occupied, refuse the connection with
        // one best-effort error line instead of letting per-connection
        // buffers grow without limit. The accepted socket is still in
        // blocking mode here, so the bounded write timeout applies.
        let cap = self.inner.config.max_connections;
        if cap > 0 && self.table.len() >= cap {
            self.inner.metrics.connections_rejected.inc();
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
            let _ = stream
                .write_all(b"{\"error\":\"server at connection capacity, try again later\"}\n");
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        let now = Instant::now();
        let max_line = self.inner.config.max_request_bytes;
        let (slot, generation) = self
            .table
            .insert(move |generation| Conn::new(stream, generation, max_line, now));
        let fd = self
            .table
            .get_mut(slot)
            .expect("just inserted")
            .stream
            .as_raw_fd();
        if self
            .poller
            .register(fd, slot + CONN_BASE, Interest::READABLE)
            .is_err()
        {
            if let Some(conn) = self.table.remove(slot) {
                let _ = conn.stream.shutdown(Shutdown::Both);
            }
            return;
        }
        self.inner.metrics.connections_open.inc();
        if let Some(idle) = self.inner.config.idle_timeout {
            self.timers.insert(TimerEntry {
                deadline: now + idle,
                token: slot,
                generation,
                kind: TimerKind::Idle,
            });
        }
    }

    /// Reads everything the socket has (level-triggered readiness makes
    /// partial reads safe), slicing out and dispatching complete lines.
    fn read_conn(&mut self, slot: usize) {
        loop {
            if self.process_buffered_lines(slot) {
                return; // connection closed
            }
            let Some(conn) = self.table.get_mut(slot) else {
                return;
            };
            if conn.paused || conn.close_after_drain {
                break;
            }
            match conn.framer.read_from(&mut conn.stream) {
                Ok(0) => {
                    // EOF: dispatch whatever is already buffered, then
                    // retire — immediately if idle, after the drain if
                    // responses are still owed or in flight.
                    if self.process_buffered_lines(slot) {
                        return;
                    }
                    let Some(conn) = self.table.get_mut(slot) else {
                        return;
                    };
                    if conn.inflight == 0 && conn.out.is_empty() {
                        self.close_conn(slot);
                        return;
                    }
                    conn.close_after_drain = true;
                    break;
                }
                Ok(_) => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(slot);
                    return;
                }
            }
        }
        self.sync_interest(slot);
    }

    /// Slices and dispatches every complete request line buffered on
    /// `slot`. Returns `true` when the connection was closed.
    fn process_buffered_lines(&mut self, slot: usize) -> bool {
        let inner = Arc::clone(&self.inner);
        loop {
            let step = {
                let Some(conn) = self.table.get_mut(slot) else {
                    return true;
                };
                if conn.paused || conn.close_after_drain {
                    return false;
                }
                let now = Instant::now();
                match conn.framer.next_line() {
                    Err(LineOverflow) => Step::Overflow,
                    Ok(None) => {
                        conn.framer.compact();
                        if conn.framer.pending() == 0 {
                            conn.line_started = None;
                            Step::Wait {
                                arm_line_timer: None,
                            }
                        } else if conn.line_started.is_none() {
                            // The slow-loris clock starts when the first
                            // partial bytes are observed.
                            conn.line_started = Some(now);
                            Step::Wait {
                                arm_line_timer: Some(now),
                            }
                        } else {
                            Step::Wait {
                                arm_line_timer: None,
                            }
                        }
                    }
                    Ok(Some(line)) => {
                        conn.last_activity = now;
                        conn.line_started = None;
                        match std::str::from_utf8(line) {
                            Err(_) => Step::BadUtf8,
                            Ok(text) if text.trim().is_empty() => Step::Skip,
                            Ok(text) => {
                                let mut trace = RequestTrace::start();
                                // Request handling is guarded: a panic in
                                // the parse/encode/plan path (a bug, or an
                                // injected fault) becomes one error
                                // response on a live connection.
                                let action =
                                    match std::panic::catch_unwind(AssertUnwindSafe(|| {
                                        handle_line(&inner, text, &mut trace)
                                    })) {
                                        Ok(action) => action,
                                        Err(payload) => {
                                            inner.metrics.request_panics_recovered.inc();
                                            LineAction::reply(error_response(
                                                None,
                                                &format!(
                                                    "internal error: request handling panicked: {}",
                                                    panic_message(payload.as_ref())
                                                ),
                                            ))
                                        }
                                    };
                                Step::Act(action, trace)
                            }
                        }
                    }
                }
            };
            match step {
                Step::Overflow => {
                    inner.metrics.requests_unknown.inc();
                    inner.metrics.request_errors.inc();
                    let limit = inner.config.max_request_bytes;
                    if let Some(conn) = self.table.get_mut(slot) {
                        conn.out.push(
                            format!("{{\"error\":\"request exceeds {limit} bytes\"}}\n").as_bytes(),
                        );
                        // One best-effort flush; the stream cannot be
                        // resynced, so it closes regardless.
                        let _ = conn.out.flush_to(&mut conn.stream);
                    }
                    self.close_conn(slot);
                    return true;
                }
                Step::Wait { arm_line_timer } => {
                    if let (Some(started), Some(limit)) =
                        (arm_line_timer, inner.config.line_timeout)
                    {
                        if let Some(generation) = self.table.get_mut(slot).map(|c| c.generation) {
                            self.timers.insert(TimerEntry {
                                deadline: started + limit,
                                token: slot,
                                generation,
                                kind: TimerKind::Line,
                            });
                        }
                    }
                    return false;
                }
                Step::BadUtf8 => {
                    // The blocking reader's read_line met invalid UTF-8 as
                    // an unrecoverable stream error: close without a
                    // response.
                    self.close_conn(slot);
                    return true;
                }
                Step::Skip => continue,
                Step::Act(action, trace) => {
                    if self.apply_action(slot, action, trace) {
                        return true;
                    }
                }
            }
        }
    }

    /// Executes one dispatched action. Returns `true` when the connection
    /// was closed.
    fn apply_action(&mut self, slot: usize, action: LineAction, trace: RequestTrace) -> bool {
        match action {
            LineAction::Respond {
                response,
                predict,
                shutdown,
            } => {
                let closed = self.respond(Some(slot), response, trace, predict.as_deref());
                if shutdown {
                    // Respond first, then begin the drain; this connection
                    // closes once its response drains.
                    self.inner.request_shutdown();
                    if !closed {
                        if let Some(conn) = self.table.get_mut(slot) {
                            conn.close_after_drain = true;
                        }
                        return self.close_if_drained(slot);
                    }
                }
                closed
            }
            LineAction::Submit {
                prepared,
                deadline,
                id,
                name,
            } => {
                let token = self.next_token;
                self.next_token += 1;
                let infer_started = Instant::now();
                match self.inner.scheduler.submit_async(
                    prepared,
                    deadline,
                    token,
                    &self.completions,
                ) {
                    Ok(()) => {
                        let Some(conn) = self.table.get_mut(slot) else {
                            return true;
                        };
                        conn.inflight += 1;
                        self.pending.insert(
                            token,
                            PendingPredict {
                                slot,
                                generation: conn.generation,
                                id,
                                name,
                                trace,
                                infer_started,
                            },
                        );
                        false
                    }
                    // Rejections (queue full, shutting down) answer inline
                    // on this connection, exactly like the blocking path.
                    Err(e) => self.respond(
                        Some(slot),
                        error_response(id, &e.to_string()),
                        trace,
                        Some(&name),
                    ),
                }
            }
        }
    }

    /// Serialises a response (with the respond-stage fault hook and panic
    /// guard), queues it on the connection's write buffer and records the
    /// predict-stage telemetry. `slot: None` answers into the void — the
    /// client disconnected while its prediction ran; the telemetry is still
    /// recorded so every predict outcome is observed exactly once.
    ///
    /// Returns `true` when the connection was closed.
    fn respond(
        &mut self,
        slot: Option<usize>,
        response: Value,
        mut trace: RequestTrace,
        predict: Option<&str>,
    ) -> bool {
        let inner = Arc::clone(&self.inner);
        if response
            .as_object()
            .is_some_and(|fields| fields.contains_key("error"))
        {
            inner.metrics.request_errors.inc();
        }
        // The respond stage keeps its own guard: a panic while firing the
        // stage hook or serialising (only reachable via an injected fault
        // today) closes this connection without touching the others.
        let serialised = std::panic::catch_unwind(AssertUnwindSafe(|| {
            trace.time(Stage::Respond, || -> std::io::Result<Vec<u8>> {
                if let Some(faults) = &inner.config.faults {
                    faults.fire(Stage::Respond)?;
                }
                let mut payload = match serde_json::to_string(&response) {
                    Ok(json) => json,
                    Err(_) => r#"{"error":"internal: response serialisation failed"}"#.into(),
                };
                payload.push('\n');
                Ok(payload.into_bytes())
            })
        }));
        let mut closed = false;
        match serialised {
            Ok(Ok(payload)) => {
                if let Some(slot) = slot {
                    if let Some(conn) = self.table.get_mut(slot) {
                        conn.out.push(&payload);
                        conn.last_activity = Instant::now();
                        if !conn.paused && conn.out.len() > WRITE_HIGH_WATERMARK {
                            // Backpressure: stop reading new requests until
                            // the client drains its responses.
                            conn.paused = true;
                            inner.metrics.write_backpressure.inc();
                        }
                    }
                }
            }
            Ok(Err(e)) => {
                // An injected respond-stage I/O error: same accounting as a
                // failed blocking write of this response.
                if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
                    inner.metrics.write_timeouts.inc();
                }
                if let Some(slot) = slot {
                    self.close_conn(slot);
                    closed = true;
                }
            }
            Err(_) => {
                inner.metrics.request_panics_recovered.inc();
                if let Some(slot) = slot {
                    self.close_conn(slot);
                    closed = true;
                }
            }
        }
        // Stage histograms and the slow log track predict requests only,
        // so `request_latency_ns.count` equals `requests_predict_total`
        // exactly — including responses whose write failed or whose client
        // is already gone, same as the blocking front end.
        if let Some(name) = predict {
            inner.metrics.stages.observe(&trace);
            if let Some(slow) = &inner.slow_log {
                if let Some(record) = slow.check("predict", name, &trace) {
                    inner.metrics.slow_requests.inc();
                    eprintln!("{record}");
                }
            }
        }
        if closed {
            return true;
        }
        match slot {
            Some(slot) => self.flush_conn(slot),
            None => false,
        }
    }

    /// Drives the write-buffer state machine: flush as much as the socket
    /// accepts, manage the write deadline (armed on first block, pushed
    /// forward on progress), lift backpressure below the low watermark and
    /// retire connections whose drain completed. Returns `true` when the
    /// connection was closed.
    fn flush_conn(&mut self, slot: usize) -> bool {
        enum After {
            Nothing,
            Close,
            Arm { deadline: Instant, generation: u64 },
        }
        let now = Instant::now();
        let mut resumed = false;
        let after = {
            let Some(conn) = self.table.get_mut(slot) else {
                return true;
            };
            if conn.out.is_empty() {
                conn.write_deadline = None;
                if conn.close_after_drain && conn.inflight == 0 {
                    After::Close
                } else {
                    After::Nothing
                }
            } else {
                match conn.out.flush_to(&mut conn.stream) {
                    Ok(Flush::Drained) => {
                        conn.write_deadline = None;
                        conn.last_activity = now;
                        if conn.paused {
                            conn.paused = false;
                            resumed = true;
                        }
                        if conn.close_after_drain && conn.inflight == 0 {
                            After::Close
                        } else {
                            After::Nothing
                        }
                    }
                    Ok(Flush::Blocked { progressed }) => {
                        if conn.paused && conn.out.len() <= WRITE_LOW_WATERMARK {
                            conn.paused = false;
                            resumed = true;
                        }
                        match self.inner.config.write_timeout {
                            Some(timeout) => {
                                let arm = conn.write_deadline.is_none();
                                if progressed || arm {
                                    // Progress resets the deadline — only a
                                    // socket accepting nothing for the full
                                    // window is cut, like the blocking
                                    // write timeout.
                                    conn.write_deadline = Some(now + timeout);
                                }
                                if arm {
                                    After::Arm {
                                        deadline: now + timeout,
                                        generation: conn.generation,
                                    }
                                } else {
                                    After::Nothing
                                }
                            }
                            None => After::Nothing,
                        }
                    }
                    Err(_) => After::Close,
                }
            }
        };
        let closed = match after {
            After::Nothing => false,
            After::Close => {
                self.close_conn(slot);
                true
            }
            After::Arm {
                deadline,
                generation,
            } => {
                self.timers.insert(TimerEntry {
                    deadline,
                    token: slot,
                    generation,
                    kind: TimerKind::Write,
                });
                false
            }
        };
        if closed {
            return true;
        }
        if resumed {
            self.resume.push(slot);
        }
        self.sync_interest(slot);
        false
    }

    /// Closes `slot` now if it is marked close-after-drain and has nothing
    /// left to deliver. Returns `true` when it closed.
    fn close_if_drained(&mut self, slot: usize) -> bool {
        let done = self
            .table
            .get_mut(slot)
            .is_some_and(|c| c.close_after_drain && c.out.is_empty() && c.inflight == 0);
        if done {
            self.close_conn(slot);
        }
        done
    }

    fn close_conn(&mut self, slot: usize) {
        let Some(conn) = self.table.remove(slot) else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        // Retire the socket at the TCP level, not just drop the fd: a cut
        // client sees a prompt FIN/RST instead of a zero-window socket.
        let _ = conn.stream.shutdown(Shutdown::Both);
        self.inner.metrics.connections_open.dec();
        self.inner.metrics.connections_closed.inc();
    }

    /// Reconciles the poller's interest set with what the connection's
    /// state implies (readable unless paused/half-closed; writable while
    /// output is queued).
    fn sync_interest(&mut self, slot: usize) {
        let Some(conn) = self.table.get_mut(slot) else {
            return;
        };
        let desired = conn.desired_interest();
        if desired == conn.interest {
            return;
        }
        let fd = conn.stream.as_raw_fd();
        if self
            .poller
            .reregister(fd, slot + CONN_BASE, desired)
            .is_ok()
        {
            conn.interest = desired;
        }
    }

    /// Hands every scheduler completion back to its connection. The wake
    /// datagrams are drained FIRST: a producer that loses the coalescing
    /// race has already enqueued its completion, so checking the queue
    /// after the drain cannot miss it.
    fn drain_completions(&mut self) {
        self.wake_rx.drain();
        for completion in self.completions.drain() {
            self.inner.metrics.eventloop_completions.inc();
            let Some(pending) = self.pending.remove(&completion.token) else {
                continue;
            };
            let PendingPredict {
                slot,
                generation,
                id,
                name,
                mut trace,
                infer_started,
            } = pending;
            trace.add(Stage::Infer, infer_started.elapsed());
            let target = match self.table.get_generation(slot, generation) {
                Some(conn) => {
                    conn.inflight = conn.inflight.saturating_sub(1);
                    Some(slot)
                }
                // The connection died (or the slot was recycled) while the
                // prediction ran: the result is dropped, the telemetry
                // still recorded.
                None => None,
            };
            let response = match completion.result {
                Ok(probs) => {
                    let mut response = object_with_id(id);
                    response.insert("probs".to_string(), probs.serialize());
                    Value::Object(response)
                }
                Err(e) => error_response(id, &e.to_string()),
            };
            self.respond(target, response, trace, Some(&name));
        }
    }

    fn run_timers(&mut self) {
        let now = Instant::now();
        for entry in self.timers.advance(now) {
            self.handle_timer(entry, now);
        }
    }

    /// Acts on one expired timer entry. Timers are lazily cancelled, so
    /// every entry is validated against the connection's *live* state (the
    /// generation matched already): stale entries drop, premature ones
    /// re-arm at the real deadline.
    fn handle_timer(&mut self, entry: TimerEntry, now: Instant) {
        enum Act {
            Drop,
            Rearm(Instant),
            ReapIdle,
            CutLine,
            CutWrite,
        }
        let act = {
            let Some(conn) = self.table.get_generation(entry.token, entry.generation) else {
                return;
            };
            match entry.kind {
                TimerKind::Idle => match self.inner.config.idle_timeout {
                    None => Act::Drop,
                    Some(idle) => {
                        // A connection with work in flight is not idle: a
                        // long prediction, an undrained response or a
                        // partial line each keep it alive (the line and
                        // write deadlines police the latter two).
                        let busy = conn.inflight > 0
                            || !conn.out.is_empty()
                            || conn.line_started.is_some();
                        if busy {
                            Act::Rearm(now + idle)
                        } else if now.duration_since(conn.last_activity) >= idle {
                            Act::ReapIdle
                        } else {
                            Act::Rearm(conn.last_activity + idle)
                        }
                    }
                },
                TimerKind::Line => match (conn.line_started, self.inner.config.line_timeout) {
                    (Some(started), Some(limit)) => {
                        if now.duration_since(started) >= limit {
                            Act::CutLine
                        } else {
                            Act::Rearm(started + limit)
                        }
                    }
                    _ => Act::Drop,
                },
                TimerKind::Write => match conn.write_deadline {
                    Some(deadline) if !conn.out.is_empty() => {
                        if now >= deadline {
                            Act::CutWrite
                        } else {
                            Act::Rearm(deadline)
                        }
                    }
                    _ => Act::Drop,
                },
            }
        };
        match act {
            Act::Drop => {}
            Act::Rearm(deadline) => self.timers.insert(TimerEntry { deadline, ..entry }),
            Act::ReapIdle => {
                self.inner.metrics.connections_reaped.inc();
                self.close_conn(entry.token);
            }
            Act::CutLine => {
                self.inner.metrics.connections_reaped.inc();
                if let Some(conn) = self.table.get_mut(entry.token) {
                    conn.out.push(b"{\"error\":\"request line timed out\"}\n");
                    let _ = conn.out.flush_to(&mut conn.stream);
                }
                self.close_conn(entry.token);
            }
            Act::CutWrite => {
                self.inner.metrics.write_timeouts.inc();
                self.close_conn(entry.token);
            }
        }
    }

    /// One drain iteration. Stops accepting immediately; once the
    /// scheduler has flushed and every completion is routed, gives clients
    /// a bounded grace to accept buffered responses, then retires every
    /// connection. Returns `true` when the loop should exit.
    fn drain_step(&mut self) -> bool {
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd());
        }
        if !self.inner.scheduler_drained.load(Ordering::SeqCst)
            || !self.pending.is_empty()
            || !self.completions.is_empty()
        {
            return false;
        }
        // Every response is computed and queued; what remains is delivery.
        let now = Instant::now();
        let deadline = *self.flush_deadline.get_or_insert(now + DRAIN_GRACE);
        let mut all_drained = true;
        for slot in self.table.occupied() {
            let undrained = self.table.get_mut(slot).is_some_and(|c| !c.out.is_empty());
            if undrained && !self.flush_conn(slot) {
                let still = self.table.get_mut(slot).is_some_and(|c| !c.out.is_empty());
                all_drained &= !still;
            }
        }
        if !all_drained && now < deadline {
            return false;
        }
        for slot in self.table.occupied() {
            self.close_conn(slot);
        }
        true
    }
}

/// Parses and dispatches one request line, attributing stage timings to
/// `trace` (JSON parsing and payload extraction → `Parse`; `Encode`/`Plan`
/// inside [`Inner::resolve`] on cache misses; queueing + model execution →
/// `Infer`, measured by the event loop across the async round trip; the
/// loop times `Respond` around serialisation).
fn handle_line(inner: &Arc<Inner>, line: &str, trace: &mut RequestTrace) -> LineAction {
    // Parse-stage fault hook: panics unwind into the event loop's recovery
    // guard (one error response), I/O faults answer directly.
    if let Err(e) = inner.fault(Stage::Parse) {
        return LineAction::reply(error_response(None, &e.to_string()));
    }
    let parsed: Result<Value, _> = trace.time(Stage::Parse, || serde_json::from_str(line.trim()));
    let request = match parsed {
        Ok(value) => value,
        Err(e) => {
            inner.metrics.requests_unknown.inc();
            return LineAction::reply(error_response(None, &format!("invalid JSON: {e}")));
        }
    };
    let Some(fields) = request.as_object() else {
        inner.metrics.requests_unknown.inc();
        return LineAction::reply(error_response(None, "request must be a JSON object"));
    };
    let id = fields.get("id").cloned();
    let op = match fields.get("op") {
        Some(Value::Str(op)) => op.as_str(),
        Some(_) => {
            inner.metrics.requests_unknown.inc();
            return LineAction::reply(error_response(id, "`op` must be a string"));
        }
        None => "predict",
    };
    match op {
        "stats" => {
            inner.metrics.requests_stats.inc();
            let mut response = object_with_id(id);
            response.insert("stats".to_string(), inner.stats().serialize());
            LineAction::reply(Value::Object(response))
        }
        "metrics" => {
            inner.metrics.requests_metrics.inc();
            let mut response = object_with_id(id);
            response.insert(
                "metrics".to_string(),
                snapshot_to_value(&inner.metrics.snapshot()),
            );
            LineAction::reply(Value::Object(response))
        }
        "metrics_text" => {
            inner.metrics.requests_metrics_text.inc();
            let mut response = object_with_id(id);
            response.insert(
                "metrics_text".to_string(),
                Value::Str(inner.metrics.snapshot().to_prometheus("deepgate")),
            );
            LineAction::reply(Value::Object(response))
        }
        "shutdown" => {
            inner.metrics.requests_shutdown.inc();
            let mut response = object_with_id(id);
            response.insert("ok".to_string(), Value::Bool(true));
            LineAction::Respond {
                response: Value::Object(response),
                predict: None,
                shutdown: true,
            }
        }
        "predict" => {
            inner.metrics.requests_predict.inc();
            let name = match fields.get("name") {
                Some(Value::Str(name)) => name.as_str(),
                _ => "request",
            };
            let predict = Some(name.to_string());
            if inner.draining.load(Ordering::SeqCst) {
                return LineAction::Respond {
                    response: error_response(id, &ServeError::ShuttingDown.to_string()),
                    predict,
                    shutdown: false,
                };
            }
            let payload = match trace.time(Stage::Parse, || parse_payload(fields, name)) {
                Ok(payload) => payload,
                Err(message) => {
                    return LineAction::Respond {
                        response: error_response(id, &message),
                        predict,
                        shutdown: false,
                    }
                }
            };
            let budget =
                match parse_deadline(fields.get("deadline_ms"), inner.config.default_deadline) {
                    Ok(budget) => budget,
                    Err(message) => {
                        return LineAction::Respond {
                            response: error_response(id, &message),
                            predict,
                            shutdown: false,
                        }
                    }
                };
            // The budget is measured from the instant the request line was
            // read — the trace's start — not from here, so time already
            // spent parsing counts against it.
            let deadline = budget.map(|budget| trace.started_at() + budget);
            match inner.resolve(&payload, trace) {
                Ok(prepared) => LineAction::Submit {
                    prepared,
                    deadline,
                    id,
                    name: name.to_string(),
                },
                Err(e) => LineAction::Respond {
                    response: error_response(id, &e.to_string()),
                    predict,
                    shutdown: false,
                },
            }
        }
        other => {
            inner.metrics.requests_unknown.inc();
            LineAction::reply(error_response(id, &format!("unknown op `{other}`")))
        }
    }
}

fn object_with_id(id: Option<Value>) -> std::collections::BTreeMap<String, Value> {
    let mut map = std::collections::BTreeMap::new();
    if let Some(id) = id {
        map.insert("id".to_string(), id);
    }
    map
}

fn error_response(id: Option<Value>, message: &str) -> Value {
    let mut map = object_with_id(id);
    map.insert("error".to_string(), Value::Str(message.to_string()));
    Value::Object(map)
}
