//! Sub-circuit (cone) extraction.
//!
//! The DeepGate training set consists of small sub-circuits — 30 to roughly
//! 3,000 gates — extracted from larger benchmark designs (Table I). This
//! module implements that extraction step: logic cones rooted at internal
//! nodes or primary outputs are cut out of an [`Aig`] and returned as
//! self-contained AIGs whose cut points become fresh primary inputs.

use crate::{Aig, AigLit, AigNodeKind};
use std::collections::HashMap;

/// Parameters of sub-circuit extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtractConfig {
    /// Minimum number of nodes (inputs + ANDs) a sub-circuit must have.
    pub min_nodes: usize,
    /// Maximum number of nodes a sub-circuit may have; larger cones are cut
    /// at a level boundary.
    pub max_nodes: usize,
    /// Maximum depth (in AND levels) of an extracted cone.
    pub max_depth: usize,
}

impl Default for ExtractConfig {
    fn default() -> Self {
        ExtractConfig {
            min_nodes: 30,
            max_nodes: 3_000,
            max_depth: 24,
        }
    }
}

/// Extracts the logic cone rooted at `root` (an AND node index), cutting at
/// `max_depth` levels below the root; nodes beyond the cut become primary
/// inputs of the extracted AIG. Returns `None` if the cone is smaller than
/// `min_nodes` or `root` is not an AND node.
pub fn extract_cone(aig: &Aig, root: usize, config: ExtractConfig) -> Option<Aig> {
    if aig.node(root).kind != AigNodeKind::And {
        return None;
    }
    let (levels, _) = aig.levels();
    let root_level = levels[root];
    let cut_level = root_level.saturating_sub(config.max_depth);

    // Collect the cone with a DFS bounded by the level cut and a node budget.
    let mut in_cone: Vec<usize> = Vec::new();
    let mut cut_points: Vec<usize> = Vec::new();
    let mut seen: HashMap<usize, bool> = HashMap::new(); // node -> is internal
    let mut stack = vec![root];
    while let Some(i) = stack.pop() {
        if seen.contains_key(&i) {
            continue;
        }
        let node = aig.node(i);
        let internal = node.kind == AigNodeKind::And
            && levels[i] > cut_level
            && in_cone.len() < config.max_nodes;
        seen.insert(i, internal);
        if internal {
            in_cone.push(i);
            stack.push(node.fanin0.node());
            stack.push(node.fanin1.node());
        } else {
            cut_points.push(i);
        }
    }

    if in_cone.len() + cut_points.len() < config.min_nodes {
        return None;
    }

    // Rebuild the cone as a fresh AIG, topological order = ascending index.
    in_cone.sort_unstable();
    cut_points.sort_unstable();
    cut_points.dedup();

    let mut out = Aig::new(format!("{}_cone{}", aig.name(), root));
    let mut map: HashMap<usize, AigLit> = HashMap::new();
    map.insert(0, AigLit::FALSE);
    for &cp in &cut_points {
        if cp == 0 {
            continue; // constant stays constant
        }
        let lit = out.add_input(format!("cut_{cp}"));
        map.insert(cp, lit);
    }
    for &i in &in_cone {
        let node = aig.node(i);
        let a = translate(&map, node.fanin0);
        let b = translate(&map, node.fanin1);
        let lit = out.and(a, b);
        map.insert(i, lit);
    }
    out.add_output(map[&root], format!("cone_{root}"));
    Some(out)
}

/// Extracts up to `max_count` sub-circuits from an AIG by walking candidate
/// roots from the deepest levels downwards. Roots are spaced so extracted
/// cones overlap less. Returns the extracted AIGs.
pub fn extract_subcircuits(aig: &Aig, config: ExtractConfig, max_count: usize) -> Vec<Aig> {
    let (levels, _) = aig.levels();
    // Candidate roots: AND nodes sorted by descending level.
    let mut roots: Vec<usize> = aig
        .iter()
        .filter(|(_, n)| n.kind == AigNodeKind::And)
        .map(|(i, _)| i)
        .collect();
    roots.sort_by_key(|&i| std::cmp::Reverse(levels[i]));

    let mut out = Vec::new();
    let mut used_roots: Vec<usize> = Vec::new();
    for root in roots {
        if out.len() >= max_count {
            break;
        }
        // Space roots apart: skip roots too close (in level) to an already
        // used root that is structurally nearby (same level band).
        if used_roots.iter().any(|&u| {
            levels[u].abs_diff(levels[root]) < 2 && u.abs_diff(root) < config.max_nodes / 4
        }) {
            continue;
        }
        if let Some(cone) = extract_cone(aig, root, config) {
            used_roots.push(root);
            out.push(cone);
        }
    }
    out
}

fn translate(map: &HashMap<usize, AigLit>, lit: AigLit) -> AigLit {
    let base = map[&lit.node()];
    if lit.is_complemented() {
        base.complement()
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deep_aig(width: usize, depth: usize) -> Aig {
        // A woven multi-level AIG with plenty of sharing.
        let mut aig = Aig::new("deep");
        let mut layer: Vec<AigLit> = (0..width).map(|i| aig.add_input(format!("x{i}"))).collect();
        for d in 0..depth {
            let mut next = Vec::with_capacity(width);
            for i in 0..width {
                let a = layer[i];
                let b = layer[(i + 1 + d) % width];
                let lit = aig.and(a, if d % 2 == 0 { b } else { b.complement() });
                next.push(lit);
            }
            layer = next;
        }
        for (i, &l) in layer.iter().enumerate() {
            aig.add_output(l, format!("y{i}"));
        }
        aig
    }

    #[test]
    fn extract_cone_produces_valid_aig() {
        let aig = deep_aig(8, 6);
        let root = aig.outputs()[0].0.node();
        let config = ExtractConfig {
            min_nodes: 5,
            max_nodes: 100,
            max_depth: 4,
        };
        let cone = extract_cone(&aig, root, config).expect("cone extracted");
        assert!(cone.validate().is_ok());
        assert!(cone.len() >= config.min_nodes);
        assert!(cone.num_ands() <= config.max_nodes);
        assert_eq!(cone.num_outputs(), 1);
        // Depth is bounded by the cut.
        let (_, depth) = cone.levels();
        assert!(depth <= config.max_depth);
    }

    #[test]
    fn extract_cone_rejects_small_cones_and_inputs() {
        let aig = deep_aig(4, 2);
        let config = ExtractConfig {
            min_nodes: 1000,
            max_nodes: 2000,
            max_depth: 8,
        };
        let root = aig.outputs()[0].0.node();
        assert!(extract_cone(&aig, root, config).is_none());
        // A primary input is not a valid root.
        let input_root = aig.inputs()[0];
        assert!(extract_cone(&aig, input_root, ExtractConfig::default()).is_none());
    }

    #[test]
    fn extract_subcircuits_returns_multiple_cones() {
        let aig = deep_aig(12, 8);
        let config = ExtractConfig {
            min_nodes: 10,
            max_nodes: 60,
            max_depth: 4,
        };
        let cones = extract_subcircuits(&aig, config, 5);
        assert!(!cones.is_empty());
        assert!(cones.len() <= 5);
        for cone in &cones {
            assert!(cone.validate().is_ok());
            assert!(cone.len() >= config.min_nodes);
        }
    }
}
