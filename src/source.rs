//! [`CircuitSource`] — one trait unifying every way circuits enter the
//! system: BENCH text/files, structural Verilog, AIGER (ASCII and binary),
//! in-memory netlists and the synthetic benchmark-suite generators.

use crate::DeepGateError;
use deepgate_aig::{aiger, Aig, LatchPolicy};
use deepgate_dataset::{LargeDesign, SuiteKind};
use deepgate_netlist::Netlist;
use std::path::{Path, PathBuf};

/// A supplier of gate-level circuits for the [`crate::Engine`].
///
/// Implementations cover the interchange formats of the paper's benchmark
/// suites ([`BenchText`], [`BenchFile`], [`VerilogText`], [`VerilogFile`]),
/// in-memory netlists ([`NetlistSource`]) and the synthetic generators
/// ([`SuiteSource`], [`LargeDesignSource`]). A source yields whole netlists;
/// the engine owns the downstream AIG transformation, labelling and graph
/// encoding, so every input format flows through one pipeline.
pub trait CircuitSource {
    /// A short human-readable description, used in diagnostics.
    fn describe(&self) -> String;

    /// Produces the circuits.
    ///
    /// # Errors
    ///
    /// Returns a [`DeepGateError`] if reading or parsing fails.
    fn netlists(&self) -> Result<Vec<Netlist>, DeepGateError>;
}

/// BENCH-format circuit text held in memory.
pub struct BenchText {
    name: String,
    text: String,
}

impl BenchText {
    /// Wraps BENCH text under a design name.
    pub fn new(name: impl Into<String>, text: impl Into<String>) -> Self {
        BenchText {
            name: name.into(),
            text: text.into(),
        }
    }
}

impl CircuitSource for BenchText {
    fn describe(&self) -> String {
        format!("bench:{}", self.name)
    }

    fn netlists(&self) -> Result<Vec<Netlist>, DeepGateError> {
        Ok(vec![deepgate_netlist::bench::parse(
            &self.text,
            self.name.clone(),
        )?])
    }
}

/// A BENCH file on disk.
pub struct BenchFile {
    path: PathBuf,
}

impl BenchFile {
    /// References a BENCH file by path.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        BenchFile { path: path.into() }
    }
}

impl CircuitSource for BenchFile {
    fn describe(&self) -> String {
        format!("bench-file:{}", self.path.display())
    }

    fn netlists(&self) -> Result<Vec<Netlist>, DeepGateError> {
        let text = read_file(&self.path)?;
        let name = self
            .path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "bench".to_string());
        Ok(vec![deepgate_netlist::bench::parse(&text, name)?])
    }
}

/// Structural gate-level Verilog text held in memory.
pub struct VerilogText {
    text: String,
}

impl VerilogText {
    /// Wraps Verilog text (the module name becomes the design name).
    pub fn new(text: impl Into<String>) -> Self {
        VerilogText { text: text.into() }
    }
}

impl CircuitSource for VerilogText {
    fn describe(&self) -> String {
        "verilog".to_string()
    }

    fn netlists(&self) -> Result<Vec<Netlist>, DeepGateError> {
        Ok(vec![deepgate_netlist::verilog::parse(&self.text)?])
    }
}

/// A structural Verilog file on disk.
pub struct VerilogFile {
    path: PathBuf,
}

impl VerilogFile {
    /// References a Verilog file by path.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        VerilogFile { path: path.into() }
    }
}

impl CircuitSource for VerilogFile {
    fn describe(&self) -> String {
        format!("verilog-file:{}", self.path.display())
    }

    fn netlists(&self) -> Result<Vec<Netlist>, DeepGateError> {
        let text = read_file(&self.path)?;
        Ok(vec![deepgate_netlist::verilog::parse(&text)?])
    }
}

/// Applies a latch policy to a parsed AIG and expands it into the netlist
/// form every other source yields, so AIGER input joins the same pipeline.
fn aiger_netlist(aig: &Aig, policy: LatchPolicy) -> Result<Netlist, DeepGateError> {
    let combinational = policy.apply(aig)?;
    Ok(combinational.to_netlist())
}

/// AIGER-ASCII (`aag`) circuit text held in memory.
///
/// Sequential circuits are admitted: latches are handled according to the
/// configured [`LatchPolicy`] (default: cut into pseudo-PI/PO).
pub struct AigerText {
    name: String,
    text: String,
    policy: LatchPolicy,
}

impl AigerText {
    /// Wraps AIGER-ASCII text under a design name.
    pub fn new(name: impl Into<String>, text: impl Into<String>) -> Self {
        AigerText {
            name: name.into(),
            text: text.into(),
            policy: LatchPolicy::default(),
        }
    }

    /// Sets the latch ingestion policy (default [`LatchPolicy::Cut`]).
    pub fn latch_policy(mut self, policy: LatchPolicy) -> Self {
        self.policy = policy;
        self
    }
}

impl CircuitSource for AigerText {
    fn describe(&self) -> String {
        format!("aiger:{}:{}", self.name, self.policy)
    }

    fn netlists(&self) -> Result<Vec<Netlist>, DeepGateError> {
        let aig = aiger::parse_aag(&self.text, self.name.clone())
            .map_err(deepgate_aig::AigError::from)?;
        Ok(vec![aiger_netlist(&aig, self.policy)?])
    }
}

/// An in-memory AIGER byte buffer, either flavour: the header magic selects
/// the ASCII (`aag`) or binary (`aig`) reader.
pub struct AigerBytes {
    name: String,
    bytes: Vec<u8>,
    policy: LatchPolicy,
}

impl AigerBytes {
    /// Wraps AIGER bytes (ASCII or binary) under a design name.
    pub fn new(name: impl Into<String>, bytes: impl Into<Vec<u8>>) -> Self {
        AigerBytes {
            name: name.into(),
            bytes: bytes.into(),
            policy: LatchPolicy::default(),
        }
    }

    /// Sets the latch ingestion policy (default [`LatchPolicy::Cut`]).
    pub fn latch_policy(mut self, policy: LatchPolicy) -> Self {
        self.policy = policy;
        self
    }
}

impl CircuitSource for AigerBytes {
    fn describe(&self) -> String {
        format!("aiger-bytes:{}:{}", self.name, self.policy)
    }

    fn netlists(&self) -> Result<Vec<Netlist>, DeepGateError> {
        let aig = aiger::parse_auto(&self.bytes, self.name.clone())
            .map_err(deepgate_aig::AigError::from)?;
        Ok(vec![aiger_netlist(&aig, self.policy)?])
    }
}

/// An AIGER file on disk (`.aag` or `.aig`, auto-detected by header magic).
pub struct AigerFile {
    path: PathBuf,
    policy: LatchPolicy,
}

impl AigerFile {
    /// References an AIGER file by path.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        AigerFile {
            path: path.into(),
            policy: LatchPolicy::default(),
        }
    }

    /// Sets the latch ingestion policy (default [`LatchPolicy::Cut`]).
    pub fn latch_policy(mut self, policy: LatchPolicy) -> Self {
        self.policy = policy;
        self
    }
}

impl CircuitSource for AigerFile {
    fn describe(&self) -> String {
        format!("aiger-file:{}:{}", self.path.display(), self.policy)
    }

    fn netlists(&self) -> Result<Vec<Netlist>, DeepGateError> {
        let bytes = std::fs::read(&self.path).map_err(|e| DeepGateError::Io {
            path: self.path.display().to_string(),
            message: e.to_string(),
        })?;
        let name = self
            .path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "aiger".to_string());
        let aig = aiger::parse_auto(&bytes, name).map_err(deepgate_aig::AigError::from)?;
        Ok(vec![aiger_netlist(&aig, self.policy)?])
    }
}

/// In-memory netlists, passed through unchanged.
pub struct NetlistSource {
    netlists: Vec<Netlist>,
}

impl NetlistSource {
    /// Wraps already-built netlists.
    pub fn new(netlists: Vec<Netlist>) -> Self {
        NetlistSource { netlists }
    }
}

impl From<Netlist> for NetlistSource {
    fn from(netlist: Netlist) -> Self {
        NetlistSource {
            netlists: vec![netlist],
        }
    }
}

impl From<Vec<Netlist>> for NetlistSource {
    fn from(netlists: Vec<Netlist>) -> Self {
        NetlistSource { netlists }
    }
}

impl CircuitSource for NetlistSource {
    fn describe(&self) -> String {
        format!("netlists:{}", self.netlists.len())
    }

    fn netlists(&self) -> Result<Vec<Netlist>, DeepGateError> {
        Ok(self.netlists.clone())
    }
}

/// Synthetic designs drawn from one of the paper's benchmark-suite
/// stand-ins (ITC'99 / IWLS'05 / EPFL / OpenCores).
pub struct SuiteSource {
    suite: SuiteKind,
    count: usize,
    seed: u64,
    size_scale: f64,
}

impl SuiteSource {
    /// Generates `count` designs from `suite`.
    pub fn new(suite: SuiteKind, count: usize) -> Self {
        SuiteSource {
            suite,
            count,
            seed: 42,
            size_scale: 0.25,
        }
    }

    /// Sets the generation seed (default 42).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the size scale factor in `(0, 1]` (default 0.25; 1.0 targets the
    /// paper's size ranges).
    pub fn size_scale(mut self, scale: f64) -> Self {
        self.size_scale = scale;
        self
    }
}

impl CircuitSource for SuiteSource {
    fn describe(&self) -> String {
        format!("suite:{:?}x{}", self.suite, self.count)
    }

    fn netlists(&self) -> Result<Vec<Netlist>, DeepGateError> {
        Ok((0..self.count)
            .map(|index| {
                self.suite
                    .generate_design(index, self.seed, self.size_scale)
            })
            .collect())
    }
}

/// One of the five large evaluation designs of Table III.
pub struct LargeDesignSource {
    design: LargeDesign,
    scale: f64,
}

impl LargeDesignSource {
    /// Generates `design` at a size `scale` in `(0, 1]`.
    pub fn new(design: LargeDesign, scale: f64) -> Self {
        LargeDesignSource { design, scale }
    }
}

impl CircuitSource for LargeDesignSource {
    fn describe(&self) -> String {
        format!("large:{:?}", self.design)
    }

    fn netlists(&self) -> Result<Vec<Netlist>, DeepGateError> {
        Ok(vec![self.design.generate(self.scale)])
    }
}

fn read_file(path: &Path) -> Result<String, DeepGateError> {
    std::fs::read_to_string(path).map_err(|e| DeepGateError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const AND2: &str = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n";

    #[test]
    fn bench_text_parses() {
        let source = BenchText::new("and2", AND2);
        let netlists = source
            .netlists()
            .expect("the AND2 bench fixture should parse");
        assert_eq!(netlists.len(), 1);
        assert_eq!(netlists[0].num_inputs(), 2);
        assert!(source.describe().contains("and2"));
    }

    #[test]
    fn bench_text_parse_error_maps_to_netlist_variant() {
        let source = BenchText::new("bad", "y = AND(a, b)\n");
        assert!(matches!(source.netlists(), Err(DeepGateError::Netlist(_))));
    }

    #[test]
    fn missing_file_maps_to_io_variant() {
        let source = BenchFile::new("/nonexistent/never.bench");
        assert!(matches!(source.netlists(), Err(DeepGateError::Io { .. })));
        let source = VerilogFile::new("/nonexistent/never.v");
        assert!(matches!(source.netlists(), Err(DeepGateError::Io { .. })));
    }

    #[test]
    fn suite_source_generates_requested_count() {
        let source = SuiteSource::new(SuiteKind::Epfl, 3).seed(7).size_scale(0.1);
        let netlists = source
            .netlists()
            .expect("the EPFL suite generator fixture should yield netlists");
        assert_eq!(netlists.len(), 3);
        assert!(netlists.iter().all(|n| n.num_gates() > 0));
    }

    // 2-bit counter with two latches, two outputs and three AND gates.
    const COUNTER_AAG: &str =
        "aag 5 0 2 2 3\n2 3\n4 10\n2\n4\n6 5 3\n8 4 2\n10 7 9\nl0 b0\nl1 b1\no0 y0\no1 y1\nc\ncounter\n";

    #[test]
    fn aiger_text_cut_exposes_latch_interface() {
        let source = AigerText::new("counter", COUNTER_AAG);
        let netlists = source.netlists().expect("the counter fixture parses");
        assert_eq!(netlists.len(), 1);
        // Cut mode: 2 pseudo-inputs (latch states), 2 + 2 outputs.
        assert_eq!(netlists[0].num_inputs(), 2);
        assert_eq!(netlists[0].num_outputs(), 4);
        assert!(source.describe().contains("cut"));
    }

    #[test]
    fn aiger_text_unroll_replicates_frames() {
        let source = AigerText::new("counter", COUNTER_AAG).latch_policy(LatchPolicy::Unroll(3));
        let netlists = source.netlists().expect("the counter fixture unrolls");
        // 2 outputs per frame, no primary inputs.
        assert_eq!(netlists[0].num_outputs(), 6);
        assert!(source.describe().contains("unroll:3"));
    }

    #[test]
    fn aiger_bytes_accepts_binary() {
        let aig = deepgate_aig::aiger::random_aig(5, 3, 2, 12);
        let bytes = deepgate_aig::aiger::write_aig(&aig).expect("valid aig serialises");
        let source = AigerBytes::new("rand", bytes);
        let netlists = source.netlists().expect("binary aiger parses");
        assert!(netlists[0].num_gates() > 0);
    }

    #[test]
    fn aiger_error_maps_to_aig_variant() {
        let source = AigerText::new("bad", "aag not-a-header\n");
        assert!(matches!(source.netlists(), Err(DeepGateError::Aig(_))));
        let source = AigerFile::new("/nonexistent/never.aig");
        assert!(matches!(source.netlists(), Err(DeepGateError::Io { .. })));
    }

    #[test]
    fn netlist_source_passes_through() {
        let netlist = deepgate_dataset::generators::parity_tree(4);
        let source: NetlistSource = netlist.clone().into();
        let out = source
            .netlists()
            .expect("the parity_tree(4) fixture should pass through unchanged");
        assert_eq!(out[0].num_gates(), netlist.num_gates());
    }
}
