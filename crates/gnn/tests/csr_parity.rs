//! Parity suite for the CSR level-packed inference kernel.
//!
//! The CSR kernel ([`deepgate_gnn::CompiledKernel`]) is the serving hot
//! path; the legacy tensor path ([`DagRecGnn::predict_reference_into`]) is
//! the ground truth. This suite is the exactness gate:
//!
//! - **f32 mode** must be *bit-exact* with the reference path (`to_bits`
//!   equality, not epsilon closeness) on a fixed suite of ≥7 circuit shapes
//!   and on proptest-random circuits, across every aggregator and model
//!   variant.
//! - **int8 mode** must preserve the *rank order* of gate probabilities on
//!   every pair the f32 model separates by more than [`RANK_MARGIN`], and
//!   its per-node drift from f32 must stay under [`MAX_ABS_DRIFT`].

use deepgate_aig::Aig;
use deepgate_gnn::{
    AggregatorKind, CircuitGraph, DagRecConfig, DagRecGnn, FeatureEncoding, QuantMode,
};
use deepgate_netlist::{GateKind, Netlist, NodeId};
use deepgate_nn::ParamStore;
use proptest::prelude::*;

/// Minimum f32 probability separation at which int8 must agree on ordering.
/// Pairs closer than this are allowed to swap — quantization noise — but
/// any decision-relevant gap must survive.
const RANK_MARGIN: f32 = 0.05;

/// Maximum per-node |int8 − f32| probability drift.
const MAX_ABS_DRIFT: f32 = 0.05;

/// Expands an arbitrary netlist into AIG-gate form and builds its graph —
/// the same pipeline the engine facade runs.
fn graph_of(netlist: &Netlist) -> CircuitGraph {
    let aig = Aig::from_netlist(netlist).expect("maps to AIG");
    CircuitGraph::from_netlist(&aig.to_netlist(), FeatureEncoding::AigGates, None)
}

/// A NOT/buffer chain: the deepest, narrowest shape — every CSR level has
/// width 1, stressing per-level overhead and the reverse pass ordering.
fn shape_chain(depth: usize) -> Netlist {
    let mut n = Netlist::new("chain");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let mut cur = n.add_gate(GateKind::And, &[a, b]).unwrap();
    for _ in 0..depth {
        cur = n.add_gate(GateKind::Not, &[cur]).unwrap();
    }
    n.mark_output(cur, "y");
    n
}

/// A balanced AND tree: maximally wide levels that shrink geometrically —
/// the dense-slice best case for the CSR walk.
fn shape_tree(leaves: usize) -> Netlist {
    let mut n = Netlist::new("tree");
    let mut layer: Vec<NodeId> = (0..leaves).map(|i| n.add_input(format!("x{i}"))).collect();
    while layer.len() > 1 {
        let mut next = Vec::new();
        for pair in layer.chunks(2) {
            next.push(if pair.len() == 2 {
                n.add_gate(GateKind::And, &[pair[0], pair[1]]).unwrap()
            } else {
                pair[0]
            });
        }
        layer = next;
    }
    n.mark_output(layer[0], "y");
    n
}

/// The full adder: XOR decomposition introduces inverters and reconvergent
/// sharing through the AIG mapping, with two outputs.
fn shape_full_adder() -> Netlist {
    let mut n = Netlist::new("full_adder");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let cin = n.add_input("cin");
    let x = n.add_gate(GateKind::Xor, &[a, b]).unwrap();
    let sum = n.add_gate(GateKind::Xor, &[x, cin]).unwrap();
    let g1 = n.add_gate(GateKind::And, &[a, b]).unwrap();
    let g2 = n.add_gate(GateKind::And, &[x, cin]).unwrap();
    let cout = n.add_gate(GateKind::Or, &[g1, g2]).unwrap();
    n.mark_output(sum, "sum");
    n.mark_output(cout, "cout");
    n
}

/// A reconvergent diamond: one stem fans out and reconverges, producing
/// skip edges (the `use_skip_connections` path) on a minimal circuit.
fn shape_diamond() -> Netlist {
    let mut n = Netlist::new("diamond");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let c = n.add_input("c");
    let stem = n.add_gate(GateKind::And, &[a, b]).unwrap();
    let left = n.add_gate(GateKind::Not, &[stem]).unwrap();
    let right = n.add_gate(GateKind::And, &[stem, c]).unwrap();
    let join = n.add_gate(GateKind::And, &[left, right]).unwrap();
    n.mark_output(join, "y");
    n
}

/// Mixed gate kinds (NAND/NOR/XOR/OR): the AIG mapping spreads these across
/// several levels with inverters, so per-type regressor masks see every
/// node class.
fn shape_mixed() -> Netlist {
    let mut n = Netlist::new("mixed");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let c = n.add_input("c");
    let d = n.add_input("d");
    let g1 = n.add_gate(GateKind::Nand, &[a, b]).unwrap();
    let g2 = n.add_gate(GateKind::Nor, &[c, d]).unwrap();
    let g3 = n.add_gate(GateKind::Xor, &[g1, g2]).unwrap();
    let g4 = n.add_gate(GateKind::Or, &[g3, a]).unwrap();
    n.mark_output(g4, "y");
    n.mark_output(g2, "m");
    n
}

/// A wide multi-output comb: many independent 2-input gates at level 1 —
/// one wide CSR level, no depth, every gate an output.
fn shape_comb(width: usize) -> Netlist {
    let mut n = Netlist::new("comb");
    let inputs: Vec<NodeId> = (0..=width).map(|i| n.add_input(format!("x{i}"))).collect();
    for i in 0..width {
        let g = n
            .add_gate(GateKind::And, &[inputs[i], inputs[i + 1]])
            .unwrap();
        n.mark_output(g, format!("y{i}"));
    }
    n
}

/// A ladder with long-range reuse: every rung reuses an early stem, giving
/// many skip edges with large, varied level differences.
fn shape_ladder(rungs: usize) -> Netlist {
    let mut n = Netlist::new("ladder");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let stem = n.add_gate(GateKind::And, &[a, b]).unwrap();
    let mut cur = stem;
    for _ in 0..rungs {
        let inv = n.add_gate(GateKind::Not, &[cur]).unwrap();
        cur = n.add_gate(GateKind::And, &[inv, stem]).unwrap();
    }
    n.mark_output(cur, "y");
    n
}

/// The fixed shape suite: ≥7 structurally distinct circuit families.
fn shape_suite() -> Vec<CircuitGraph> {
    vec![
        graph_of(&shape_chain(9)),
        graph_of(&shape_tree(16)),
        graph_of(&shape_full_adder()),
        graph_of(&shape_diamond()),
        graph_of(&shape_mixed()),
        graph_of(&shape_comb(12)),
        graph_of(&shape_ladder(6)),
    ]
}

fn config(kind: AggregatorKind, fix: bool, skip: bool, per_type: bool) -> DagRecConfig {
    DagRecConfig {
        hidden_dim: 12,
        num_iterations: 3,
        regressor_hidden: 8,
        aggregator: kind,
        fix_gate_input: fix,
        use_skip_connections: skip,
        per_type_regressor: per_type,
        ..DagRecConfig::default()
    }
}

/// Reference-path probabilities.
fn reference_probs(model: &DagRecGnn, store: &ParamStore, circuit: &CircuitGraph) -> Vec<f32> {
    let plan = model.reference_plan(circuit);
    let mut out = Vec::new();
    model
        .predict_reference_into(
            store,
            circuit,
            &plan,
            model.config().num_iterations,
            &mut out,
        )
        .expect("reference path predicts");
    out
}

/// CSR-kernel probabilities in the given scoring mode.
fn csr_probs(
    model: &DagRecGnn,
    store: &ParamStore,
    circuit: &CircuitGraph,
    mode: QuantMode,
) -> Vec<f32> {
    let plan = model.plan(circuit);
    let kernel = model.compile(store, mode);
    let mut out = Vec::new();
    kernel
        .predict_into(&plan, model.config().num_iterations, &mut out, None)
        .expect("CSR kernel predicts");
    out
}

fn assert_bit_exact(reference: &[f32], csr: &[f32], context: &str) {
    assert_eq!(reference.len(), csr.len(), "{context}: length mismatch");
    for (i, (r, c)) in reference.iter().zip(csr).enumerate() {
        assert_eq!(
            r.to_bits(),
            c.to_bits(),
            "{context}: node {i} diverges: reference {r} vs CSR {c}"
        );
    }
}

/// Gate-node indices: every forward-batch target (inputs are excluded —
/// their embeddings are fixed and their probabilities near-constant).
fn gate_nodes(circuit: &CircuitGraph) -> Vec<usize> {
    circuit
        .forward_batches
        .iter()
        .flat_map(|b| b.targets.iter().copied())
        .collect()
}

/// Asserts int8 probabilities against their f32 counterparts: bounded
/// per-node drift and preserved ordering of every well-separated gate pair.
fn assert_quantized_faithful(exact: &[f32], quantized: &[f32], circuit: &CircuitGraph, ctx: &str) {
    let mut max_drift = 0.0f32;
    for (e, q) in exact.iter().zip(quantized) {
        max_drift = max_drift.max((e - q).abs());
    }
    assert!(
        max_drift <= MAX_ABS_DRIFT,
        "{ctx}: int8 drift {max_drift} exceeds {MAX_ABS_DRIFT}"
    );
    let gates = gate_nodes(circuit);
    for (a, &i) in gates.iter().enumerate() {
        for &j in &gates[a + 1..] {
            let gap = exact[i] - exact[j];
            if gap.abs() <= RANK_MARGIN {
                continue;
            }
            let qgap = quantized[i] - quantized[j];
            assert!(
                gap.signum() == qgap.signum() && qgap != 0.0,
                "{ctx}: rank order broken between nodes {i} ({} -> {}) and {j} ({} -> {})",
                exact[i],
                quantized[i],
                exact[j],
                quantized[j],
            );
        }
    }
}

#[test]
fn csr_f32_is_bit_exact_on_the_shape_suite_for_every_aggregator() {
    for circuit in shape_suite() {
        for kind in AggregatorKind::ALL {
            for (fix, skip, per_type) in [(false, false, false), (true, true, true)] {
                let mut store = ParamStore::new();
                let model = DagRecGnn::new(&mut store, config(kind, fix, skip, per_type));
                let reference = reference_probs(&model, &store, &circuit);
                let csr = csr_probs(&model, &store, &circuit, QuantMode::F32);
                let ctx = format!(
                    "{} kind={kind:?} fix={fix} skip={skip} per_type={per_type}",
                    circuit.name
                );
                assert_bit_exact(&reference, &csr, &ctx);
            }
        }
    }
}

#[test]
fn quantized_mode_preserves_rank_order_across_the_eval_suite() {
    // The exactness gate of the quantized scoring mode: across the whole
    // shape suite under the DeepGate configuration, int8 never reorders a
    // decision-relevant probability gap and never drifts past the bound.
    for circuit in shape_suite() {
        let mut store = ParamStore::new();
        let model = DagRecGnn::new(
            &mut store,
            config(AggregatorKind::Attention, true, true, true),
        );
        let exact = csr_probs(&model, &store, &circuit, QuantMode::F32);
        let quantized = csr_probs(&model, &store, &circuit, QuantMode::Int8);
        assert_quantized_faithful(&exact, &quantized, &circuit, &circuit.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// f32 CSR output is bit-exact with the reference path on random
    /// circuits under the full DeepGate configuration.
    #[test]
    fn csr_f32_is_bit_exact_on_random_circuits(
        netlist in random_netlist(30),
        variant in 0usize..4,
    ) {
        let circuit = graph_of(&netlist);
        let kind = AggregatorKind::ALL[variant];
        let mut store = ParamStore::new();
        let model = DagRecGnn::new(&mut store, config(kind, true, true, false));
        let reference = reference_probs(&model, &store, &circuit);
        let csr = csr_probs(&model, &store, &circuit, QuantMode::F32);
        prop_assert_eq!(reference.len(), csr.len());
        for (r, c) in reference.iter().zip(&csr) {
            prop_assert_eq!(r.to_bits(), c.to_bits());
        }
    }

    /// int8 scoring preserves rank order and bounded drift on random
    /// circuits.
    #[test]
    fn quantized_mode_is_faithful_on_random_circuits(netlist in random_netlist(30)) {
        let circuit = graph_of(&netlist);
        let mut store = ParamStore::new();
        let model = DagRecGnn::new(
            &mut store,
            config(AggregatorKind::Attention, true, true, true),
        );
        let exact = csr_probs(&model, &store, &circuit, QuantMode::F32);
        let quantized = csr_probs(&model, &store, &circuit, QuantMode::Int8);
        let mut max_drift = 0.0f32;
        for (e, q) in exact.iter().zip(&quantized) {
            max_drift = max_drift.max((e - q).abs());
        }
        prop_assert!(
            max_drift <= MAX_ABS_DRIFT,
            "int8 drift {} exceeds {}", max_drift, MAX_ABS_DRIFT
        );
        let gates = gate_nodes(&circuit);
        for (a, &i) in gates.iter().enumerate() {
            for &j in &gates[a + 1..] {
                let gap = exact[i] - exact[j];
                if gap.abs() <= RANK_MARGIN {
                    continue;
                }
                let qgap = quantized[i] - quantized[j];
                prop_assert!(
                    gap.signum() == qgap.signum() && qgap != 0.0,
                    "rank order broken: nodes {} ({} -> {}) vs {} ({} -> {})",
                    i, exact[i], quantized[i], j, exact[j], quantized[j]
                );
            }
        }
    }
}

/// Strategy: a random valid combinational netlist, as (gate kind, fan-in
/// picks) build steps over a random input count — the same construction the
/// workspace-level property suite uses.
fn random_netlist(max_gates: usize) -> impl Strategy<Value = Netlist> {
    let gate_steps = prop::collection::vec((0usize..6, any::<u64>(), any::<u64>()), 1..max_gates);
    (2usize..6, gate_steps).prop_map(|(num_inputs, steps)| {
        let mut netlist = Netlist::new("prop");
        let mut signals: Vec<NodeId> = (0..num_inputs)
            .map(|i| netlist.add_input(format!("x{i}")))
            .collect();
        let kinds = [
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Not,
        ];
        for (kind_idx, pick_a, pick_b) in steps {
            let kind = kinds[kind_idx];
            let a = signals[(pick_a % signals.len() as u64) as usize];
            let b = signals[(pick_b % signals.len() as u64) as usize];
            let id = if kind == GateKind::Not {
                netlist.add_gate(kind, &[a]).expect("valid arity")
            } else {
                netlist.add_gate(kind, &[a, b]).expect("valid arity")
            };
            signals.push(id);
        }
        let last = *signals.last().expect("at least one signal");
        netlist.mark_output(last, "y");
        let mid = signals[signals.len() / 2];
        netlist.mark_output(mid, "m");
        netlist
    })
}
