//! Reconvergence analysis.
//!
//! Reconvergent fan-out — a stem node whose fan-out branches meet again at a
//! later gate — is the main source of error for probabilistic circuit
//! analysis, and DeepGate treats reconvergence nodes as *first-class
//! citizens*: during data preparation every reconvergence node is annotated
//! with its source fan-out stem and the logic-level distance to it, and the
//! model adds a *skip connection* edge from the stem to the reconvergence
//! node whose attribute is a sinusoidal positional encoding of that distance
//! (Eq. 7 of the paper).
//!
//! The analysis here processes nodes in topological order and propagates, for
//! every node, the set of fan-out stems present in its transitive fan-in
//! within a bounded level distance. A node is reconvergent when the stem sets
//! reached through its two fan-ins intersect; the closest such stem (smallest
//! level difference) is recorded.

use crate::{Aig, AigNodeKind};
use deepgate_netlist::Netlist;
use serde::{Deserialize, Serialize};

/// Configuration of the reconvergence analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconvergenceConfig {
    /// Maximum logic-level distance between a stem and a reconvergence node;
    /// stems further away are not tracked (their influence on the node's
    /// signal probability decays with distance, which is exactly the prior
    /// the positional encoding captures).
    pub max_level_distance: usize,
    /// Maximum number of candidate stems tracked per node; the closest stems
    /// are kept when the budget is exceeded.
    pub max_tracked_stems: usize,
}

impl Default for ReconvergenceConfig {
    fn default() -> Self {
        ReconvergenceConfig {
            max_level_distance: 24,
            max_tracked_stems: 48,
        }
    }
}

/// Reconvergence record for a single node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconvergenceInfo {
    /// Node index of the source fan-out stem.
    pub source: usize,
    /// Logic-level difference between the reconvergence node and the stem.
    pub level_difference: usize,
}

/// Result of analysing an [`Aig`] for reconvergence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconvergenceAnalysis {
    per_node: Vec<Option<ReconvergenceInfo>>,
    num_stems: usize,
}

impl ReconvergenceAnalysis {
    /// Runs the analysis with the default configuration.
    pub fn of(aig: &Aig) -> Self {
        Self::with_config(aig, ReconvergenceConfig::default())
    }

    /// Runs the analysis with an explicit configuration.
    pub fn with_config(aig: &Aig, config: ReconvergenceConfig) -> Self {
        let fanout_counts = aig.fanout_counts();
        let (levels, _) = aig.levels();
        let fanins: Vec<Vec<usize>> = aig
            .iter()
            .map(|(_, node)| {
                if node.kind == AigNodeKind::And {
                    vec![node.fanin0.node(), node.fanin1.node()]
                } else {
                    Vec::new()
                }
            })
            .collect();
        analyse(&fanins, &levels, &fanout_counts, config)
    }

    /// Runs the analysis on a gate-level [`Netlist`] (used when the circuit
    /// graph is an explicit PI/AND/NOT expansion or an original-gate-type
    /// netlist for the "without transformation" experiments).
    pub fn of_netlist(netlist: &Netlist, config: ReconvergenceConfig) -> Self {
        let fanout_counts = netlist.fanout_counts();
        let levels = netlist.levels();
        let fanins: Vec<Vec<usize>> = netlist
            .iter()
            .map(|(_, node)| node.fanins.iter().map(|f| f.index()).collect())
            .collect();
        analyse(&fanins, &levels.level, &fanout_counts, config)
    }

    /// Reconvergence record of a node, if it is a reconvergence node.
    pub fn info(&self, node: usize) -> Option<ReconvergenceInfo> {
        self.per_node.get(node).copied().flatten()
    }

    /// Per-node records indexed by AIG node index.
    pub fn per_node(&self) -> &[Option<ReconvergenceInfo>] {
        &self.per_node
    }

    /// Number of reconvergence nodes found.
    pub fn num_reconvergence_nodes(&self) -> usize {
        self.per_node.iter().filter(|r| r.is_some()).count()
    }

    /// Number of fan-out stems (fan-out ≥ 2) in the analysed AIG.
    pub fn num_stems(&self) -> usize {
        self.num_stems
    }

    /// The skip-connection edge list `(stem, reconvergence_node,
    /// level_difference)` the DeepGate model adds to the circuit graph.
    pub fn skip_edges(&self) -> Vec<(usize, usize, usize)> {
        self.per_node
            .iter()
            .enumerate()
            .filter_map(|(node, info)| info.map(|i| (i.source, node, i.level_difference)))
            .collect()
    }
}

/// Core stem-set propagation shared by the AIG and netlist entry points.
///
/// A node is reconvergent when some fan-out stem is visible in the bounded
/// transitive fan-in of at least two of its fan-in branches; the closest such
/// stem (smallest level difference) is recorded.
fn analyse(
    fanins: &[Vec<usize>],
    levels: &[usize],
    fanout_counts: &[usize],
    config: ReconvergenceConfig,
) -> ReconvergenceAnalysis {
    let n = fanins.len();
    let is_stem: Vec<bool> = fanout_counts.iter().map(|&c| c >= 2).collect();
    let num_stems = is_stem.iter().filter(|&&s| s).count();
    let mut stem_sets: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut per_node: Vec<Option<ReconvergenceInfo>> = vec![None; n];

    for i in 0..n {
        let node_fanins = &fanins[i];
        if node_fanins.is_empty() {
            continue;
        }
        let level_i = levels[i];
        let keep = |stem: usize| {
            level_i >= levels[stem] && level_i - levels[stem] <= config.max_level_distance
        };

        // Stem set reached through each fan-in branch: the branch's own set
        // plus the branch node itself when it is a stem.
        let branches: Vec<Vec<usize>> = node_fanins
            .iter()
            .map(|&f| {
                let mut branch: Vec<usize> =
                    stem_sets[f].iter().copied().filter(|&s| keep(s)).collect();
                if is_stem[f] && keep(f) {
                    branch.push(f);
                }
                branch
            })
            .collect();

        // Reconvergence: a stem visible through at least two branches; pick
        // the one with the smallest level difference.
        let mut best: Option<ReconvergenceInfo> = None;
        if branches.len() >= 2 {
            for (bi, branch) in branches.iter().enumerate() {
                for &s in branch {
                    let seen_elsewhere = branches
                        .iter()
                        .enumerate()
                        .any(|(bj, other)| bj != bi && other.contains(&s));
                    if seen_elsewhere {
                        let diff = level_i - levels[s];
                        if best.is_none_or(|b| diff < b.level_difference) {
                            best = Some(ReconvergenceInfo {
                                source: s,
                                level_difference: diff,
                            });
                        }
                    }
                }
            }
        }
        per_node[i] = best;

        // The union of all branches becomes this node's stem set, capped to
        // the closest stems.
        let mut merged: Vec<usize> = Vec::new();
        for branch in branches {
            for s in branch {
                if !merged.contains(&s) {
                    merged.push(s);
                }
            }
        }
        merged.sort_by_key(|&s| std::cmp::Reverse(levels[s]));
        merged.truncate(config.max_tracked_stems);
        stem_sets[i] = merged;
    }

    ReconvergenceAnalysis {
        per_node,
        num_stems,
    }
}

/// Sinusoidal positional encoding γ(D) of a level difference (Eq. 7 of the
/// paper): `γ(D) = (sin(2^0 π D), cos(2^0 π D), …, sin(2^{L-1} π D),
/// cos(2^{L-1} π D))`, a vector of length `2 L`.
pub fn positional_encoding(level_difference: usize, l: usize) -> Vec<f32> {
    let d = level_difference as f32;
    let mut out = Vec::with_capacity(2 * l);
    for k in 0..l {
        // Following the NeRF-style formulation cited by the paper we use the
        // frequency 2^k · π but divide the distance by a scale to avoid the
        // encoding aliasing for integer D (sin(2^k π · integer) would always
        // be 0); the scale keeps nearby distances distinguishable.
        let freq = (2.0f32).powi(k as i32) * std::f32::consts::PI / 32.0;
        out.push((freq * d).sin());
        out.push((freq * d).cos());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AigLit;

    /// Builds the classic reconvergent structure: stem s = a·b fans out to
    /// two paths that reconverge at r.
    fn reconvergent_aig() -> (Aig, usize, usize) {
        let mut aig = Aig::new("recon");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let d = aig.add_input("d");
        let stem = aig.and(a, b);
        let p1 = aig.and(stem, c);
        let p2 = aig.and(stem, d);
        let recon = aig.and(p1, p2);
        aig.add_output(recon, "y");
        (aig, stem.node(), recon.node())
    }

    #[test]
    fn detects_simple_reconvergence() {
        let (aig, stem, recon) = reconvergent_aig();
        let analysis = ReconvergenceAnalysis::of(&aig);
        let info = analysis.info(recon).expect("reconvergence detected");
        assert_eq!(info.source, stem);
        assert_eq!(info.level_difference, 2);
        assert_eq!(analysis.num_reconvergence_nodes(), 1);
        assert!(analysis.num_stems() >= 1);
        let edges = analysis.skip_edges();
        assert_eq!(edges, vec![(stem, recon, 2)]);
    }

    #[test]
    fn tree_circuit_has_no_reconvergence() {
        let mut aig = Aig::new("tree");
        let inputs: Vec<AigLit> = (0..8).map(|i| aig.add_input(format!("x{i}"))).collect();
        let y = aig.and_many(&inputs);
        aig.add_output(y, "y");
        let analysis = ReconvergenceAnalysis::of(&aig);
        assert_eq!(analysis.num_reconvergence_nodes(), 0);
        assert!(analysis.skip_edges().is_empty());
    }

    #[test]
    fn xor_structure_is_reconvergent() {
        // xor(a, b) reconverges on both a and b; the closest stem must be
        // reported with level difference within the xor depth.
        let mut aig = Aig::new("xor");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.xor(a, b);
        aig.add_output(x, "y");
        let analysis = ReconvergenceAnalysis::of(&aig);
        let info = analysis.info(x.node()).expect("xor output reconverges");
        assert!(info.source == a.node() || info.source == b.node());
        assert_eq!(info.level_difference, 2);
    }

    #[test]
    fn respects_level_distance_bound() {
        let (aig, _, recon) = reconvergent_aig();
        let config = ReconvergenceConfig {
            max_level_distance: 1,
            max_tracked_stems: 8,
        };
        let analysis = ReconvergenceAnalysis::with_config(&aig, config);
        assert!(analysis.info(recon).is_none());
    }

    #[test]
    fn positional_encoding_shape_and_range() {
        let enc = positional_encoding(5, 8);
        assert_eq!(enc.len(), 16);
        assert!(enc.iter().all(|v| (-1.0..=1.0).contains(v)));
        // Distance 0 encodes as alternating (0, 1) pairs.
        let zero = positional_encoding(0, 4);
        for pair in zero.chunks(2) {
            assert!((pair[0] - 0.0).abs() < 1e-6);
            assert!((pair[1] - 1.0).abs() < 1e-6);
        }
        // Different distances produce different encodings.
        assert_ne!(positional_encoding(1, 8), positional_encoding(2, 8));
    }

    #[test]
    fn netlist_analysis_detects_reconvergence_through_nots() {
        use deepgate_netlist::{GateKind, Netlist};
        let mut n = Netlist::new("recon");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let stem = n.add_gate(GateKind::And, &[a, b]).unwrap();
        let inv = n.add_gate(GateKind::Not, &[stem]).unwrap();
        let p1 = n.add_gate(GateKind::And, &[stem, c]).unwrap();
        let p2 = n.add_gate(GateKind::And, &[inv, c]).unwrap();
        let recon = n.add_gate(GateKind::And, &[p1, p2]).unwrap();
        n.mark_output(recon, "y");
        let analysis = ReconvergenceAnalysis::of_netlist(&n, ReconvergenceConfig::default());
        let info = analysis.info(recon.index()).expect("reconvergence found");
        // Both c and stem reconverge at `recon`; the closest is reported.
        assert!(info.source == stem.index() || info.source == c.index());
        assert!(analysis.num_reconvergence_nodes() >= 1);
    }

    #[test]
    fn closest_stem_is_preferred() {
        // Two nested reconvergences: an outer stem far away and an inner stem
        // close by; the inner one must be chosen.
        let mut aig = Aig::new("nested");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let outer = aig.and(a, b); // stem 1
        let l = aig.and(outer, c);
        let r = aig.and(outer, a);
        let inner_l = aig.and(l, r); // reconverges on outer
        let inner_r = aig.and(l, r.complement());
        // inner stem: both l and r have fanout 2 now
        let top = aig.and(inner_l, inner_r);
        aig.add_output(top, "y");
        let analysis = ReconvergenceAnalysis::of(&aig);
        let info = analysis.info(top.node()).expect("top reconverges");
        // The closest reconvergence sources for `top` are l or r (distance 2),
        // not `outer` (distance 3).
        assert!(info.source == l.node() || info.source == r.node());
        assert_eq!(info.level_difference, 2);
    }
}
