//! The [`Engine`]: one coherent surface over dataset preparation, training,
//! evaluation, checkpointing and inference.

use crate::{CircuitSource, DeepGateError, EngineMetrics, InferenceSession};
use deepgate_aig::{opt, Aig};
use deepgate_core::{DeepGate, DeepGateConfig, Trainer, TrainerConfig, TrainingHistory};
use deepgate_dataset::{labelled_circuit_from_aig, labelled_circuit_from_netlist};
use deepgate_gnn::{CircuitGraph, FeatureEncoding, GnnError, QuantMode};
use deepgate_nn::Tensor;
use rayon::prelude::*;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Labelling and transformation settings shared by every circuit the engine
/// prepares.
#[derive(Debug, Clone, Copy)]
struct PipelineConfig {
    num_patterns: usize,
    label_seed: u64,
    transform_to_aig: bool,
    optimize: bool,
    optimize_rounds: usize,
}

/// Builder for an [`Engine`].
///
/// ```rust
/// use deepgate::{Engine, EngineBuilder};
/// use deepgate::core::DeepGateConfig;
///
/// let engine = Engine::builder()
///     .model(DeepGateConfig { hidden_dim: 16, num_iterations: 2, ..DeepGateConfig::default() })
///     .num_patterns(1024)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(engine.model_config().hidden_dim, 16);
/// ```
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    model: DeepGateConfig,
    trainer: TrainerConfig,
    pipeline: PipelineConfig,
    checkpoint_json: Option<String>,
    metrics: Option<Arc<EngineMetrics>>,
    quantize: QuantMode,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            model: DeepGateConfig::default(),
            trainer: TrainerConfig::default(),
            pipeline: PipelineConfig {
                num_patterns: 8_192,
                label_seed: 7,
                transform_to_aig: true,
                optimize: true,
                optimize_rounds: 2,
            },
            checkpoint_json: None,
            metrics: None,
            quantize: QuantMode::F32,
        }
    }
}

impl EngineBuilder {
    /// Creates a builder with the paper's defaults.
    pub fn new() -> Self {
        EngineBuilder::default()
    }

    /// Sets the model hyper-parameters (ignored when restoring from a
    /// checkpoint, which carries its own configuration).
    pub fn model(mut self, config: DeepGateConfig) -> Self {
        self.model = config;
        self
    }

    /// Sets the training hyper-parameters.
    pub fn trainer(mut self, config: TrainerConfig) -> Self {
        self.trainer = config;
        self
    }

    /// Sets the number of random simulation patterns used to label every
    /// circuit (default 8192).
    pub fn num_patterns(mut self, patterns: usize) -> Self {
        self.pipeline.num_patterns = patterns;
        self
    }

    /// Sets the labelling seed (default 7).
    pub fn label_seed(mut self, seed: u64) -> Self {
        self.pipeline.label_seed = seed;
        self
    }

    /// Selects whether circuits are normalised to AIG form before learning
    /// (default `true`, the DeepGate flow; `false` reproduces the Table IV
    /// ablation on raw gate types).
    pub fn transform_to_aig(mut self, transform: bool) -> Self {
        self.pipeline.transform_to_aig = transform;
        self
    }

    /// Enables or disables the AIG optimisation passes (default enabled).
    pub fn optimize_aig(mut self, optimize: bool) -> Self {
        self.pipeline.optimize = optimize;
        self
    }

    /// Attaches telemetry: every circuit the engine prepares and every
    /// planned prediction its sessions run records stage timings into the
    /// given [`EngineMetrics`] handles (see [`crate::telemetry`]). Without
    /// this the engine records nothing.
    pub fn metrics(mut self, metrics: Arc<EngineMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Selects the scoring mode of the inference kernel used by sessions
    /// this engine opens: [`QuantMode::F32`] (exact, the default) or
    /// [`QuantMode::Int8`] (quantized weights, rank-order-preserving
    /// probabilities). Training always runs in f32 — this only affects
    /// serving.
    pub fn quantize(mut self, mode: QuantMode) -> Self {
        self.quantize = mode;
        self
    }

    /// Restores model weights and configuration from a checkpoint produced
    /// by [`Engine::checkpoint_json`].
    pub fn from_checkpoint_json(mut self, json: impl Into<String>) -> Self {
        self.checkpoint_json = Some(json.into());
        self
    }

    /// Restores model weights and configuration from a checkpoint file
    /// written by [`Engine::save_checkpoint`].
    ///
    /// # Errors
    ///
    /// Returns [`DeepGateError::Io`] if the file cannot be read.
    pub fn from_checkpoint_file(self, path: impl AsRef<Path>) -> Result<Self, DeepGateError> {
        let path = path.as_ref();
        let json = std::fs::read_to_string(path).map_err(|e| DeepGateError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Ok(self.from_checkpoint_json(json))
    }

    /// Validates the configuration and constructs the engine.
    ///
    /// # Errors
    ///
    /// Returns [`DeepGateError::Config`] for inconsistent settings and
    /// [`DeepGateError::Nn`] for malformed checkpoints.
    pub fn build(self) -> Result<Engine, DeepGateError> {
        if self.pipeline.num_patterns == 0 {
            return Err(DeepGateError::Config(
                "num_patterns must be at least 1".to_string(),
            ));
        }
        let expected_dim = if self.pipeline.transform_to_aig {
            FeatureEncoding::AigGates.dimension()
        } else {
            FeatureEncoding::AllGates.dimension()
        };
        let model = match self.checkpoint_json {
            Some(json) => {
                let model = DeepGate::from_checkpoint(&json)?;
                if model.config().feature_dim != expected_dim {
                    return Err(DeepGateError::Config(format!(
                        "checkpoint feature_dim {} does not match the {} pipeline (expected {expected_dim})",
                        model.config().feature_dim,
                        if self.pipeline.transform_to_aig {
                            "AIG"
                        } else {
                            "raw-netlist"
                        },
                    )));
                }
                model
            }
            None => {
                if self.model.hidden_dim == 0 {
                    return Err(DeepGateError::Config(
                        "hidden_dim must be at least 1".to_string(),
                    ));
                }
                if self.model.num_iterations == 0 {
                    return Err(DeepGateError::Config(
                        "num_iterations must be at least 1".to_string(),
                    ));
                }
                if self.model.feature_dim != expected_dim {
                    return Err(DeepGateError::Config(format!(
                        "feature_dim {} does not match the {} pipeline (expected {expected_dim})",
                        self.model.feature_dim,
                        if self.pipeline.transform_to_aig {
                            "AIG"
                        } else {
                            "raw-netlist"
                        },
                    )));
                }
                DeepGate::new(self.model)
            }
        };
        Ok(Engine {
            model,
            trainer: self.trainer,
            pipeline: self.pipeline,
            metrics: self.metrics,
            quantize: self.quantize,
        })
    }
}

/// The unified DeepGate engine: circuit ingestion, labelling, training,
/// evaluation, checkpointing and inference behind one API.
///
/// Construct it with [`Engine::builder`]; feed it circuits through any
/// [`CircuitSource`]; hand the trained model to an [`InferenceSession`] for
/// batched serving.
#[derive(Debug)]
pub struct Engine {
    model: DeepGate,
    trainer: TrainerConfig,
    pipeline: PipelineConfig,
    metrics: Option<Arc<EngineMetrics>>,
    quantize: QuantMode,
}

impl Engine {
    /// Starts building an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// Restores an engine (default pipeline settings) from a checkpoint file
    /// written by [`Engine::save_checkpoint`] — the one-call loading path of
    /// the `deepgate-serve` CLI.
    ///
    /// # Errors
    ///
    /// Returns [`DeepGateError::Io`] if the file cannot be read,
    /// [`DeepGateError::Nn`] for malformed checkpoints and
    /// [`DeepGateError::Config`] if the checkpoint does not fit the default
    /// (AIG-transforming) pipeline.
    pub fn from_checkpoint_file(path: impl AsRef<Path>) -> Result<Engine, DeepGateError> {
        Engine::builder().from_checkpoint_file(path)?.build()
    }

    /// The model hyper-parameters.
    pub fn model_config(&self) -> DeepGateConfig {
        self.model.config()
    }

    /// The training hyper-parameters.
    pub fn trainer_config(&self) -> TrainerConfig {
        self.trainer
    }

    /// The underlying model (weights included).
    pub fn model(&self) -> &DeepGate {
        &self.model
    }

    /// Attaches (or replaces) the telemetry handles after construction —
    /// the serving layer registers its registry once and hands the engine
    /// its slice of it. Sessions opened *after* this call inherit the
    /// handles.
    pub fn set_metrics(&mut self, metrics: Arc<EngineMetrics>) {
        self.metrics = Some(metrics);
    }

    /// The attached telemetry handles, if any.
    pub fn engine_metrics(&self) -> Option<&Arc<EngineMetrics>> {
        self.metrics.as_ref()
    }

    /// Ingests circuits from a source and prepares them for learning:
    /// (optional) AIG transformation and optimisation, signal-probability
    /// labelling by logic simulation, and circuit-graph encoding. Circuits
    /// are processed in parallel.
    ///
    /// # Errors
    ///
    /// Propagates source, AIG and simulation errors as [`DeepGateError`].
    pub fn prepare(&self, source: &dyn CircuitSource) -> Result<Vec<CircuitGraph>, DeepGateError> {
        let netlists = source.netlists()?;
        let pipeline = self.pipeline;
        let metrics = self.metrics.as_deref();
        let graphs: Result<Vec<CircuitGraph>, DeepGateError> = netlists
            .par_iter()
            .enumerate()
            .map(|(index, netlist)| {
                let ingest_start = metrics.map(|_| Instant::now());
                let seed = pipeline.label_seed ^ ((index as u64 + 1) << 20);
                let graph = if pipeline.transform_to_aig {
                    let aig = Aig::from_netlist(netlist)?;
                    let aig = if pipeline.optimize {
                        opt::optimize(&aig, pipeline.optimize_rounds)
                    } else {
                        aig
                    };
                    Ok(labelled_circuit_from_aig(
                        &aig,
                        pipeline.num_patterns,
                        seed,
                    )?)
                } else {
                    Ok(labelled_circuit_from_netlist(
                        netlist,
                        FeatureEncoding::AllGates,
                        pipeline.num_patterns,
                        seed,
                    )?)
                };
                if let (Some(m), Some(start)) = (metrics, ingest_start) {
                    m.ingest_ns.record_duration(start.elapsed());
                }
                graph
            })
            .collect();
        graphs
    }

    /// Ingests circuits from a source for *serving*: the same (optional) AIG
    /// transformation, optimisation and graph encoding as [`Engine::prepare`],
    /// but without the simulation labelling pass — predictions do not need
    /// labels, and skipping simulation keeps request preparation cheap. This
    /// is the ingestion path of the `deepgate-serve` subsystem.
    ///
    /// # Errors
    ///
    /// Propagates source and AIG errors as [`DeepGateError`].
    pub fn prepare_unlabelled(
        &self,
        source: &dyn CircuitSource,
    ) -> Result<Vec<CircuitGraph>, DeepGateError> {
        let netlists = source.netlists()?;
        let pipeline = self.pipeline;
        let metrics = self.metrics.as_deref();
        netlists
            .par_iter()
            .map(|netlist| {
                let ingest_start = metrics.map(|_| Instant::now());
                let graph = if pipeline.transform_to_aig {
                    let aig = Aig::from_netlist(netlist)?;
                    let aig = if pipeline.optimize {
                        opt::optimize(&aig, pipeline.optimize_rounds)
                    } else {
                        aig
                    };
                    let (graph, _) = CircuitGraph::from_aig(&aig);
                    Ok(graph)
                } else {
                    Ok(CircuitGraph::from_netlist(
                        netlist,
                        FeatureEncoding::AllGates,
                        None,
                    ))
                };
                if let (Some(m), Some(start)) = (metrics, ingest_start) {
                    m.ingest_ns.record_duration(start.elapsed());
                }
                graph
            })
            .collect()
    }

    /// Trains the model on prepared circuits (fresh Adam state per call),
    /// evaluating on `valid` per the trainer configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DeepGateError::Gnn`] for unlabelled or incompatible
    /// circuits — both checked before any optimiser step runs, so the model
    /// weights are untouched on error.
    pub fn train(
        &mut self,
        train: &[CircuitGraph],
        valid: &[CircuitGraph],
    ) -> Result<TrainingHistory, DeepGateError> {
        // The trainer pre-checks labels; the encoding check needs the model
        // configuration, so it lives here — also before any step runs.
        let expected = self.model.config().feature_dim;
        for circuit in train.iter().chain(valid) {
            let got = circuit.encoding.dimension();
            if got != expected {
                return Err(DeepGateError::Gnn(GnnError::EncodingMismatch {
                    expected,
                    got,
                }));
            }
        }
        let inner = self.model.model().clone();
        let mut trainer = Trainer::new(self.trainer);
        Ok(trainer.train(&inner, self.model.store_mut(), train, valid)?)
    }

    /// Convenience: [`Engine::prepare`] then [`Engine::train`] on everything
    /// the source yields (no validation split).
    ///
    /// # Errors
    ///
    /// Propagates preparation and training errors.
    pub fn fit(&mut self, source: &dyn CircuitSource) -> Result<TrainingHistory, DeepGateError> {
        let circuits = self.prepare(source)?;
        if circuits.is_empty() {
            return Err(DeepGateError::EmptyBatch);
        }
        self.train(&circuits, &[])
    }

    /// Average prediction error (Eq. 8) over labelled circuits.
    ///
    /// # Errors
    ///
    /// Returns [`DeepGateError::Gnn`] for unlabelled or incompatible
    /// circuits.
    pub fn evaluate(&self, circuits: &[CircuitGraph]) -> Result<f64, DeepGateError> {
        Ok(self.model.evaluate(circuits)?)
    }

    /// Predicts per-node signal probabilities for one circuit.
    ///
    /// # Errors
    ///
    /// Returns [`DeepGateError::Gnn`] if the circuit's feature encoding does
    /// not match the model.
    pub fn predict(&self, circuit: &CircuitGraph) -> Result<Vec<f32>, DeepGateError> {
        Ok(self.model.try_predict(circuit)?)
    }

    /// Returns the learned per-gate embeddings `h_v^T` of a circuit.
    ///
    /// # Errors
    ///
    /// Returns [`DeepGateError::Gnn`] if the circuit's feature encoding does
    /// not match the model.
    pub fn embeddings(&self, circuit: &CircuitGraph) -> Result<Tensor, DeepGateError> {
        Ok(self.model.try_embeddings(circuit)?)
    }

    /// Serialises the model (configuration + weights) to a JSON checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`DeepGateError::Nn`] if serialisation fails.
    pub fn checkpoint_json(&self) -> Result<String, DeepGateError> {
        Ok(self.model.to_checkpoint()?)
    }

    /// Writes the checkpoint to a file.
    ///
    /// # Errors
    ///
    /// Returns [`DeepGateError::Nn`] for serialisation failures and
    /// [`DeepGateError::Io`] for filesystem failures.
    pub fn save_checkpoint(&self, path: impl AsRef<Path>) -> Result<(), DeepGateError> {
        let path = path.as_ref();
        let json = self.checkpoint_json()?;
        std::fs::write(path, json).map_err(|e| DeepGateError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })
    }

    /// The scoring mode sessions opened by this engine use.
    pub fn quantization(&self) -> QuantMode {
        self.quantize
    }

    /// Opens an inference session over a clone of the current weights (the
    /// engine stays available for further training). The session inherits
    /// the engine's telemetry handles and scoring mode.
    pub fn session(&self) -> InferenceSession {
        let session = InferenceSession::new(self.model.clone()).with_quantization(self.quantize);
        match &self.metrics {
            Some(metrics) => session.with_metrics(Arc::clone(metrics)),
            None => session,
        }
    }

    /// Consumes the engine into an inference session without cloning the
    /// weights. The session inherits the engine's telemetry handles and
    /// scoring mode.
    pub fn into_session(self) -> InferenceSession {
        let session = InferenceSession::new(self.model).with_quantization(self.quantize);
        match self.metrics {
            Some(metrics) => session.with_metrics(metrics),
            None => session,
        }
    }
}
