//! Serving-throughput load generator: the `deepgate-serve` micro-batching
//! server under concurrent TCP clients versus a sequential
//! predict-per-request baseline, over repeated benchmark-suite circuits.
//!
//! Writes a `BENCH_serving.json` baseline (throughput, latency percentiles,
//! batching and cache statistics, plus a 512-connection C10K sweep proving
//! the event loop's flat thread model) into the current directory. Accepts
//! `--full` / `DEEPGATE_FULL=1` for a larger sweep like the table binaries.
//!
//! ```bash
//! cargo run --release -p deepgate-bench --bin bench_serving
//! ```

use deepgate::prelude::*;
use deepgate_bench::Scale;
use deepgate_serve::{ServeConfig, Server};
use serde::{Serialize, Value};
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

/// The JSON baseline written for future PRs to compare against.
#[derive(Debug, Serialize)]
struct ServingBaseline {
    scale: String,
    clients: usize,
    requests: usize,
    distinct_circuits: usize,
    sequential_s: f64,
    sequential_rps: f64,
    server_s: f64,
    server_rps: f64,
    speedup: f64,
    latency_p50_ms: f64,
    latency_p90_ms: f64,
    latency_p99_ms: f64,
    /// Server-side end-to-end request latency percentiles, scraped from the
    /// `metrics` wire verb (`request_latency_ns`) — unlike the client-side
    /// numbers above, these exclude client-thread scheduling noise.
    server_latency_p50_ms: f64,
    server_latency_p90_ms: f64,
    server_latency_p99_ms: f64,
    /// The server's `batch_size` histogram as `[upper_bound, count]` pairs
    /// (non-empty buckets only, ascending).
    batch_size_histogram: Vec<(u64, u64)>,
    mean_batch: f64,
    max_batch_observed: u64,
    deduplicated: u64,
    cache_hits: u64,
    cache_misses: u64,
    exact_match: bool,
    worker_threads: usize,
    /// Deadline sweep: the same cached circuits under a tight and a loose
    /// `deadline_ms`, counting how many requests completed versus were shed
    /// with `DeadlineExceeded` before inference.
    deadline_tight_ms: u64,
    deadline_tight_completed: u64,
    deadline_tight_shed: u64,
    deadline_loose_ms: u64,
    deadline_loose_completed: u64,
    deadline_loose_shed: u64,
    /// The server's own `scheduler_deadline_shed_total` counter after the
    /// sweep — must equal the client-observed shed total.
    deadline_shed_total: u64,
    /// C10K sweep: this many clients hold their sockets open *simultaneously*
    /// on the event-driven front end while round-tripping cached circuits.
    c10k_connections: usize,
    /// Peak of the server's `connections_open` gauge with the fleet held —
    /// must reach the full fleet size.
    c10k_connections_open_peak: u64,
    /// Serving-stack OS threads at peak fleet (event loop + workers; 0 where
    /// `/proc` is unavailable). The blocking front end would sit at
    /// `c10k_connections + 1` here.
    c10k_server_threads: usize,
    c10k_requests: usize,
    c10k_s: f64,
    c10k_rps: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank]
}

fn predict_request(text: &str) -> String {
    let mut object = std::collections::BTreeMap::new();
    object.insert("id".to_string(), Value::UInt(0));
    object.insert("bench".to_string(), Value::Str(text.to_string()));
    let mut line = serde_json::to_string(&Value::Object(object)).expect("request serialises");
    line.push('\n');
    line
}

fn predict_request_with_deadline(text: &str, deadline_ms: u64) -> String {
    let mut object = std::collections::BTreeMap::new();
    object.insert("id".to_string(), Value::UInt(0));
    object.insert("bench".to_string(), Value::Str(text.to_string()));
    object.insert("deadline_ms".to_string(), Value::UInt(deadline_ms));
    let mut line = serde_json::to_string(&Value::Object(object)).expect("request serialises");
    line.push('\n');
    line
}

/// Fires `clients * per_client` deadline-budgeted requests at the server and
/// counts client-observed outcomes: `(completed, shed)`. Any error other
/// than `DeadlineExceeded` is a bench failure.
fn deadline_phase(
    addr: std::net::SocketAddr,
    texts: &[String],
    clients: usize,
    per_client: usize,
    deadline_ms: u64,
) -> (u64, u64) {
    let workers: Vec<_> = (0..clients)
        .map(|client| {
            let texts = texts.to_vec();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connects");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut writer = stream;
                let (mut completed, mut shed) = (0u64, 0u64);
                for request in 0..per_client {
                    let which = (client + request) % texts.len();
                    let line = predict_request_with_deadline(&texts[which], deadline_ms);
                    writer.write_all(line.as_bytes()).expect("request written");
                    let mut response = String::new();
                    reader.read_line(&mut response).expect("response arrives");
                    let response: Value =
                        serde_json::from_str(&response).expect("server responses are JSON");
                    let object = response.as_object().expect("object response");
                    match object.get("error") {
                        None => completed += 1,
                        Some(Value::Str(error)) if error.contains("deadline exceeded") => {
                            shed += 1;
                        }
                        Some(other) => panic!("unexpected error under deadline: {other:?}"),
                    }
                }
                (completed, shed)
            })
        })
        .collect();
    workers.into_iter().fold((0, 0), |(done, cut), worker| {
        let (completed, shed) = worker.join().expect("client thread");
        (done + completed, cut + shed)
    })
}

/// One `metrics` round trip on an already-connected control socket,
/// returning the response's `metrics` object.
fn scrape_metrics(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream) -> Value {
    writer
        .write_all(b"{\"op\":\"metrics\"}\n")
        .expect("scrape written");
    let mut line = String::new();
    reader.read_line(&mut line).expect("scrape response");
    let response: Value = serde_json::from_str(&line).expect("metrics response is JSON");
    response
        .as_object()
        .and_then(|o| o.get("metrics"))
        .cloned()
        .expect("metrics response carries a `metrics` object")
}

fn scrape_gauge(metrics: &Value, name: &str) -> u64 {
    let gauge = metrics
        .as_object()
        .and_then(|o| o.get("gauges"))
        .and_then(Value::as_object)
        .and_then(|g| g.get(name));
    match gauge {
        Some(Value::UInt(v)) => *v,
        Some(Value::Int(v)) if *v >= 0 => *v as u64,
        other => panic!("gauge `{name}` missing or negative: {other:?}"),
    }
}

/// How many live threads of this process belong to the serving stack.
/// Thread names truncate to 15 bytes in `/proc`, so every server thread
/// ("deepgate-serve-loop", "deepgate-serve-worker-N") reads as the shared
/// "deepgate-serve-" prefix. Returns 0 where `/proc` is unavailable.
fn server_thread_count() -> usize {
    #[cfg(target_os = "linux")]
    {
        std::fs::read_dir("/proc/self/task")
            .map(|tasks| {
                tasks
                    .filter_map(|entry| entry.ok())
                    .filter(|entry| {
                        std::fs::read_to_string(entry.path().join("comm"))
                            .is_ok_and(|name| name.trim_end().starts_with("deepgate-serve"))
                    })
                    .count()
            })
            .unwrap_or(0)
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// The C10K sweep: `fleet` clients connect (paced, so the kernel accept
/// backlog never overflows), all hold their sockets open while the
/// `connections_open` gauge and the serving thread count are sampled at
/// peak, then each round-trips `per_client` cached-circuit requests on its
/// held connection. Returns `(gauge_peak, serving_threads, elapsed_s)`.
fn c10k_phase(
    addr: std::net::SocketAddr,
    texts: &[String],
    fleet: usize,
    per_client: usize,
) -> (u64, usize, f64) {
    let connected = Arc::new(Barrier::new(fleet + 1));
    let release = Arc::new(Barrier::new(fleet + 1));
    let pace = Arc::new(Mutex::new(()));
    let clients: Vec<_> = (0..fleet)
        .map(|client| {
            let texts = texts.to_vec();
            let connected = Arc::clone(&connected);
            let release = Arc::clone(&release);
            let pace = Arc::clone(&pace);
            std::thread::spawn(move || {
                let stream = {
                    let _pace = pace.lock().expect("pacing lock");
                    TcpStream::connect(addr).expect("connects")
                };
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut writer = stream;
                // An empty line (skipped silently by the server): its data
                // forces any handshake that raced the accept queue to
                // materialise server-side before the peak-fleet checks.
                writer.write_all(b"\n").expect("probe written");
                connected.wait();
                release.wait();
                for request in 0..per_client {
                    let line = predict_request(&texts[(client + request) % texts.len()]);
                    writer.write_all(line.as_bytes()).expect("request written");
                    let mut response = String::new();
                    reader.read_line(&mut response).expect("response arrives");
                    let _ = response_probs(&response);
                }
            })
        })
        .collect();
    connected.wait();

    // Every client socket is connected and held; admission is asynchronous,
    // so poll the gauge up to a deadline.
    let control = TcpStream::connect(addr).expect("connects");
    let mut control_reader = BufReader::new(control.try_clone().expect("clone"));
    let mut control_writer = control;
    let deadline = Instant::now() + Duration::from_secs(30);
    let peak = loop {
        let open = scrape_gauge(
            &scrape_metrics(&mut control_reader, &mut control_writer),
            "connections_open",
        );
        if open >= fleet as u64 || Instant::now() >= deadline {
            break open;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    let threads = server_thread_count();

    let start = Instant::now();
    release.wait();
    for client in clients {
        client.join().expect("client thread");
    }
    (peak, threads, start.elapsed().as_secs_f64())
}

/// Scrapes the server's `metrics` wire verb and extracts one histogram's
/// fields: `(p50, p90, p99, buckets)`.
fn scrape_histogram(metrics: &Value, name: &str) -> (u64, u64, u64, Vec<(u64, u64)>) {
    let histogram = metrics
        .as_object()
        .and_then(|o| o.get("histograms"))
        .and_then(Value::as_object)
        .and_then(|o| o.get(name))
        .and_then(Value::as_object)
        .unwrap_or_else(|| panic!("metrics response lacks histogram `{name}`"));
    let uint = |key: &str| match histogram.get(key) {
        Some(Value::UInt(v)) => *v,
        other => panic!("`{name}.{key}` is not an unsigned integer: {other:?}"),
    };
    let buckets = histogram
        .get("buckets")
        .and_then(Value::as_array)
        .expect("buckets array")
        .iter()
        .map(|pair| {
            let pair = pair.as_array().expect("bucket pair");
            match (&pair[0], &pair[1]) {
                (Value::UInt(le), Value::UInt(count)) => (*le, *count),
                other => panic!("non-integer bucket pair {other:?}"),
            }
        })
        .collect();
    (uint("p50"), uint("p90"), uint("p99"), buckets)
}

fn response_probs(line: &str) -> Vec<f32> {
    let response: Value = serde_json::from_str(line).expect("server responses are JSON");
    let object = response.as_object().expect("object response");
    if let Some(Value::Str(error)) = object.get("error") {
        panic!("server returned an error: {error}");
    }
    object
        .get("probs")
        .and_then(Value::as_array)
        .expect("probs array")
        .iter()
        .map(|v| match v {
            Value::Float(f) => *f as f32,
            Value::UInt(u) => *u as f32,
            Value::Int(i) => *i as f32,
            other => panic!("non-numeric probability {other:?}"),
        })
        .collect()
}

fn main() {
    let scale = Scale::from_env_and_args();
    let (clients, per_client, distinct) = match scale {
        Scale::Quick => (64usize, 6usize, 12usize),
        Scale::Full => (64, 32, 16),
    };
    let requests = clients * per_client;

    // The serving fleet: distinct suite circuits as BENCH interchange text,
    // the format requests arrive in.
    let suites = [
        SuiteKind::Itc99,
        SuiteKind::Iwls,
        SuiteKind::Epfl,
        SuiteKind::Opencores,
    ];
    let mut texts: Vec<String> = Vec::new();
    'outer: for round in 0.. {
        for (i, &suite) in suites.iter().enumerate() {
            if texts.len() >= distinct {
                break 'outer;
            }
            let netlist = suite.generate_design(round, 90 + i as u64, 0.12);
            texts.push(deepgate::netlist::bench::write(&netlist));
        }
    }

    // Identical weights on both sides, via a checkpoint round trip.
    let engine = Engine::builder()
        .model(DeepGateConfig {
            hidden_dim: 32,
            num_iterations: 6,
            ..DeepGateConfig::default()
        })
        .build()
        .expect("valid configuration");
    let checkpoint = engine.checkpoint_json().expect("checkpoint serialises");
    let server_engine = Engine::builder()
        .from_checkpoint_json(checkpoint)
        .build()
        .expect("checkpoint restores");

    eprintln!(
        "[bench_serving] {requests} requests over {} distinct circuits, {clients} clients",
        texts.len()
    );

    // ---- Sequential predict-per-request baseline: the architecture without
    // the serving subsystem — every request parses, transforms, encodes,
    // plans and predicts on its own, one at a time.
    let session = engine.session();
    let mut expected: Vec<Vec<f32>> = Vec::new();
    for text in &texts {
        let circuit = engine
            .prepare_unlabelled(&BenchText::new("warmup", text.clone()))
            .expect("suite circuits parse")
            .pop()
            .expect("one circuit");
        expected.push(session.predict(&circuit).expect("predicts"));
    }
    let sequential_start = Instant::now();
    for index in 0..requests {
        let text = &texts[index % texts.len()];
        let circuit = engine
            .prepare_unlabelled(&BenchText::new("request", text.clone()))
            .expect("suite circuits parse")
            .pop()
            .expect("one circuit");
        let probs = session.predict(&circuit).expect("predicts");
        assert_eq!(probs.len(), expected[index % texts.len()].len());
    }
    let sequential_s = sequential_start.elapsed().as_secs_f64();
    eprintln!(
        "[bench_serving] sequential baseline: {sequential_s:.2}s ({:.1} req/s)",
        requests as f64 / sequential_s
    );

    // ---- The micro-batching server under concurrent load.
    let server = Server::start(
        server_engine,
        ServeConfig {
            // Sync clients cap in-flight requests at `clients`; a deep batch
            // lets one drain pick up most of them, which maximises both
            // in-batch deduplication and union fusing.
            max_batch: clients,
            batch_window: Duration::from_millis(2),
            queue_depth: 4096,
            cache_capacity: 64,
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr();

    // One warm-up pass so both architectures are measured in steady state
    // (the baseline has no state to warm).
    {
        let stream = TcpStream::connect(addr).expect("connects");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        for text in &texts {
            writer
                .write_all(predict_request(text).as_bytes())
                .expect("request written");
            let mut line = String::new();
            reader.read_line(&mut line).expect("response arrives");
            let _ = response_probs(&line);
        }
    }

    let server_start = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|client| {
            let texts = texts.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connects");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut writer = stream;
                let mut latencies = Vec::with_capacity(per_client);
                let mut exact = true;
                for request in 0..per_client {
                    let which = (client + request) % texts.len();
                    let line = predict_request(&texts[which]);
                    let start = Instant::now();
                    writer.write_all(line.as_bytes()).expect("request written");
                    let mut response = String::new();
                    reader.read_line(&mut response).expect("response arrives");
                    latencies.push(start.elapsed().as_secs_f64() * 1e3);
                    exact &= response_probs(&response) == expected[which];
                }
                (latencies, exact)
            })
        })
        .collect();
    let mut latencies: Vec<f64> = Vec::with_capacity(requests);
    let mut exact_match = true;
    for worker in workers {
        let (mut client_latencies, exact) = worker.join().expect("client thread");
        latencies.append(&mut client_latencies);
        exact_match &= exact;
    }
    let server_s = server_start.elapsed().as_secs_f64();
    let stats = server.stats();

    // Server-side telemetry, scraped over the wire like a monitoring agent
    // would: end-to-end latency percentiles from `request_latency_ns` and
    // the batch-size distribution, all from one consistent snapshot.
    let server_metrics = {
        let stream = TcpStream::connect(addr).expect("connects");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        scrape_metrics(&mut reader, &mut writer)
    };
    let (latency_p50_ns, latency_p90_ns, latency_p99_ns, _) =
        scrape_histogram(&server_metrics, "request_latency_ns");
    let (_, _, _, batch_size_histogram) = scrape_histogram(&server_metrics, "batch_size");

    // ---- C10K sweep: the event-driven front end holding the full fleet of
    // sockets open at once, thread count flat, then serving the fleet's
    // (cache-warm) requests.
    let (c10k_connections, c10k_per_client) = match scale {
        Scale::Quick => (512usize, 2usize),
        Scale::Full => (512, 8),
    };
    let c10k_requests = c10k_connections * c10k_per_client;
    let (c10k_peak, c10k_threads, c10k_s) =
        c10k_phase(addr, &texts, c10k_connections, c10k_per_client);
    let c10k_rps = c10k_requests as f64 / c10k_s;
    eprintln!(
        "[bench_serving] c10k: {c10k_connections} connections held (gauge peak {c10k_peak}), \
         {c10k_threads} serving threads, {c10k_rps:.1} req/s"
    );
    assert!(
        c10k_peak >= c10k_connections as u64,
        "connections_open peaked at {c10k_peak}, wanted the full fleet of {c10k_connections}"
    );
    if c10k_threads > 0 {
        let budget = ServeConfig::default().workers + 3;
        assert!(
            c10k_threads <= budget,
            "thread count not flat: {c10k_threads} serving threads for \
             {c10k_connections} connections (budget {budget})"
        );
    }

    // ---- Deadline sweep: the same cached circuits resubmitted under a
    // budget. Tight (the batch window itself) exercises shed-before-infer
    // under load; loose verifies budgeted traffic is otherwise unaffected.
    let (deadline_tight_ms, deadline_loose_ms) = (2u64, 60_000u64);
    let (tight_completed, tight_shed) =
        deadline_phase(addr, &texts, clients, per_client, deadline_tight_ms);
    let (loose_completed, loose_shed) =
        deadline_phase(addr, &texts, clients, per_client, deadline_loose_ms);
    eprintln!(
        "[bench_serving] deadline sweep: {deadline_tight_ms}ms -> {tight_shed}/{} shed, \
         {deadline_loose_ms}ms -> {loose_shed}/{} shed",
        tight_completed + tight_shed,
        loose_completed + loose_shed,
    );
    let deadline_shed_total = server.stats().scheduler.deadline_shed;
    assert_eq!(
        deadline_shed_total,
        tight_shed + loose_shed,
        "server-side shed counter must match client-observed sheds"
    );
    server.shutdown();

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let baseline = ServingBaseline {
        scale: scale.label().to_string(),
        clients,
        requests,
        distinct_circuits: texts.len(),
        sequential_s,
        sequential_rps: requests as f64 / sequential_s,
        server_s,
        server_rps: requests as f64 / server_s,
        speedup: sequential_s / server_s,
        latency_p50_ms: percentile(&latencies, 0.50),
        latency_p90_ms: percentile(&latencies, 0.90),
        latency_p99_ms: percentile(&latencies, 0.99),
        server_latency_p50_ms: latency_p50_ns as f64 / 1e6,
        server_latency_p90_ms: latency_p90_ns as f64 / 1e6,
        server_latency_p99_ms: latency_p99_ns as f64 / 1e6,
        batch_size_histogram,
        mean_batch: if stats.scheduler.batches == 0 {
            0.0
        } else {
            stats.scheduler.batched as f64 / stats.scheduler.batches as f64
        },
        max_batch_observed: stats.scheduler.max_batch_observed,
        deduplicated: stats.scheduler.deduplicated,
        cache_hits: stats.cache.hits,
        cache_misses: stats.cache.misses,
        exact_match,
        worker_threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        deadline_tight_ms,
        deadline_tight_completed: tight_completed,
        deadline_tight_shed: tight_shed,
        deadline_loose_ms,
        deadline_loose_completed: loose_completed,
        deadline_loose_shed: loose_shed,
        deadline_shed_total,
        c10k_connections,
        c10k_connections_open_peak: c10k_peak,
        c10k_server_threads: c10k_threads,
        c10k_requests,
        c10k_s,
        c10k_rps,
    };

    println!(
        "sequential : {:>8.1} req/s\n\
         served     : {:>8.1} req/s ({:.2}x)\n\
         latency    : p50 {:.1} ms, p90 {:.1} ms, p99 {:.1} ms\n\
         server side: p50 {:.1} ms, p90 {:.1} ms, p99 {:.1} ms\n\
         batching   : mean {:.1}, max {}, {} deduplicated\n\
         cache      : {} hits / {} misses\n\
         deadlines  : {}ms -> {} shed, {}ms -> {} shed\n\
         c10k       : {} conns held, {} serving threads, {:>8.1} req/s\n\
         exact      : {}",
        baseline.sequential_rps,
        baseline.server_rps,
        baseline.speedup,
        baseline.latency_p50_ms,
        baseline.latency_p90_ms,
        baseline.latency_p99_ms,
        baseline.server_latency_p50_ms,
        baseline.server_latency_p90_ms,
        baseline.server_latency_p99_ms,
        baseline.mean_batch,
        baseline.max_batch_observed,
        baseline.deduplicated,
        baseline.cache_hits,
        baseline.cache_misses,
        baseline.deadline_tight_ms,
        baseline.deadline_tight_shed,
        baseline.deadline_loose_ms,
        baseline.deadline_loose_shed,
        baseline.c10k_connections,
        baseline.c10k_server_threads,
        baseline.c10k_rps,
        baseline.exact_match,
    );

    let json = serde_json::to_string_pretty(&baseline).expect("baseline serialises");
    let path = "BENCH_serving.json";
    std::fs::write(path, json).expect("baseline written");
    eprintln!("[bench_serving] baseline written to {path}");

    assert!(
        exact_match,
        "served predictions diverged from the sequential baseline"
    );
    if baseline.speedup < 2.0 {
        eprintln!(
            "[bench_serving] WARNING: speedup {:.2}x below the 2x serving target",
            baseline.speedup
        );
    }
}
