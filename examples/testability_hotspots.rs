//! Testability screening of a large design without running full logic
//! simulation: a trained DeepGate model predicts per-gate signal
//! probabilities on a processor-like datapath, and gates with extreme
//! probabilities are flagged as random-pattern-resistant hotspots — the
//! classic test-point-insertion use case cited in the paper's introduction.
//!
//! ```bash
//! cargo run --release --example testability_hotspots
//! ```

use deepgate::aig::Aig;
use deepgate::core::{DeepGate, DeepGateConfig, Trainer, TrainerConfig};
use deepgate::dataset::{generators, labelled_circuit_from_aig, LargeDesign};
use deepgate::gnn::evaluate_prediction_error;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train on small arithmetic/control blocks.
    let mut train = Vec::new();
    for (i, netlist) in [
        generators::alu(6),
        generators::ripple_carry_adder(8),
        generators::decoder(4),
        generators::masked_arbiter(8),
    ]
    .iter()
    .enumerate()
    {
        let aig = Aig::from_netlist(netlist)?;
        train.push(labelled_circuit_from_aig(&aig, 4_096, i as u64)?);
    }
    let mut model = DeepGate::new(DeepGateConfig {
        hidden_dim: 32,
        num_iterations: 4,
        ..DeepGateConfig::default()
    });
    let mut trainer = Trainer::new(TrainerConfig {
        epochs: 15,
        learning_rate: 3e-3,
        ..TrainerConfig::default()
    });
    let inner = model.model().clone();
    trainer.train(&inner, model.store_mut(), &train, &[]);

    // Screen a (scaled-down) processor datapath the model never saw.
    let design = LargeDesign::Processor80386.generate(0.1);
    let aig = Aig::from_netlist(&design)?;
    let circuit = labelled_circuit_from_aig(&aig, 8_192, 77)?;
    let predictions = model.predict(&circuit);
    let error = evaluate_prediction_error(&predictions, &circuit);
    println!(
        "screened `{}`: {} gates, prediction error vs simulation {:.4}",
        design.name(),
        circuit.num_gates(),
        error
    );

    // Rank gates by predicted controllability skew.
    let mut hotspots: Vec<(usize, f32)> = (0..circuit.num_nodes)
        .filter(|&i| circuit.gate_mask[i])
        .map(|i| (i, predictions[i]))
        .collect();
    hotspots.sort_by(|a, b| {
        (a.1 - 0.5)
            .abs()
            .partial_cmp(&(b.1 - 0.5).abs())
            .expect("probabilities are finite")
            .reverse()
    });
    println!("top random-pattern-resistant candidates (predicted vs simulated P(1)):");
    let labels = circuit.labels.as_ref().expect("labelled");
    for (gate, predicted) in hotspots.iter().take(8) {
        println!(
            "  gate {gate:5} level {:3}: predicted {predicted:.3}, simulated {:.3}",
            circuit.levels[*gate], labels[*gate]
        );
    }
    Ok(())
}
