use std::fmt;

/// Errors produced while constructing or parsing netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A gate was created with a fan-in count that its [`crate::GateKind`]
    /// does not accept (e.g. a `NOT` gate with two fan-ins).
    ArityMismatch {
        /// The offending gate kind.
        kind: &'static str,
        /// Number of fan-ins that were supplied.
        got: usize,
    },
    /// A referenced node id does not exist in the netlist.
    UnknownNode(usize),
    /// A signal name was referenced before being defined and never resolved
    /// (BENCH parsing).
    UndefinedSignal(String),
    /// A signal name was defined twice (BENCH parsing).
    DuplicateSignal(String),
    /// The BENCH text could not be parsed at the given line.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// Adding the edge would create a combinational cycle.
    Cycle {
        /// Source node of the offending edge.
        from: usize,
        /// Destination node of the offending edge.
        to: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::ArityMismatch { kind, got } => {
                write!(f, "gate kind {kind} cannot take {got} fan-ins")
            }
            NetlistError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            NetlistError::UndefinedSignal(name) => {
                write!(f, "signal `{name}` referenced but never defined")
            }
            NetlistError::DuplicateSignal(name) => write!(f, "signal `{name}` defined twice"),
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::Cycle { from, to } => {
                write!(f, "edge {from} -> {to} would create a combinational cycle")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let cases = [
            NetlistError::ArityMismatch {
                kind: "Not",
                got: 2,
            },
            NetlistError::UnknownNode(3),
            NetlistError::UndefinedSignal("x".into()),
            NetlistError::DuplicateSignal("y".into()),
            NetlistError::Parse {
                line: 4,
                message: "bad token".into(),
            },
            NetlistError::Cycle { from: 1, to: 2 },
        ];
        for c in cases {
            let s = c.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("gate"));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
