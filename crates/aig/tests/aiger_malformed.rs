//! Fuzz-lite corpus: every malformed `.aag`/`.aig` input must produce a
//! typed [`AigerError`], never a panic. The corpus covers header, body,
//! binary-section and symbol-table corruption plus systematic truncation of
//! a valid file at every byte boundary.

use deepgate_aig::aiger::{self, AigerError};

/// ASCII inputs that must be rejected. Each entry is `(label, text)`.
const BAD_AAG: &[(&str, &str)] = &[
    ("empty", ""),
    ("not aiger", "hello world\n"),
    ("binary magic in ascii entry", "aig 1 1 0 0 0\n"),
    ("short header", "aag 1 1\n"),
    ("long header", "aag 1 1 0 0 0 7\n"),
    ("non-numeric header", "aag x 1 0 0 0\n"),
    ("negative count", "aag -1 1 0 0 0\n"),
    ("overflow header", "aag 99999999999999999999 0 0 0 0\n"),
    ("m too small", "aag 1 1 0 0 1\n2\n4 2 2\n"),
    ("m too large", "aag 9 1 0 0 1\n2\n4 2 2\n"),
    ("missing input line", "aag 1 1 0 0 0\n"),
    ("odd input literal", "aag 1 1 0 0 0\n3\n"),
    ("zero input literal", "aag 1 1 0 0 0\n0\n"),
    ("input exceeds m", "aag 1 1 0 0 0\n4\n"),
    ("duplicate variable", "aag 2 2 0 0 0\n2\n2\n"),
    ("missing latch line", "aag 1 0 1 0 0\n"),
    ("latch missing next", "aag 1 0 1 0 0\n2\n"),
    ("latch extra fields", "aag 1 0 1 0 0\n2 2 0 0\n"),
    ("latch bad reset", "aag 1 0 1 0 0\n2 2 5\n"),
    ("latch next exceeds m", "aag 1 0 1 0 0\n2 9\n"),
    ("missing output line", "aag 0 0 0 1 0\n"),
    ("output exceeds m", "aag 0 0 0 1 0\n4\n"),
    ("non-numeric output", "aag 0 0 0 1 0\nx\n"),
    ("missing and line", "aag 1 0 0 0 1\n"),
    ("and with two fields", "aag 1 0 0 0 1\n2 0\n"),
    ("and lhs odd", "aag 1 0 0 0 1\n3 0 0\n"),
    ("and lhs is constant", "aag 1 0 0 0 1\n0 0 0\n"),
    ("and fanin exceeds m", "aag 1 0 0 0 1\n2 8 0\n"),
    ("and self cycle", "aag 1 0 0 0 1\n2 2 0\n"),
    ("two-node cycle", "aag 2 0 0 0 2\n2 4 0\n4 2 0\n"),
    ("and redefines input", "aag 2 1 0 0 1\n2\n2 0 0\n"),
    ("bad symbol table", "aag 1 1 0 0 0\n2\nq0 name\n"),
    ("symbol index out of range", "aag 1 1 0 0 0\n2\ni7 name\n"),
    ("symbol without name", "aag 1 1 0 0 0\n2\ni0\n"),
    ("lying giant header", "aag 1000000 1000000 0 0 0\n2\n"),
];

/// Binary inputs that must be rejected. Each entry is `(label, bytes)`.
const BAD_AIG: &[(&str, &[u8])] = &[
    ("empty", b""),
    ("ascii magic in binary entry", b"aag 0 0 0 0 0\n"),
    ("header only ands missing", b"aig 1 0 0 0 1\n"),
    ("truncated varint", b"aig 1 0 0 0 1\n\x80"),
    ("delta0 zero", b"aig 1 0 0 0 1\n\x00\x00"),
    ("delta0 too large", b"aig 1 0 0 0 1\n\x7f\x00"),
    ("delta1 too large", b"aig 1 0 0 0 1\n\x01\x7f"),
    (
        "varint overflow",
        b"aig 1 0 0 0 1\n\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01",
    ),
    ("missing latch line", b"aig 1 0 1 0 0\n"),
    ("latch bad reset", b"aig 1 0 1 0 0\n0 9\n"),
    ("missing output line", b"aig 0 0 0 1 0\n"),
    ("output exceeds m", b"aig 0 0 0 1 0\n9\n"),
    ("non-ascii in text section", b"aig 0 0 0 1 0\n\xc3\xa9\n"),
    ("bad symbol table", b"aig 1 1 0 0 0\nz9 name\n"),
];

#[test]
fn malformed_ascii_corpus_errors_cleanly() {
    for (label, text) in BAD_AAG {
        let result = aiger::parse_aag(text, "corpus");
        assert!(result.is_err(), "`{label}` parsed successfully: {result:?}");
    }
}

#[test]
fn malformed_binary_corpus_errors_cleanly() {
    for (label, bytes) in BAD_AIG {
        let result = aiger::parse_aig(*bytes, "corpus");
        assert!(result.is_err(), "`{label}` parsed successfully: {result:?}");
    }
}

#[test]
fn auto_dispatch_rejects_unknown_magic() {
    assert!(matches!(
        aiger::parse_auto(b"\x00\x01\x02", "corpus"),
        Err(AigerError::Header(_))
    ));
    assert!(matches!(
        aiger::parse_auto(b"aag \xff\xff\n", "corpus"),
        Err(AigerError::Header(_))
    ));
}

/// Every proper prefix of a valid file must either fail cleanly or (for the
/// ASCII flavour, where the symbol table is optional) parse without panics.
#[test]
fn truncation_never_panics() {
    let aig = aiger::random_aig(99, 3, 2, 12);
    let text = aiger::write_aag(&aig);
    for cut in 0..text.len() {
        let _ = aiger::parse_aag(&text[..cut], "trunc");
    }
    let bytes = aiger::write_aig(&aig).expect("valid aig serialises");
    for cut in 0..bytes.len() {
        let _ = aiger::parse_aig(&bytes[..cut], "trunc");
    }
}

/// Flipping each byte of the binary body must never panic (it may still
/// parse: some corruptions are semantically valid AIGER).
#[test]
fn single_byte_corruption_never_panics() {
    let aig = aiger::random_aig(5, 2, 2, 10);
    let bytes = aiger::write_aig(&aig).expect("valid aig serialises");
    for pos in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0xff;
        let _ = aiger::parse_auto(&corrupt, "corrupt");
    }
}
