//! Offline stand-in for `rayon`.
//!
//! Implements the `par_iter().map(..).collect()/reduce(..)` subset the
//! workspace uses with genuine data parallelism: items are dispatched to
//! `std::thread::scope` workers through a shared work queue (dynamic
//! scheduling, order-preserving results). Not a work-stealing pool — worker
//! threads live for one call — but for the coarse-grained tasks in this
//! workspace (circuit simulation, per-circuit inference) the per-call thread
//! cost is noise while the parallel speed-up is real.

use std::sync::Mutex;

/// Commonly used traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{FromParallelVec, IntoParallelIterator, IntoParallelRefIterator};
}

/// The number of worker threads a parallel call will use for `n` items.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// `.par_iter()` on slices (and everything that derefs to a slice).
pub trait IntoParallelRefIterator<T: Sync> {
    /// Returns a parallel iterator over references to the elements.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> IntoParallelRefIterator<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

/// A parallel iterator over `&T` items.
pub struct ParIter<'a, T: Sync> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Pairs every item with its index.
    pub fn enumerate(self) -> ParPipeline<(usize, &'a T)> {
        ParPipeline {
            items: self.items.iter().enumerate().collect(),
        }
    }

    /// Maps every item through `f` in parallel.
    pub fn map<U: Send, F: Fn(&'a T) -> U + Sync>(self, f: F) -> ParMapped<&'a T, U, F> {
        ParMapped {
            items: self.items.iter().collect(),
            f,
        }
    }
}

/// `.into_par_iter()` on owned collections.
pub trait IntoParallelIterator {
    /// The owned item type.
    type Item: Send;

    /// Converts the collection into a parallel iterator over owned items.
    fn into_par_iter(self) -> ParPipeline<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParPipeline<T> {
        ParPipeline { items: self }
    }
}

/// A materialised parallel pipeline stage (after `enumerate` or
/// `into_par_iter`).
pub struct ParPipeline<I: Send> {
    items: Vec<I>,
}

impl<I: Send> ParPipeline<I> {
    /// Maps every item through `f` in parallel.
    pub fn map<U: Send, F: Fn(I) -> U + Sync>(self, f: F) -> ParMapped<I, U, F> {
        ParMapped {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel pipeline, ready for a terminal operation.
pub struct ParMapped<I: Send, U: Send, F: Fn(I) -> U + Sync> {
    items: Vec<I>,
    f: F,
}

impl<I: Send, U: Send, F: Fn(I) -> U + Sync> ParMapped<I, U, F> {
    /// Runs the map in parallel and collects the results in input order.
    pub fn collect<C: FromParallelVec<U>>(self) -> C {
        C::from_parallel_vec(run_parallel(self.items, &self.f))
    }

    /// Runs the map in parallel and folds the results with `op`, starting
    /// from `identity()` (rayon's reduce contract: `op` must be associative
    /// and `identity()` its neutral element).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> U
    where
        ID: Fn() -> U,
        OP: Fn(U, U) -> U,
    {
        run_parallel(self.items, &self.f)
            .into_iter()
            .fold(identity(), op)
    }
}

/// Order-preserving collection from a parallel map (`Vec<U>` and
/// short-circuit-style `Result<Vec<T>, E>`).
pub trait FromParallelVec<U>: Sized {
    /// Builds the collection from per-item results in input order.
    fn from_parallel_vec(items: Vec<U>) -> Self;
}

impl<U> FromParallelVec<U> for Vec<U> {
    fn from_parallel_vec(items: Vec<U>) -> Self {
        items
    }
}

impl<T, E> FromParallelVec<Result<T, E>> for Result<Vec<T>, E> {
    fn from_parallel_vec(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}

/// Dispatches `items` to scoped worker threads through a shared queue and
/// returns `f(item)` for every item, in input order.
fn run_parallel<I: Send, U: Send, F: Fn(I) -> U + Sync>(items: Vec<I>, f: &F) -> Vec<U> {
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue = Mutex::new(items.into_iter().enumerate());
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let next = queue.lock().expect("queue lock").next();
                match next {
                    Some((index, item)) => {
                        *slots[index].lock().expect("slot lock") = Some(f(item));
                    }
                    None => break,
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every slot filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_map_collect() {
        let input = ["a", "b", "c"];
        let tagged: Vec<String> = input
            .par_iter()
            .enumerate()
            .map(|(i, s)| format!("{i}{s}"))
            .collect();
        assert_eq!(tagged, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn collect_into_result_short_circuits_errors() {
        let input: Vec<i32> = (0..10).collect();
        let ok: Result<Vec<i32>, String> = input.par_iter().map(|&x| Ok(x + 1)).collect();
        assert_eq!(ok.unwrap().len(), 10);
        let err: Result<Vec<i32>, String> = input
            .par_iter()
            .map(|&x| {
                if x == 5 {
                    Err(format!("bad {x}"))
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "bad 5");
    }

    #[test]
    fn reduce_matches_sequential_fold() {
        let rows: Vec<Vec<u64>> = (0..64).map(|i| vec![i, i + 1, i + 2]).collect();
        let summed = rows.par_iter().map(|row| row.clone()).reduce(
            || vec![0u64; 3],
            |mut acc, row| {
                for (a, b) in acc.iter_mut().zip(row) {
                    *a += b;
                }
                acc
            },
        );
        let expected: Vec<u64> = (0..3).map(|j| (0..64).map(|i| i + j).sum()).collect();
        assert_eq!(summed, expected);
    }

    #[test]
    fn uses_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let input: Vec<usize> = (0..256).collect();
        let _: Vec<()> = input
            .par_iter()
            .map(|_| {
                std::thread::sleep(std::time::Duration::from_micros(100));
                ids.lock().unwrap().insert(std::thread::current().id());
            })
            .collect();
        if super::current_num_threads() > 1 {
            assert!(ids.lock().unwrap().len() > 1, "expected parallel execution");
        }
    }
}
