//! Signal-probability estimation — the supervision labels of DeepGate.

use crate::{simulate_aig_words, simulate_netlist_words, PatternSource, SimError};
use deepgate_aig::Aig;
use deepgate_netlist::Netlist;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Maximum number of primary inputs supported by exhaustive enumeration.
const MAX_EXACT_INPUTS: usize = 20;

/// Per-node signal probabilities of a circuit: the probability of each node
/// evaluating to logic `1` under uniformly random primary inputs.
///
/// Probabilities are indexed by node index (AIG node index or
/// [`NodeId::index`](deepgate_netlist::NodeId) for netlists), so
/// `probs.of(i)` aligns with the circuit the labels were computed from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignalProbability {
    values: Vec<f64>,
    num_patterns: u64,
    exact: bool,
}

impl SignalProbability {
    /// Estimates signal probabilities of an [`Aig`] by simulating
    /// `num_patterns` random patterns (rounded up to a multiple of 64),
    /// seeded with `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoPatterns`] if `num_patterns` is zero and
    /// [`SimError::InvalidCircuit`] if the AIG fails validation.
    pub fn simulate(aig: &Aig, num_patterns: usize, seed: u64) -> Result<Self, SimError> {
        if num_patterns == 0 {
            return Err(SimError::NoPatterns);
        }
        aig.validate()
            .map_err(|e| SimError::InvalidCircuit(e.to_string()))?;
        let num_words = num_patterns.div_ceil(64);
        let mut source = PatternSource::new(aig.num_inputs(), seed);
        let rows = source.word_rows(num_words);
        let ones: Vec<u64> = rows
            .par_iter()
            .map(|row| {
                let values = simulate_aig_words(aig, row).expect("input count matches");
                values
                    .iter()
                    .map(|w| w.count_ones() as u64)
                    .collect::<Vec<u64>>()
            })
            .reduce(
                || vec![0u64; aig.len()],
                |mut acc, row_counts| {
                    for (a, c) in acc.iter_mut().zip(row_counts) {
                        *a += c;
                    }
                    acc
                },
            );
        let total = (num_words * 64) as f64;
        Ok(SignalProbability {
            values: ones.iter().map(|&c| c as f64 / total).collect(),
            num_patterns: (num_words * 64) as u64,
            exact: false,
        })
    }

    /// Estimates signal probabilities of a gate-level [`Netlist`] by random
    /// simulation. Used for the "without AIG transformation" experiments
    /// (Table IV), where the model is trained directly on the original gate
    /// types.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoPatterns`] if `num_patterns` is zero and
    /// [`SimError::InvalidCircuit`] if the netlist fails validation.
    pub fn simulate_netlist(
        netlist: &Netlist,
        num_patterns: usize,
        seed: u64,
    ) -> Result<Self, SimError> {
        if num_patterns == 0 {
            return Err(SimError::NoPatterns);
        }
        netlist
            .validate()
            .map_err(|e| SimError::InvalidCircuit(e.to_string()))?;
        let num_words = num_patterns.div_ceil(64);
        let mut source = PatternSource::new(netlist.num_inputs(), seed);
        let rows = source.word_rows(num_words);
        let ones: Vec<u64> = rows
            .par_iter()
            .map(|row| {
                let values = simulate_netlist_words(netlist, row).expect("input count matches");
                values
                    .iter()
                    .map(|w| w.count_ones() as u64)
                    .collect::<Vec<u64>>()
            })
            .reduce(
                || vec![0u64; netlist.len()],
                |mut acc, row_counts| {
                    for (a, c) in acc.iter_mut().zip(row_counts) {
                        *a += c;
                    }
                    acc
                },
            );
        let total = (num_words * 64) as f64;
        Ok(SignalProbability {
            values: ones.iter().map(|&c| c as f64 / total).collect(),
            num_patterns: (num_words * 64) as u64,
            exact: false,
        })
    }

    /// Computes exact signal probabilities of an [`Aig`] by exhaustively
    /// enumerating all `2^n` input combinations.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyInputsForExact`] if the AIG has more than
    /// 20 primary inputs.
    pub fn exact(aig: &Aig) -> Result<Self, SimError> {
        let n = aig.num_inputs();
        if n > MAX_EXACT_INPUTS {
            return Err(SimError::TooManyInputsForExact {
                inputs: n,
                max: MAX_EXACT_INPUTS,
            });
        }
        aig.validate()
            .map_err(|e| SimError::InvalidCircuit(e.to_string()))?;
        let total_patterns: u64 = 1u64 << n;
        // Enumerate patterns in blocks of 64 by composing the counter bits.
        let num_words = (total_patterns as usize).div_ceil(64);
        let mut ones = vec![0u64; aig.len()];
        let mut counted = 0u64;
        for block in 0..num_words {
            let mut row = vec![0u64; n];
            let remaining = (total_patterns - counted).min(64);
            for bit in 0..remaining {
                let pattern = block as u64 * 64 + bit;
                for (i, word) in row.iter_mut().enumerate() {
                    if (pattern >> i) & 1 == 1 {
                        *word |= 1u64 << bit;
                    }
                }
            }
            let mask: u64 = if remaining == 64 {
                u64::MAX
            } else {
                (1u64 << remaining) - 1
            };
            let values = simulate_aig_words(aig, &row)?;
            for (o, v) in ones.iter_mut().zip(values) {
                *o += (v & mask).count_ones() as u64;
            }
            counted += remaining;
        }
        Ok(SignalProbability {
            values: ones
                .iter()
                .map(|&c| c as f64 / total_patterns as f64)
                .collect(),
            num_patterns: total_patterns,
            exact: true,
        })
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if no nodes are covered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Probability of node `index` being logic `1`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn of(&self, index: usize) -> f64 {
        self.values[index]
    }

    /// All per-node probabilities, indexed by node index.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of simulated patterns the estimate is based on.
    pub fn num_patterns(&self) -> u64 {
        self.num_patterns
    }

    /// Whether the probabilities are exact (exhaustive enumeration) rather
    /// than Monte-Carlo estimates.
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// Mean absolute difference against another probability vector of the
    /// same length — the *average prediction error* metric of the paper
    /// (Eq. 8) when comparing predictions against simulated labels.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    pub fn mean_absolute_difference(&self, other: &[f64]) -> f64 {
        assert_eq!(self.values.len(), other.len(), "length mismatch");
        if self.values.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .values
            .iter()
            .zip(other)
            .map(|(a, b)| (a - b).abs())
            .sum();
        sum / self.values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepgate_aig::AigLit;

    fn two_level_aig() -> (Aig, AigLit, AigLit) {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, b);
        let y = aig.or(ab, c);
        aig.add_output(y, "y");
        (aig, ab, y)
    }

    #[test]
    fn exact_probabilities_match_theory() {
        let (aig, ab, y) = two_level_aig();
        let probs = SignalProbability::exact(&aig).unwrap();
        assert!(probs.is_exact());
        assert_eq!(probs.len(), aig.len());
        // P(a·b) = 1/4; P(a·b + c) = 1 - (3/4)(1/2) = 5/8.
        assert!((probs.of(ab.node()) - 0.25).abs() < 1e-9);
        // y is an OR built as ¬(¬ab·¬c): the node probability is that of the
        // inner AND; resolve via the output literal.
        let (lit, _) = aig.outputs()[0];
        let node_p = probs.of(lit.node());
        let p = if lit.is_complemented() {
            1.0 - node_p
        } else {
            node_p
        };
        assert!((p - 0.625).abs() < 1e-9);
        let _ = y;
    }

    #[test]
    fn monte_carlo_converges_to_exact() {
        let (aig, _, _) = two_level_aig();
        let exact = SignalProbability::exact(&aig).unwrap();
        let mc = SignalProbability::simulate(&aig, 16_384, 3).unwrap();
        assert!(!mc.is_exact());
        assert_eq!(mc.len(), exact.len());
        let err = exact.mean_absolute_difference(mc.values());
        assert!(err < 0.02, "monte carlo error too large: {err}");
    }

    #[test]
    fn netlist_probabilities_match_aig_probabilities() {
        use deepgate_netlist::{GateKind, Netlist};
        let mut n = Netlist::new("x");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_gate(GateKind::Xor, &[a, b]).unwrap();
        n.mark_output(x, "y");
        let aig = Aig::from_netlist(&n).unwrap();
        let np = SignalProbability::simulate_netlist(&n, 8192, 11).unwrap();
        let _ap = SignalProbability::simulate(&aig, 8192, 11).unwrap();
        // P(xor) = 0.5.
        assert!((np.of(x.index()) - 0.5).abs() < 0.03);
    }

    #[test]
    fn inputs_have_probability_half() {
        let (aig, _, _) = two_level_aig();
        let probs = SignalProbability::simulate(&aig, 32_768, 5).unwrap();
        for &i in aig.inputs() {
            assert!((probs.of(i) - 0.5).abs() < 0.02);
        }
        // The constant node is always 0.
        assert_eq!(probs.of(0), 0.0);
    }

    #[test]
    fn pattern_count_rounds_up_to_word() {
        let (aig, _, _) = two_level_aig();
        let probs = SignalProbability::simulate(&aig, 1, 0).unwrap();
        assert_eq!(probs.num_patterns(), 64);
    }

    #[test]
    fn error_cases() {
        let (aig, _, _) = two_level_aig();
        assert!(matches!(
            SignalProbability::simulate(&aig, 0, 0),
            Err(SimError::NoPatterns)
        ));
        let mut big = Aig::new("big");
        for i in 0..30 {
            big.add_input(format!("x{i}"));
        }
        assert!(matches!(
            SignalProbability::exact(&big),
            Err(SimError::TooManyInputsForExact { inputs: 30, .. })
        ));
    }

    #[test]
    fn mean_absolute_difference_zero_on_self() {
        let (aig, _, _) = two_level_aig();
        let probs = SignalProbability::exact(&aig).unwrap();
        assert_eq!(probs.mean_absolute_difference(probs.values()), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mean_absolute_difference_panics_on_length_mismatch() {
        let (aig, _, _) = two_level_aig();
        let probs = SignalProbability::exact(&aig).unwrap();
        let _ = probs.mean_absolute_difference(&[0.0]);
    }
}
