//! Minimal deep-learning substrate for the DeepGate reproduction.
//!
//! The original DeepGate implementation is built on PyTorch; the Rust
//! ecosystem has no equivalent training stack, so this crate provides the
//! small subset needed by DAG-GNN models, written from scratch:
//!
//! - [`Tensor`] — a dense row-major 2-D float tensor with the usual
//!   element-wise and matrix operations plus Xavier/normal initialisers.
//! - [`Graph`] / [`Var`] — a dynamic reverse-mode autodiff tape. Each
//!   forward pass builds a fresh graph; [`Graph::backward`] accumulates
//!   parameter gradients into a [`ParamStore`].
//! - Graph ops tailored to message passing on circuit DAGs:
//!   [`Graph::gather_rows`], [`Graph::scatter_add_rows`] and
//!   [`Graph::segment_softmax`] (softmax over each node's predecessor set,
//!   the core of DeepGate's attention aggregation).
//! - [`Linear`], [`Mlp`], [`GruCell`] — the layers used by the paper's
//!   models (d = 64 hidden states, GRU state updates, MLP regressor).
//! - [`Adam`] and [`Sgd`] optimisers, L1/MSE losses.
//! - JSON (de)serialisation of parameter stores for model checkpoints.
//!
//! # Example
//!
//! ```rust
//! use deepgate_nn::{Graph, Linear, ParamStore, Tensor, Adam};
//!
//! // Fit y = 2x with a single linear layer.
//! let mut store = ParamStore::new();
//! let layer = Linear::new(&mut store, "fit", 1, 1, 42);
//! let mut adam = Adam::with_defaults(0.1);
//! for _ in 0..500 {
//!     let mut g = Graph::new();
//!     let x = g.input(Tensor::from_rows(&[&[1.0], &[2.0], &[3.0]]));
//!     let target = Tensor::from_rows(&[&[2.0], &[4.0], &[6.0]]);
//!     let pred = layer.forward(&mut g, &store, x);
//!     let loss = g.mse_loss(pred, &target);
//!     g.backward(loss, &mut store);
//!     adam.step(&mut store);
//!     store.zero_grad();
//! }
//! let mut g = Graph::new();
//! let x = g.input(Tensor::from_rows(&[&[5.0]]));
//! let pred = layer.forward(&mut g, &store, x);
//! assert!((g.value(pred).get(0, 0) - 10.0).abs() < 0.5);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod graph;
mod layers;
mod optim;
mod params;
mod tensor;

pub use error::NnError;
pub use graph::{segment_softmax_tensor, Graph, Var};
pub use layers::{Activation, GruCell, Linear, Mlp};
pub use optim::{Adam, Sgd};
pub use params::{ParamId, ParamStore};
pub use tensor::Tensor;
