//! End-to-end AIGER smoke test, run in CI: generates a small corpus of
//! latch-bearing circuits, round-trips each through the ASCII and binary
//! AIGER writers/parsers on disk, then serves the binary `.aig` files
//! through a live `deepgate-serve` TCP server in both latch-ingestion
//! modes (`cut` and `unroll:2`) and checks the predictions come back.
//!
//! Exits non-zero (panics) on any failure; prints a one-line summary on
//! success.
//!
//! ```bash
//! cargo run --release -p deepgate-bench --bin aiger_smoke
//! ```

use deepgate::aig::aiger::{parse_auto, random_aig, write_aag, write_aig};
use deepgate::prelude::*;
use deepgate_serve::{b64, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;

/// `(seed, inputs, latches, ands)` shapes covering combinational,
/// latch-heavy and mixed circuits.
const CORPUS: [(u64, usize, usize, usize); 4] = [
    (11, 3, 2, 16),
    (12, 5, 4, 40),
    (13, 4, 0, 24),
    (14, 2, 6, 48),
];

fn quick_engine() -> Engine {
    Engine::builder()
        .model(DeepGateConfig {
            hidden_dim: 8,
            num_iterations: 2,
            regressor_hidden: 4,
            ..DeepGateConfig::default()
        })
        .build()
        .expect("valid engine configuration")
}

/// The canonical form minus the comment section, which carries the design
/// name and legitimately differs between a generated circuit (`rand-<seed>`)
/// and one parsed back under a caller-supplied name.
fn canon_body(aag: &str) -> &str {
    aag.split("\nc\n").next().unwrap_or(aag)
}

/// Writes both formats to disk, parses them back through the public file
/// path, and checks canonical-form equality (structural isomorphism).
fn file_roundtrip(dir: &Path, index: usize, engine: &Engine) -> Vec<u8> {
    let (seed, inputs, latches, ands) = CORPUS[index];
    let aig = random_aig(seed, inputs, latches, ands);
    let canon = write_aag(&aig);
    let binary = write_aig(&aig).expect("canonical AIG serialises");

    let aag_path = dir.join(format!("smoke_{index}.aag"));
    let aig_path = dir.join(format!("smoke_{index}.aig"));
    std::fs::write(&aag_path, &canon).expect("write .aag");
    std::fs::write(&aig_path, &binary).expect("write .aig");

    for path in [&aag_path, &aig_path] {
        let bytes = std::fs::read(path).expect("read corpus file back");
        let parsed = parse_auto(&bytes, "smoke").expect("corpus file parses");
        assert_eq!(
            canon_body(&write_aag(&parsed)),
            canon_body(&canon),
            "{} must round-trip to the same canonical form",
            path.display()
        );
        // The engine ingests the file end-to-end (cut policy by default).
        let circuits = engine
            .prepare_unlabelled(&AigerFile::new(path))
            .expect("engine ingests corpus file");
        assert_eq!(circuits.len(), 1);
    }
    binary
}

fn roundtrip(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, request: &str) -> String {
    writer.write_all(request.as_bytes()).expect("send request");
    writer.write_all(b"\n").expect("send newline");
    writer.flush().expect("flush request");
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    response
}

fn main() {
    let dir = std::env::temp_dir().join(format!("deepgate_aiger_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create corpus dir");

    let engine = quick_engine();
    let binaries: Vec<Vec<u8>> = (0..CORPUS.len())
        .map(|i| file_roundtrip(&dir, i, &engine))
        .collect();
    eprintln!(
        "[aiger_smoke] {} circuits round-tripped through {} (.aag + .aig)",
        CORPUS.len(),
        dir.display()
    );

    // Serve the binary corpus over TCP in both latch-ingestion modes.
    let server = Server::start(engine, ServeConfig::default()).expect("server binds");
    let stream = TcpStream::connect(server.local_addr()).expect("connect to server");
    let mut reader = BufReader::new(stream.try_clone().expect("clone socket"));
    let mut writer = stream;
    let mut served = 0usize;
    for (index, binary) in binaries.iter().enumerate() {
        for latch in ["cut", "unroll:2"] {
            let request = format!(
                r#"{{"id": {index}, "aiger_b64": "{}", "latch": "{latch}"}}"#,
                b64::encode(binary)
            );
            let response = roundtrip(&mut reader, &mut writer, &request);
            assert!(
                response.contains("probs"),
                "expected predictions for circuit {index} ({latch}), got: {response}"
            );
            served += 1;
        }
    }

    // Malformed payloads come back as clean errors, not dropped connections.
    let response = roundtrip(
        &mut reader,
        &mut writer,
        r#"{"id": "bad", "aiger_b64": "%%%"}"#,
    );
    assert!(
        response.contains("error"),
        "malformed base64 must yield an error, got: {response}"
    );
    let response = roundtrip(
        &mut reader,
        &mut writer,
        &format!(
            r#"{{"id": "bad2", "aiger_b64": "{}"}}"#,
            b64::encode(b"aig 9 0 0 0 9\n")
        ),
    );
    assert!(
        response.contains("error"),
        "truncated binary AIGER must yield an error, got: {response}"
    );

    let response = roundtrip(&mut reader, &mut writer, r#"{"id": "q", "op": "shutdown"}"#);
    assert!(response.contains("ok"), "shutdown not acknowledged");
    server.wait();

    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "[aiger_smoke] OK: {served} predictions served over TCP ({} circuits x 2 latch modes), malformed inputs rejected cleanly",
        CORPUS.len()
    );
}
