use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major 2-D tensor of `f32` values.
///
/// All shapes in the DeepGate models are two-dimensional (`[nodes, features]`
/// or `[features_in, features_out]`), so the tensor type is deliberately
/// restricted to two dimensions; vectors are represented as `[n, 1]` or
/// `[1, n]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![1.0; rows * cols],
        }
    }

    /// Creates a tensor filled with a constant value.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a tensor from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "tensor data length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Tensor { rows, cols, data }
    }

    /// Creates a tensor from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "inconsistent row lengths");
            data.extend_from_slice(row);
        }
        Tensor {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a `[n, 1]` column tensor from a slice.
    pub fn column(values: &[f32]) -> Self {
        Tensor {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Samples a tensor with entries drawn from a normal distribution with
    /// the given standard deviation (Box-Muller, seeded).
    pub fn randn(rows: usize, cols: usize, std: f32, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(rows * cols);
        while data.len() < rows * cols {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let mag = (-2.0 * u1.ln()).sqrt();
            data.push(mag * (2.0 * std::f32::consts::PI * u2).cos() * std);
            if data.len() < rows * cols {
                data.push(mag * (2.0 * std::f32::consts::PI * u2).sin() * std);
            }
        }
        Tensor { rows, cols, data }
    }

    /// Xavier/Glorot uniform initialisation for a `[fan_in, fan_out]` weight
    /// matrix.
    pub fn xavier_uniform(fan_in: usize, fan_out: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        let data = (0..fan_in * fan_out)
            .map(|_| rng.gen_range(-bound..=bound))
            .collect();
        Tensor {
            rows: fan_in,
            cols: fan_out,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The shape as `[rows, cols]`.
    pub fn shape(&self) -> [usize; 2] {
        [self.rows, self.cols]
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col] = value;
    }

    /// The underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// A view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix multiplication `self @ other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} @ {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let row_out = &mut out.data[i * other.cols..(i + 1) * other.cols];
                let row_b = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in row_out.iter_mut().zip(row_b) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// The transpose of the tensor.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise map.
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise multiplication.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Element-wise combination of two equally-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape(),
            other.shape(),
            "element-wise op shape mismatch"
        );
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Fills the tensor with zeros in place.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tensor [{} x {}]", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t.shape(), [2, 2]);
        assert_eq!(t.get(1, 0), 3.0);
        assert_eq!(t.row(0), &[1.0, 2.0]);
        let mut t = t;
        t.set(0, 1, 9.0);
        assert_eq!(t.get(0, 1), 9.0);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(Tensor::column(&[1.0, 2.0]).shape(), [2, 1]);
        assert!(t.to_string().contains("2 x 2"));
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let eye = Tensor::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0]]);
        assert_eq!(a.matmul(&eye), a);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_rows(&[&[1.0, 2.0]]);
        let b = Tensor::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(a.add(&b).as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).as_slice(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).as_slice(), &[3.0, 10.0]);
        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c.as_slice(), &[7.0, 12.0]);
        assert_eq!(a.map(|v| v * v).as_slice(), &[1.0, 4.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert!((a.norm() - (30.0f32).sqrt()).abs() < 1e-6);
        assert_eq!(Tensor::zeros(0, 0).mean(), 0.0);
    }

    #[test]
    fn random_initialisers_are_seeded() {
        let a = Tensor::randn(4, 4, 1.0, 7);
        let b = Tensor::randn(4, 4, 1.0, 7);
        assert_eq!(a, b);
        let c = Tensor::xavier_uniform(16, 16, 3);
        let d = Tensor::xavier_uniform(16, 16, 4);
        assert_ne!(c, d);
        let bound = (6.0f32 / 32.0).sqrt();
        assert!(c.as_slice().iter().all(|v| v.abs() <= bound + 1e-6));
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_checks_length() {
        let _ = Tensor::from_vec(2, 2, vec![1.0]);
    }
}
