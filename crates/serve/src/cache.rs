//! The structural circuit cache: an LRU of prepared circuits keyed by
//! [`deepgate::gnn::CircuitGraph::fingerprint`], with a text-hash memo in
//! front of the parser so byte-identical requests skip parsing too.

use crate::metrics::CacheMetrics;
use deepgate::telemetry::Registry;
use deepgate::PreparedCircuit;
use serde::Serialize;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex};

/// A 128-bit content hash of raw BENCH request text, used as the first-level
/// cache key (before any parsing happens). Same hash construction as
/// [`deepgate::gnn::CircuitGraph::fingerprint`], applied to raw bytes.
pub fn text_key(text: &str) -> u128 {
    let mut hasher = deepgate::gnn::StructuralHasher::new();
    hasher.write_bytes(text.as_bytes());
    hasher.finish()
}

/// A 128-bit first-level cache key for non-BENCH payloads: mixes the payload
/// *kind* (e.g. `"aiger"`), an ingestion *variant* (e.g. the latch policy,
/// `"cut"` / `"unroll:3"`) and the raw payload bytes. The variant is part of
/// the key because the same AIGER bytes under different latch policies
/// produce different circuits — they must not share a cache entry. Each
/// component is length-prefixed so `("ab","c")` and `("a","bc")` differ.
pub fn request_key(kind: &str, variant: &str, payload: &[u8]) -> u128 {
    let mut hasher = deepgate::gnn::StructuralHasher::new();
    for part in [kind.as_bytes(), variant.as_bytes(), payload] {
        hasher.write(part.len() as u64);
        hasher.write_bytes(part);
    }
    hasher.finish()
}

/// Mixes an inference-mode label (e.g. `"f32"` / `"int8"`, see
/// [`deepgate::QuantMode::label`]) into a first-level cache key, so cache
/// entries are partitioned per scoring mode: hit/miss telemetry stays
/// attributable to one mode, and prepared state can grow mode-dependent
/// pieces without ever aliasing across modes.
pub fn keyed_with_mode(base: u128, mode: &str) -> u128 {
    let mut hasher = deepgate::gnn::StructuralHasher::new();
    hasher.write((base >> 64) as u64);
    hasher.write(base as u64);
    hasher.write(mode.len() as u64);
    hasher.write_bytes(mode.as_bytes());
    hasher.finish()
}

/// A small stamp-based LRU map. Eviction scans for the oldest stamp — O(n),
/// which is noise at serving-cache capacities (hundreds of entries) and
/// keeps the structure simple and obviously correct.
#[derive(Debug)]
struct Lru<K, V> {
    capacity: usize,
    tick: u64,
    map: HashMap<K, (u64, V)>,
}

impl<K: Eq + Hash + Copy, V: Clone> Lru<K, V> {
    fn new(capacity: usize) -> Self {
        Lru {
            capacity,
            tick: 0,
            map: HashMap::new(),
        }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|entry| {
            entry.0 = tick;
            entry.1.clone()
        })
    }

    fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| *k)
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (self.tick, value));
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Cache counters, as reported by the `stats` wire verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CacheStats {
    /// Requests served from the cache (text-level or fingerprint-level;
    /// `hits == text_hits + fingerprint_hits`).
    pub hits: u64,
    /// Hits at the text-memo level: byte-identical repeats that skipped
    /// parsing entirely.
    pub text_hits: u64,
    /// Hits at the structural level: textually new requests whose parsed
    /// circuit fingerprint was already prepared.
    pub fingerprint_hits: u64,
    /// Requests that had to be prepared from scratch.
    pub misses: u64,
    /// Prepared circuits currently held.
    pub entries: usize,
    /// Configured capacity.
    pub capacity: usize,
}

impl CacheStats {
    /// Derives the stats from a registry [`Snapshot`] — the server's
    /// one-snapshot `stats` path.
    ///
    /// [`Snapshot`]: deepgate::telemetry::Snapshot
    pub fn from_snapshot(snapshot: &deepgate::telemetry::Snapshot) -> Self {
        let text_hits = snapshot.counter("cache_text_hits_total");
        let fingerprint_hits = snapshot.counter("cache_fingerprint_hits_total");
        CacheStats {
            hits: text_hits + fingerprint_hits,
            text_hits,
            fingerprint_hits,
            misses: snapshot.counter("cache_misses_total"),
            entries: snapshot.gauge("cache_entries").max(0) as usize,
            capacity: snapshot.gauge("cache_capacity").max(0) as usize,
        }
    }
}

/// A thread-safe structural circuit cache.
///
/// Lookup is two-level. The *text* level maps a hash of the raw BENCH text
/// to a fingerprint, so a byte-identical repeat request skips parsing, AIG
/// transformation, encoding and planning. The *fingerprint* level maps
/// [`deepgate::gnn::CircuitGraph::fingerprint`] to the prepared circuit, so two textually
/// different requests describing the same structure (formatting, comments,
/// signal names) still share one prepared entry — the fingerprint is
/// structural, not textual.
#[derive(Debug)]
pub struct CircuitCache {
    state: Mutex<CacheState>,
    metrics: CacheMetrics,
}

#[derive(Debug)]
struct CacheState {
    by_text: Lru<u128, u128>,
    by_fingerprint: Lru<u128, Arc<PreparedCircuit>>,
}

impl CircuitCache {
    /// Creates a cache holding up to `capacity` prepared circuits (0
    /// disables caching: every lookup misses and inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        // Standalone caches get a private registry; the Server shares one
        // via `with_metrics`.
        CircuitCache::with_metrics(capacity, CacheMetrics::registered(&Registry::new()))
    }

    /// [`CircuitCache::new`] recording into externally registered telemetry
    /// handles, so the cache's series share a registry (and therefore a
    /// snapshot) with the rest of the serving stack.
    pub fn with_metrics(capacity: usize, metrics: CacheMetrics) -> Self {
        metrics.capacity.set(capacity as i64);
        CircuitCache {
            state: Mutex::new(CacheState {
                // Text keys are 16 bytes; a wider memo is effectively free
                // and lets several textual variants point at one circuit.
                by_text: Lru::new(capacity.saturating_mul(4)),
                by_fingerprint: Lru::new(capacity),
            }),
            metrics,
        }
    }

    /// Looks up a prepared circuit by raw request text. Counts a hit on
    /// success; a miss is only counted once the caller resolves it via
    /// [`CircuitCache::lookup_fingerprint`] or [`CircuitCache::insert`].
    pub fn lookup_text(&self, key: u128) -> Option<Arc<PreparedCircuit>> {
        let mut state = self.state.lock().expect("cache lock");
        let fingerprint = state.by_text.get(&key)?;
        let prepared = state.by_fingerprint.get(&fingerprint);
        if prepared.is_some() {
            self.metrics.text_hits.inc();
        }
        prepared
    }

    /// Looks up a prepared circuit by structural fingerprint, memoising
    /// `text_key` for future text-level hits. Counts a hit or a miss.
    pub fn lookup_fingerprint(
        &self,
        text_key: u128,
        fingerprint: u128,
    ) -> Option<Arc<PreparedCircuit>> {
        let mut state = self.state.lock().expect("cache lock");
        match state.by_fingerprint.get(&fingerprint) {
            Some(prepared) => {
                state.by_text.insert(text_key, fingerprint);
                self.metrics.fingerprint_hits.inc();
                Some(prepared)
            }
            None => {
                self.metrics.misses.inc();
                None
            }
        }
    }

    /// Inserts a freshly prepared circuit under both its text key and its
    /// structural fingerprint.
    pub fn insert(&self, text_key: u128, prepared: Arc<PreparedCircuit>) {
        let fingerprint = prepared.circuit().fingerprint();
        let mut state = self.state.lock().expect("cache lock");
        state.by_text.insert(text_key, fingerprint);
        state.by_fingerprint.insert(fingerprint, prepared);
        self.metrics.entries.set(state.by_fingerprint.len() as i64);
    }

    /// Current counters (each read individually; the server's `stats` verb
    /// instead derives [`CacheStats`] from one registry snapshot via
    /// [`CacheStats::from_snapshot`]).
    pub fn stats(&self) -> CacheStats {
        let state = self.state.lock().expect("cache lock");
        let text_hits = self.metrics.text_hits.get();
        let fingerprint_hits = self.metrics.fingerprint_hits.get();
        CacheStats {
            hits: text_hits + fingerprint_hits,
            text_hits,
            fingerprint_hits,
            misses: self.metrics.misses.get(),
            entries: state.by_fingerprint.len(),
            capacity: state.by_fingerprint.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru: Lru<u32, u32> = Lru::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        assert_eq!(lru.get(&1), Some(10)); // refresh 1 → 2 is now oldest
        lru.insert(3, 30);
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.get(&1), Some(10));
        assert_eq!(lru.get(&3), Some(30));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn lru_reinsert_updates_in_place() {
        let mut lru: Lru<u32, u32> = Lru::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        lru.insert(1, 11); // same key: no eviction
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&1), Some(11));
        assert_eq!(lru.get(&2), Some(20));
    }

    #[test]
    fn zero_capacity_lru_stays_empty() {
        let mut lru: Lru<u32, u32> = Lru::new(0);
        lru.insert(1, 10);
        assert_eq!(lru.get(&1), None);
        assert_eq!(lru.len(), 0);
    }

    #[test]
    fn text_key_separates_texts() {
        let a = text_key("INPUT(a)\n");
        let b = text_key("INPUT(b)\n");
        assert_ne!(a, b);
        assert_eq!(a, text_key("INPUT(a)\n"));
    }

    #[test]
    fn request_key_separates_kind_variant_and_payload() {
        let base = request_key("aiger", "cut", b"aag 0 0 0 0 0\n");
        assert_eq!(base, request_key("aiger", "cut", b"aag 0 0 0 0 0\n"));
        assert_ne!(base, request_key("aiger", "unroll:2", b"aag 0 0 0 0 0\n"));
        assert_ne!(base, request_key("bench", "cut", b"aag 0 0 0 0 0\n"));
        assert_ne!(base, request_key("aiger", "cut", b"aag 0 0 0 0 1\n"));
        // Length prefixing: shifting bytes between components changes the key.
        assert_ne!(request_key("ab", "c", b"x"), request_key("a", "bc", b"x"));
        // Payload keys never collide with the plain text-key construction by
        // accident of layout (different preamble).
        assert_ne!(base, text_key("aag 0 0 0 0 0\n"));
    }
}
