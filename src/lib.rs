//! # DeepGate (reproduction)
//!
//! A from-scratch Rust reproduction of *DeepGate: Learning Neural
//! Representations of Logic Gates* (Li et al., DAC 2022).
//!
//! This facade crate re-exports the individual workspace crates so that a
//! downstream user can depend on a single `deepgate` crate:
//!
//! - [`netlist`] — gate-level netlist IR, BENCH parser/writer, circuit generators.
//! - [`aig`] — And-Inverter Graphs, netlist→AIG mapping, optimisation passes,
//!   reconvergence analysis (the logic-synthesis substrate).
//! - [`sim`] — bit-parallel logic simulation and signal-probability labelling.
//! - [`nn`] — minimal tensor / reverse-mode autodiff substrate with GRU, MLP,
//!   attention primitives and the Adam optimiser.
//! - [`gnn`] — DAG-GNN framework: circuit-graph encoding, topological batching,
//!   aggregators, and the baseline model zoo (GCN, DAG-ConvGNN, DAG-RecGNN).
//! - [`core`] — the DeepGate model, trainer and evaluation metrics.
//! - [`dataset`] — benchmark-suite generators, sub-circuit extraction and the
//!   labelled dataset pipeline.
//!
//! ## Quickstart
//!
//! ```rust
//! use deepgate::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Generate a small circuit, map it to an AIG and label it with
//! // logic-simulated signal probabilities.
//! let netlist = deepgate::dataset::generators::ripple_carry_adder(8);
//! let aig = Aig::from_netlist(&netlist)?;
//! let labels = SignalProbability::simulate(&aig, 4096, 7)?;
//! assert_eq!(labels.len(), aig.len());
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use deepgate_aig as aig;
pub use deepgate_core as core;
pub use deepgate_dataset as dataset;
pub use deepgate_gnn as gnn;
pub use deepgate_netlist as netlist;
pub use deepgate_nn as nn;
pub use deepgate_sim as sim;

/// Commonly used types, re-exported for convenient glob import.
pub mod prelude {
    pub use deepgate_aig::{Aig, AigLit, AigNodeKind};
    pub use deepgate_core::{DeepGate, DeepGateConfig, Trainer, TrainerConfig};
    pub use deepgate_dataset::{Dataset, DatasetConfig, SuiteKind};
    pub use deepgate_gnn::{Aggregator, CircuitGraph, DagRecGnn, Gcn};
    pub use deepgate_netlist::{GateKind, Netlist, NodeId};
    pub use deepgate_nn::{Graph, Tensor};
    pub use deepgate_sim::SignalProbability;
}
