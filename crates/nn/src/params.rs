use crate::{NnError, Tensor};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Parameter {
    name: String,
    value: Tensor,
    #[serde(skip, default = "Tensor::empty_grad")]
    grad: Tensor,
}

impl Tensor {
    fn empty_grad() -> Tensor {
        Tensor::zeros(0, 0)
    }
}

/// A flat store of named, trainable parameters.
///
/// Models register their weights here once at construction time and reference
/// them by [`ParamId`] on every forward pass; [`crate::Graph::backward`]
/// accumulates gradients into the store and the optimisers
/// ([`crate::Adam`], [`crate::Sgd`]) update the values in place.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParamStore {
    params: Vec<Parameter>,
}

impl ParamStore {
    /// Creates an empty parameter store.
    pub fn new() -> Self {
        ParamStore { params: Vec::new() }
    }

    /// Registers a parameter and returns its id.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let grad = Tensor::zeros(value.rows(), value.cols());
        self.params.push(Parameter {
            name: name.into(),
            value,
            grad,
        });
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalar weights).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Returns `true` if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_weights(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// The value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Mutable access to the value of a parameter.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].value
    }

    /// The accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].grad
    }

    /// The name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// Iterates over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    /// Adds `delta` to the gradient of a parameter (used by
    /// [`crate::Graph::backward`]).
    ///
    /// # Panics
    ///
    /// Panics if the gradient shape does not match the parameter shape.
    pub fn accumulate_grad(&mut self, id: ParamId, delta: &Tensor) {
        let p = &mut self.params[id.0];
        if p.grad.is_empty() {
            p.grad = Tensor::zeros(p.value.rows(), p.value.cols());
        }
        p.grad.axpy(1.0, delta);
    }

    /// Resets all gradients to zero.
    pub fn zero_grad(&mut self) {
        for p in &mut self.params {
            if p.grad.is_empty() {
                p.grad = Tensor::zeros(p.value.rows(), p.value.cols());
            } else {
                p.grad.fill_zero();
            }
        }
    }

    /// Global L2 norm of all gradients (useful for gradient clipping and
    /// debugging training).
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| {
                if p.grad.is_empty() {
                    0.0
                } else {
                    p.grad.norm().powi(2)
                }
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Scales every gradient so the global norm does not exceed `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for p in &mut self.params {
                if !p.grad.is_empty() {
                    let scaled = p.grad.map(|v| v * scale);
                    p.grad = scaled;
                }
            }
        }
    }

    /// Serialises all parameter values to a JSON string (a model checkpoint).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Serde`] if serialisation fails.
    pub fn to_json(&self) -> Result<String, NnError> {
        let map: HashMap<&str, &Tensor> = self
            .params
            .iter()
            .map(|p| (p.name.as_str(), &p.value))
            .collect();
        serde_json::to_string(&map).map_err(|e| NnError::Serde(e.to_string()))
    }

    /// Loads parameter values from a JSON checkpoint produced by
    /// [`ParamStore::to_json`]. Every parameter in the store must be present
    /// in the checkpoint with a matching shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingParameter`] or [`NnError::ShapeMismatch`]
    /// when the checkpoint does not match the store, and [`NnError::Serde`]
    /// if the JSON cannot be parsed.
    pub fn load_json(&mut self, json: &str) -> Result<(), NnError> {
        let map: HashMap<String, Tensor> =
            serde_json::from_str(json).map_err(|e| NnError::Serde(e.to_string()))?;
        for p in &mut self.params {
            let loaded = map
                .get(&p.name)
                .ok_or_else(|| NnError::MissingParameter(p.name.clone()))?;
            if loaded.shape() != p.value.shape() {
                return Err(NnError::ShapeMismatch {
                    name: p.name.clone(),
                    expected: p.value.shape().to_vec(),
                    got: loaded.shape().to_vec(),
                });
            }
            p.value = loaded.clone();
            p.grad = Tensor::zeros(p.value.rows(), p.value.cols());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_access() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::ones(2, 3));
        let b = store.add("b", Tensor::zeros(1, 3));
        assert_eq!(store.len(), 2);
        assert_eq!(store.num_weights(), 9);
        assert_eq!(store.name(w), "w");
        assert_eq!(store.value(b).shape(), [1, 3]);
        assert_eq!(store.ids().count(), 2);
    }

    #[test]
    fn gradient_accumulation_and_reset() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::zeros(2, 2));
        store.accumulate_grad(w, &Tensor::ones(2, 2));
        store.accumulate_grad(w, &Tensor::ones(2, 2));
        assert_eq!(store.grad(w).get(0, 0), 2.0);
        assert!((store.grad_norm() - 4.0).abs() < 1e-6);
        store.zero_grad();
        assert_eq!(store.grad(w).get(0, 0), 0.0);
    }

    #[test]
    fn gradient_clipping() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::zeros(1, 2));
        store.accumulate_grad(w, &Tensor::from_rows(&[&[3.0, 4.0]]));
        store.clip_grad_norm(1.0);
        assert!((store.grad_norm() - 1.0).abs() < 1e-5);
        // Clipping below the max is a no-op.
        store.clip_grad_norm(10.0);
        assert!((store.grad_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn checkpoint_roundtrip() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let json = store.to_json().unwrap();
        let mut store2 = ParamStore::new();
        let w2 = store2.add("w", Tensor::zeros(2, 2));
        store2.load_json(&json).unwrap();
        assert_eq!(store2.value(w2), store.value(w));
    }

    #[test]
    fn checkpoint_errors() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::zeros(2, 2));
        assert!(matches!(
            store.load_json("{}"),
            Err(NnError::MissingParameter(_))
        ));
        assert!(matches!(
            store.load_json("not json"),
            Err(NnError::Serde(_))
        ));
        let mut other = ParamStore::new();
        other.add("w", Tensor::zeros(3, 3));
        let json = other.to_json().unwrap();
        assert!(matches!(
            store.load_json(&json),
            Err(NnError::ShapeMismatch { .. })
        ));
    }
}
