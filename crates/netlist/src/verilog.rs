//! Writer and reader for a structural gate-level Verilog subset.
//!
//! Benchmarks such as IWLS'05 and OpenCores circulate as structural Verilog
//! netlists; this module provides the interchange path next to the BENCH
//! format. The supported subset is the one gate-level netlists actually use:
//! one module, `input`/`output`/`wire` declarations and primitive gate
//! instantiations (`and`, `nand`, `or`, `nor`, `xor`, `xnor`, `not`, `buf`)
//! with an output-first port list. Behavioural constructs, vectors and
//! hierarchy are rejected with a parse error.
//!
//! ```text
//! module c17 (g1, g2, g3, g7);
//!   input g1, g2, g3;
//!   output g7;
//!   wire g4, g5, g6;
//!   nand u0 (g4, g1, g2);
//!   nand u1 (g5, g2, g3);
//!   nand u2 (g6, g4, g5);
//!   not  u3 (g7, g6);
//! endmodule
//! ```

use crate::{GateKind, Netlist, NetlistError, NodeId};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Writes a [`Netlist`] as structural Verilog.
///
/// Multiplexers and constants (which have no Verilog gate primitive) are
/// lowered to primitive gates on the fly, so the output is always accepted by
/// [`parse`].
pub fn write(netlist: &Netlist) -> String {
    let signal = |id: NodeId| -> String {
        netlist
            .node_name(id)
            .map(sanitise_identifier)
            .unwrap_or_else(|| format!("n{}", id.index()))
    };
    let mut body = String::new();
    let mut wires: Vec<String> = Vec::new();
    let mut instance = 0usize;
    let emit = |body: &mut String, kind: &str, out: &str, ins: &[String], instance: &mut usize| {
        let _ = writeln!(body, "  {kind} u{instance} ({out}, {});", ins.join(", "));
        *instance += 1;
    };

    for (id, node) in netlist.iter() {
        let out = signal(id);
        match node.kind {
            GateKind::Input => continue,
            GateKind::Const0 => {
                // 0 = x & ~x needs a helper; use `and` of a wire with its
                // negation through an auxiliary net.
                let aux = format!("{out}_aux");
                wires.push(aux.clone());
                wires.push(out.clone());
                // Tie the auxiliary net to an arbitrary existing signal: the
                // first primary input, or itself when there are none (then
                // the constant is still well-defined as x & ~x).
                let base = netlist
                    .inputs()
                    .first()
                    .map(|&pi| signal(pi))
                    .unwrap_or_else(|| aux.clone());
                emit(
                    &mut body,
                    "not",
                    &aux,
                    std::slice::from_ref(&base),
                    &mut instance,
                );
                emit(&mut body, "and", &out, &[base, aux], &mut instance);
            }
            GateKind::Const1 => {
                let aux = format!("{out}_aux");
                wires.push(aux.clone());
                wires.push(out.clone());
                let base = netlist
                    .inputs()
                    .first()
                    .map(|&pi| signal(pi))
                    .unwrap_or_else(|| aux.clone());
                emit(
                    &mut body,
                    "not",
                    &aux,
                    std::slice::from_ref(&base),
                    &mut instance,
                );
                emit(&mut body, "or", &out, &[base, aux], &mut instance);
            }
            GateKind::Mux => {
                // y = (~s & a) | (s & b), lowered to primitives.
                let s = signal(node.fanins[0]);
                let a = signal(node.fanins[1]);
                let b = signal(node.fanins[2]);
                let ns = format!("{out}_ns");
                let ta = format!("{out}_ta");
                let tb = format!("{out}_tb");
                for w in [&ns, &ta, &tb, &out] {
                    wires.push(w.clone());
                }
                emit(
                    &mut body,
                    "not",
                    &ns,
                    std::slice::from_ref(&s),
                    &mut instance,
                );
                emit(&mut body, "and", &ta, &[ns, a], &mut instance);
                emit(&mut body, "and", &tb, &[s, b], &mut instance);
                emit(&mut body, "or", &out, &[ta, tb], &mut instance);
            }
            kind => {
                wires.push(out.clone());
                let primitive = match kind {
                    GateKind::And => "and",
                    GateKind::Nand => "nand",
                    GateKind::Or => "or",
                    GateKind::Nor => "nor",
                    GateKind::Xor => "xor",
                    GateKind::Xnor => "xnor",
                    GateKind::Not => "not",
                    GateKind::Buf => "buf",
                    _ => unreachable!("handled above"),
                };
                let ins: Vec<String> = node.fanins.iter().map(|&f| signal(f)).collect();
                emit(&mut body, primitive, &out, &ins, &mut instance);
            }
        }
    }

    let inputs: Vec<String> = netlist.inputs().iter().map(|&i| signal(i)).collect();
    let mut outputs: Vec<String> = Vec::new();
    let mut output_aliases = String::new();
    for (po, name) in netlist.outputs() {
        let name = sanitise_identifier(name);
        let driver = signal(*po);
        if driver != name {
            let _ = writeln!(
                output_aliases,
                "  buf alias_{} ({name}, {driver});",
                outputs.len()
            );
        }
        outputs.push(name);
    }

    let module_name = sanitise_identifier(netlist.name());
    let ports: Vec<String> = inputs.iter().chain(outputs.iter()).cloned().collect();
    let mut out = String::new();
    let _ = writeln!(out, "// generated by deepgate-netlist");
    let _ = writeln!(out, "module {module_name} ({});", ports.join(", "));
    if !inputs.is_empty() {
        let _ = writeln!(out, "  input {};", inputs.join(", "));
    }
    if !outputs.is_empty() {
        let _ = writeln!(out, "  output {};", outputs.join(", "));
    }
    // Wires: internal nets that are not ports.
    wires.retain(|w| !inputs.contains(w) && !outputs.contains(w));
    wires.sort();
    wires.dedup();
    if !wires.is_empty() {
        let _ = writeln!(out, "  wire {};", wires.join(", "));
    }
    out.push_str(&body);
    out.push_str(&output_aliases);
    let _ = writeln!(out, "endmodule");
    out
}

fn sanitise_identifier(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.is_empty() || s.chars().next().expect("non-empty").is_ascii_digit() {
        s.insert(0, '_');
    }
    s
}

/// Parses the structural Verilog subset back into a [`Netlist`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for constructs outside the subset
/// (multiple modules, vectors, assigns, behavioural blocks) and the usual
/// [`NetlistError::UndefinedSignal`] / [`NetlistError::DuplicateSignal`]
/// errors for inconsistent netlists.
pub fn parse(text: &str) -> Result<Netlist, NetlistError> {
    // Strip comments, then split into `;`-terminated statements.
    let mut cleaned = String::with_capacity(text.len());
    for line in text.lines() {
        let line = line.split("//").next().unwrap_or("");
        cleaned.push_str(line);
        cleaned.push('\n');
    }
    // Remove block comments.
    while let (Some(start), Some(end)) = (cleaned.find("/*"), cleaned.find("*/")) {
        if end > start {
            cleaned.replace_range(start..end + 2, " ");
        } else {
            break;
        }
    }

    let mut module_name = String::from("top");
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    struct GateInst {
        kind: GateKind,
        output: String,
        inputs: Vec<String>,
        line: usize,
    }
    let mut gates: Vec<GateInst> = Vec::new();
    let mut seen_module = false;
    let mut seen_endmodule = false;

    for (stmt_no, raw) in cleaned.split(';').enumerate() {
        let stmt = raw.replace(['\n', '\r'], " ");
        let stmt = stmt.trim();
        if stmt.is_empty() {
            continue;
        }
        if stmt.contains("endmodule") {
            seen_endmodule = true;
            let rest = stmt.replace("endmodule", "");
            if rest.trim().is_empty() {
                continue;
            }
        }
        let stmt = stmt.replace("endmodule", "");
        let stmt = stmt.trim();
        if stmt.is_empty() {
            continue;
        }
        let mut tokens = stmt.split_whitespace();
        let keyword = tokens.next().unwrap_or("");
        match keyword {
            "module" => {
                if seen_module {
                    return Err(NetlistError::Parse {
                        line: stmt_no + 1,
                        message: "multiple modules are not supported".into(),
                    });
                }
                seen_module = true;
                let rest = stmt["module".len()..].trim();
                module_name = rest
                    .split(|c: char| c == '(' || c.is_whitespace())
                    .find(|s| !s.is_empty())
                    .unwrap_or("top")
                    .to_string();
                // The port list itself carries no direction info; directions
                // come from the input/output declarations.
            }
            "input" | "output" | "wire" => {
                if stmt.contains('[') {
                    return Err(NetlistError::Parse {
                        line: stmt_no + 1,
                        message: "vector declarations are not supported".into(),
                    });
                }
                let names = stmt[keyword.len()..]
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty());
                match keyword {
                    "input" => inputs.extend(names),
                    "output" => outputs.extend(names),
                    _ => {} // wires are implicit
                }
            }
            "assign" | "always" | "reg" | "initial" => {
                return Err(NetlistError::Parse {
                    line: stmt_no + 1,
                    message: format!("`{keyword}` is outside the structural subset"),
                });
            }
            primitive => {
                let kind = match primitive {
                    "and" => GateKind::And,
                    "nand" => GateKind::Nand,
                    "or" => GateKind::Or,
                    "nor" => GateKind::Nor,
                    "xor" => GateKind::Xor,
                    "xnor" => GateKind::Xnor,
                    "not" => GateKind::Not,
                    "buf" => GateKind::Buf,
                    other => {
                        return Err(NetlistError::Parse {
                            line: stmt_no + 1,
                            message: format!("unknown gate primitive `{other}`"),
                        })
                    }
                };
                let open = stmt.find('(').ok_or_else(|| NetlistError::Parse {
                    line: stmt_no + 1,
                    message: "missing port list".into(),
                })?;
                let close = stmt.rfind(')').ok_or_else(|| NetlistError::Parse {
                    line: stmt_no + 1,
                    message: "missing closing `)`".into(),
                })?;
                let ports: Vec<String> = stmt[open + 1..close]
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if ports.len() < 2 {
                    return Err(NetlistError::Parse {
                        line: stmt_no + 1,
                        message: "gate needs an output and at least one input".into(),
                    });
                }
                gates.push(GateInst {
                    kind,
                    output: ports[0].clone(),
                    inputs: ports[1..].to_vec(),
                    line: stmt_no + 1,
                });
            }
        }
    }
    if !seen_module || !seen_endmodule {
        return Err(NetlistError::Parse {
            line: 1,
            message: "expected a single `module ... endmodule`".into(),
        });
    }

    // Build the netlist: inputs first, then gates resolved to a fixpoint
    // (instances may appear in any order).
    let mut netlist = Netlist::new(module_name);
    let mut by_name: HashMap<String, NodeId> = HashMap::new();
    for name in &inputs {
        if by_name.contains_key(name) {
            return Err(NetlistError::DuplicateSignal(name.clone()));
        }
        let id = netlist.add_input(name.clone());
        by_name.insert(name.clone(), id);
    }
    let mut remaining = gates;
    while !remaining.is_empty() {
        let before = remaining.len();
        let mut next = Vec::new();
        for gate in remaining {
            if by_name.contains_key(&gate.output) {
                return Err(NetlistError::DuplicateSignal(gate.output));
            }
            let resolved: Option<Vec<NodeId>> = gate
                .inputs
                .iter()
                .map(|n| by_name.get(n).copied())
                .collect();
            match resolved {
                Some(fanins) => {
                    let id = netlist
                        .add_named_gate(gate.kind, &fanins, gate.output.clone())
                        .map_err(|e| NetlistError::Parse {
                            line: gate.line,
                            message: e.to_string(),
                        })?;
                    by_name.insert(gate.output, id);
                }
                None => next.push(gate),
            }
        }
        if next.len() == before {
            let missing = next
                .iter()
                .flat_map(|g| g.inputs.iter())
                .find(|n| !by_name.contains_key(*n))
                .cloned()
                .unwrap_or_else(|| next[0].output.clone());
            return Err(NetlistError::UndefinedSignal(missing));
        }
        remaining = next;
    }
    for name in &outputs {
        let id = by_name
            .get(name)
            .copied()
            .ok_or_else(|| NetlistError::UndefinedSignal(name.clone()))?;
        netlist.mark_output(id, name.clone());
    }
    Ok(netlist)
}

#[cfg(test)]
mod tests {
    use super::*;

    const C17: &str = r"
// ISCAS-85 c17 in structural verilog
module c17 (g1, g2, g3, g7);
  input g1, g2, g3;
  output g7;
  wire g4, g5, g6;
  nand u0 (g4, g1, g2);
  nand u1 (g5, g2, g3);
  nand u2 (g6, g4, g5);
  not  u3 (g7, g6);
endmodule
";

    #[test]
    fn parse_c17() {
        let n = parse(C17).unwrap();
        assert_eq!(n.name(), "c17");
        assert_eq!(n.num_inputs(), 3);
        assert_eq!(n.num_outputs(), 1);
        assert_eq!(n.num_gates(), 4);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn roundtrip_through_writer() {
        let original = parse(C17).unwrap();
        let text = write(&original);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.num_inputs(), original.num_inputs());
        assert_eq!(parsed.num_outputs(), original.num_outputs());
        assert_eq!(parsed.num_gates(), original.num_gates());
    }

    #[test]
    fn writer_lowers_mux_and_constants() {
        let mut n = Netlist::new("mix");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let s = n.add_input("s");
        let one = n.add_const(true);
        let m = n.add_gate(GateKind::Mux, &[s, a, b]).unwrap();
        let y = n.add_gate(GateKind::And, &[m, one]).unwrap();
        n.mark_output(y, "y");
        let text = write(&n);
        assert!(!text.contains("mux"));
        let parsed = parse(&text).unwrap();
        assert!(parsed.validate().is_ok());
        // Functional check: outputs agree for a couple of patterns.
        use crate::GateKind as G;
        let eval = |net: &Netlist, pat: &[bool]| -> bool {
            let mut values = vec![false; net.len()];
            let mut input_pos = 0;
            for (id, node) in net.iter() {
                values[id.index()] = match node.kind {
                    G::Input => {
                        let v = pat[input_pos];
                        input_pos += 1;
                        v
                    }
                    G::Const0 => false,
                    G::Const1 => true,
                    kind => {
                        let ins: Vec<bool> =
                            node.fanins.iter().map(|f| values[f.index()]).collect();
                        kind.eval_bool(&ins)
                    }
                };
            }
            values[net.outputs()[0].0.index()]
        };
        for bits in 0..8u8 {
            let pat = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            assert_eq!(eval(&n, &pat), eval(&parsed, &pat), "pattern {bits:03b}");
        }
    }

    #[test]
    fn rejects_unsupported_constructs() {
        assert!(parse("module m (a); input a; assign b = a; endmodule").is_err());
        assert!(parse("module m (a); input [3:0] a; endmodule").is_err());
        assert!(parse("module m (a); input a; foo u0 (a, a); endmodule").is_err());
        assert!(parse("module m (a); input a;").is_err()); // no endmodule
        assert!(parse("module m (); module n (); endmodule endmodule").is_err());
    }

    #[test]
    fn reports_undefined_and_duplicate_signals() {
        let undefined = "module m (y); output y; and u0 (y, ghost, ghost); endmodule";
        assert!(matches!(
            parse(undefined),
            Err(NetlistError::UndefinedSignal(_))
        ));
        let duplicate =
            "module m (a, y); input a; output y; not u0 (y, a); not u1 (y, a); endmodule";
        assert!(matches!(
            parse(duplicate),
            Err(NetlistError::DuplicateSignal(_))
        ));
    }

    #[test]
    fn out_of_order_instances_resolve() {
        let text = r"
module ooo (a, b, y);
  input a, b;
  output y;
  wire w;
  and u1 (y, w, b);
  not u0 (w, a);
endmodule
";
        let n = parse(text).unwrap();
        assert_eq!(n.num_gates(), 2);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn sanitises_awkward_identifiers() {
        let mut n = Netlist::new("top-level design");
        let a = n.add_input("data[0]");
        let g = n.add_gate(GateKind::Not, &[a]).unwrap();
        n.mark_output(g, "out.q");
        let text = write(&n);
        assert!(text.contains("module top_level_design"));
        assert!(text.contains("data_0_"));
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.num_inputs(), 1);
        assert_eq!(parsed.num_outputs(), 1);
    }
}
